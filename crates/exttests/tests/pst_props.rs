//! Property tests: the PST answer must equal the brute-force oracle for
//! random NCT line-based sets, random query mixes, both fanout
//! configurations, and arbitrary insert orders, with invariants intact.

use proptest::collection::vec;
use proptest::prelude::*;
use segdb_core::testutil::oracle_ids;
use segdb_geom::predicates::hits_vertical;
use segdb_geom::Segment;
use segdb_pager::{Pager, PagerConfig};
use segdb_pst::{Pst, PstConfig, Side};

/// Strategy: per strip, 1–3 segments sharing the base point `(0, 40·i)`
/// with distinct slopes — non-crossing by strip confinement, touching at
/// the base (exercises the tie-break order).
fn line_based_set(max_strips: usize) -> impl Strategy<Value = Vec<Segment>> {
    vec(
        (1usize..=3, 1i64..4000, -19i64..=19, -18i64..=18),
        1..max_strips,
    )
    .prop_map(|strips| {
        let mut out = Vec::new();
        for (i, (k, len, d1, d2)) in strips.into_iter().enumerate() {
            let y0 = 40 * i as i64;
            let mut drifts = vec![d1];
            if k >= 2 && d2 != d1 {
                drifts.push(d2);
            }
            if k >= 3 {
                let d3 = (d1 + 7).rem_euclid(19);
                if !drifts.contains(&d3) {
                    drifts.push(d3);
                }
            }
            for (j, d) in drifts.into_iter().enumerate() {
                let id = (i * 4 + j) as u64;
                out.push(Segment::new(id, (0, y0), (len + j as i64 + 1, y0 + d)).unwrap());
            }
        }
        out
    })
}

fn oracle(set: &[Segment], qx: i64, lo: Option<i64>, hi: Option<i64>) -> Vec<u64> {
    oracle_ids(set, |s| s.id, |s| {
        qx >= 0 && s.spans_x(0) && hits_vertical(s, qx, lo, hi)
    })
}

fn query(pst: &Pst, p: &Pager, qx: i64, lo: Option<i64>, hi: Option<i64>) -> Vec<u64> {
    let mut out = Vec::new();
    pst.query_into(p, qx, lo, hi, &mut out).unwrap();
    let mut ids: Vec<u64> = out.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bulk_matches_oracle(
        set in line_based_set(60),
        queries in vec((0i64..4200, -100i64..2500, 0i64..600), 1..20),
        binary in any::<bool>(),
        page in prop_oneof![Just(256usize), Just(512)],
    ) {
        let p = Pager::new(PagerConfig { page_size: page, cache_pages: 0 });
        let cfg = if binary { PstConfig::binary() } else { PstConfig::packed() };
        let pst = Pst::build(&p, 0, Side::Right, cfg, set.clone()).unwrap();
        pst.validate(&p).unwrap();
        for (qx, l, h) in queries {
            let (lo, hi) = (Some(l), Some(l + h));
            prop_assert_eq!(query(&pst, &p, qx, lo, hi), oracle(&set, qx, lo, hi));
            // Line query too.
            prop_assert_eq!(query(&pst, &p, qx, None, None), oracle(&set, qx, None, None));
        }
    }

    #[test]
    fn insert_any_order_matches_oracle(
        set in line_based_set(40),
        order_seed in 0u64..1000,
        qx in 0i64..4200,
    ) {
        let p = Pager::new(PagerConfig { page_size: 256, cache_pages: 0 });
        let mut shuffled = set.clone();
        // Deterministic shuffle.
        let mut s = order_seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), vec![]).unwrap();
        for seg in &shuffled {
            pst.insert(&p, *seg).unwrap();
        }
        pst.validate(&p).unwrap();
        prop_assert_eq!(query(&pst, &p, qx, None, None), oracle(&set, qx, None, None));
        prop_assert_eq!(
            query(&pst, &p, qx, Some(100), Some(900)),
            oracle(&set, qx, Some(100), Some(900))
        );
    }

    #[test]
    fn removals_match_oracle(
        set in line_based_set(40),
        kill_mod in 2u64..5,
        qx in 0i64..4200,
    ) {
        let p = Pager::new(PagerConfig { page_size: 256, cache_pages: 0 });
        let mut pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        let survivors: Vec<Segment> = set.iter().filter(|s| s.id % kill_mod != 0).copied().collect();
        for s in set.iter().filter(|s| s.id % kill_mod == 0) {
            pst.remove(&p, s.id).unwrap();
        }
        pst.validate(&p).unwrap();
        prop_assert_eq!(pst.len() as usize, survivors.len());
        prop_assert_eq!(query(&pst, &p, qx, None, None), oracle(&survivors, qx, None, None));
    }
}
