//! Property-based tests for the exact geometry kernel.

use proptest::prelude::*;
use segdb_geom::point::{orient, Point};
use segdb_geom::predicates::{classify_pair, cmp_slope, cmp_y_at_x, hits_vertical, y_at_x_cmp};
use segdb_geom::transform::Direction;
use segdb_geom::{Segment, VerticalQuery};
use std::cmp::Ordering;

const C: i64 = 1 << 20; // small enough to leave room for shears in props

fn pt() -> impl Strategy<Value = Point> {
    (-C..C, -C..C).prop_map(|(x, y)| Point::new(x, y))
}

fn seg(id: u64) -> impl Strategy<Value = Segment> {
    (pt(), pt())
        .prop_filter("distinct endpoints", |(a, b)| a != b)
        .prop_map(move |(a, b)| Segment::new(id, a, b).unwrap())
}

/// Closed-set intersection of two arbitrary segments, by orientation case
/// analysis — an independent implementation used as the oracle for the
/// shear-invariance property.
fn segments_intersect(s: &Segment, t: &Segment) -> bool {
    let (o1, o2) = (orient(s.a, s.b, t.a), orient(s.a, s.b, t.b));
    let (o3, o4) = (orient(t.a, t.b, s.a), orient(t.a, t.b, s.b));
    if o1 != o2 && o3 != o4 {
        return true;
    }
    let on = |a: Point, b: Point, p: Point| {
        orient(a, b, p) == 0
            && p.x >= a.x.min(b.x)
            && p.x <= a.x.max(b.x)
            && p.y >= a.y.min(b.y)
            && p.y <= a.y.max(b.y)
    };
    on(s.a, s.b, t.a) || on(s.a, s.b, t.b) || on(t.a, t.b, s.a) || on(t.a, t.b, s.b)
}

proptest! {
    /// `hits_vertical` agrees with the generic closed intersection test
    /// when the query is materialized as an actual vertical segment.
    #[test]
    fn hits_vertical_matches_generic_intersection(
        s in seg(1),
        x0 in -C..C,
        y1 in -C..C,
        y2 in -C..C,
    ) {
        prop_assume!(y1 != y2);
        let q = Segment::new(999, (x0, y1), (x0, y2)).unwrap();
        let (lo, hi) = if y1 < y2 { (y1, y2) } else { (y2, y1) };
        prop_assert_eq!(
            hits_vertical(&s, x0, Some(lo), Some(hi)),
            segments_intersect(&s, &q)
        );
    }

    /// Widening the ordinate window never loses a hit; the line query is
    /// the upper bound of all of them.
    #[test]
    fn hits_vertical_monotone_in_window(s in seg(1), x0 in -C..C, lo in -C..0i64, hi in 0i64..C) {
        let narrow = hits_vertical(&s, x0, Some(lo), Some(hi));
        let wider = hits_vertical(&s, x0, Some(lo - 10), Some(hi + 10));
        let line = hits_vertical(&s, x0, None, None);
        prop_assert!(!narrow || wider);
        prop_assert!(!wider || line);
    }

    /// Ray queries decompose the line query.
    #[test]
    fn rays_cover_line(s in seg(1), x0 in -C..C, y0 in -C..C) {
        let up = VerticalQuery::RayUp { x: x0, y0 }.hits(&s);
        let down = VerticalQuery::RayDown { x: x0, y0 }.hits(&s);
        let line = VerticalQuery::Line { x: x0 }.hits(&s);
        prop_assert_eq!(up || down, line);
    }

    /// `classify_pair` is symmetric.
    #[test]
    fn classify_symmetric(s in seg(1), t in seg(2)) {
        prop_assert_eq!(classify_pair(&s, &t), classify_pair(&t, &s));
    }

    /// `cmp_y_at_x` is antisymmetric and consistent with `y_at_x_cmp`.
    #[test]
    fn cmp_y_at_x_antisymmetric(
        (a0, a1, b0, b1, x) in (-C..C, -C..C, -C..C, -C..C, 0i64..100),
        w in 100i64..C,
    ) {
        let s = Segment::new(1, (0, a0), (w, a1)).unwrap();
        let t = Segment::new(2, (0, b0), (w, b1)).unwrap();
        let st = cmp_y_at_x(&s, &t, x);
        let ts = cmp_y_at_x(&t, &s, x);
        prop_assert_eq!(st, ts.reverse());
        // Consistency with the point-level compare at integer ordinates.
        if st == Ordering::Equal {
            prop_assert_eq!(y_at_x_cmp(&s, x, b0), y_at_x_cmp(&t, x, b0));
        }
    }

    /// Slope comparison is antisymmetric and equal on parallel segments.
    #[test]
    fn slope_props(s in seg(1), dx in -1000i64..1000, dy in -1000i64..1000) {
        prop_assert_eq!(cmp_slope(&s, &s), Ordering::Equal);
        let shifted = Segment::new(
            2,
            (s.a.x + dx, s.a.y + dy),
            (s.b.x + dx, s.b.y + dy),
        ).unwrap();
        prop_assert_eq!(cmp_slope(&s, &shifted), Ordering::Equal);
    }

    /// The shear preserves the answer of every generalized query: a
    /// segment hits the direction-line through an anchor iff its image
    /// hits the image vertical line.
    #[test]
    fn shear_preserves_line_hits(
        s in seg(1),
        anchor in pt(),
        ddx in -8i64..8,
        ddy in 1i64..8,
    ) {
        let d = Direction::new(ddx, ddy).unwrap();
        // Materialize a long chunk of the query line in original space.
        let reach = 1i64 << 24;
        let p = Point::new(anchor.x - ddx * reach, anchor.y - ddy * reach);
        let q = Point::new(anchor.x + ddx * reach, anchor.y + ddy * reach);
        let line_chunk = Segment::new(998, p, q).unwrap();
        // The chunk is long enough to behave as the full line for segments
        // within the small coordinate box.
        let expected = segments_intersect(&s, &line_chunk);
        let ts = d.apply_segment(&s).unwrap();
        let tq = d.make_query(anchor, None, None).unwrap();
        prop_assert_eq!(tq.hits(&ts), expected);
    }

    /// Shear preserves pair classification (non-crossing stays
    /// non-crossing, crossings stay crossings).
    #[test]
    fn shear_preserves_classification(
        s in seg(1),
        t in seg(2),
        ddx in -8i64..8,
        ddy in 1i64..8,
    ) {
        let d = Direction::new(ddx, ddy).unwrap();
        let (ts, tt) = (d.apply_segment(&s).unwrap(), d.apply_segment(&t).unwrap());
        prop_assert_eq!(classify_pair(&s, &t), classify_pair(&ts, &tt));
    }
}
