//! Model-based property tests for the external interval tree and the
//! overlap set: arbitrary operation sequences against an in-memory
//! model, on several page sizes.

use proptest::collection::vec;
use proptest::prelude::*;
use segdb_itree::{Interval, IntervalSet, IntervalTree, IntervalTreeConfig};
use segdb_pager::{Pager, PagerConfig};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    RemoveIdx(usize),
    Stab(i64),
    Overlap(i64, i64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-500i64..500, 0i64..200).prop_map(|(a, l)| Op::Insert(a, a + l)),
        (0usize..1000).prop_map(Op::RemoveIdx),
        (-600i64..600).prop_map(Op::Stab),
        (-600i64..600, 0i64..300).prop_map(|(a, l)| Op::Overlap(a, a + l)),
    ]
}

fn sorted_ids(v: Vec<Interval>) -> Vec<u64> {
    let mut ids: Vec<u64> = v.into_iter().map(|iv| iv.id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_tree_behaves_like_model(
        ops in vec(op(), 1..200),
        page in prop_oneof![Just(256usize), Just(1024)],
    ) {
        let p = Pager::new(PagerConfig { page_size: page, cache_pages: 0 });
        let mut tree = IntervalTree::new(&p, IntervalTreeConfig::default()).unwrap();
        let mut model: Vec<Interval> = Vec::new();
        let mut next_id = 0u64;
        for o in &ops {
            match *o {
                Op::Insert(a, b) => {
                    let iv = Interval::new(next_id, a, b);
                    next_id += 1;
                    tree.insert(&p, iv).unwrap();
                    model.push(iv);
                }
                Op::RemoveIdx(i) => {
                    if !model.is_empty() {
                        let iv = model.remove(i % model.len());
                        prop_assert!(tree.remove(&p, &iv).unwrap());
                        prop_assert!(!tree.remove(&p, &iv).unwrap());
                    }
                }
                Op::Stab(x) => {
                    let got = sorted_ids(tree.stab(&p, x).unwrap());
                    let mut want: Vec<u64> =
                        model.iter().filter(|iv| iv.contains(x)).map(|iv| iv.id).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "stab {}", x);
                }
                Op::Overlap(_, _) => {}
            }
        }
        tree.validate(&p).unwrap();
        prop_assert_eq!(tree.len() as usize, model.len());
    }

    #[test]
    fn interval_set_overlap_matches_model(ops in vec(op(), 1..150)) {
        let p = Pager::new(PagerConfig { page_size: 512, cache_pages: 0 });
        let mut set = IntervalSet::new(&p, IntervalTreeConfig::default()).unwrap();
        let mut model: Vec<Interval> = Vec::new();
        let mut next_id = 0u64;
        for o in &ops {
            match *o {
                Op::Insert(a, b) => {
                    let iv = Interval::new(next_id, a, b);
                    next_id += 1;
                    set.insert(&p, iv).unwrap();
                    model.push(iv);
                }
                Op::RemoveIdx(i) => {
                    if !model.is_empty() {
                        let iv = model.remove(i % model.len());
                        prop_assert!(set.remove(&p, &iv).unwrap());
                    }
                }
                Op::Overlap(a, b) => {
                    let mut got = Vec::new();
                    set.overlap_into(&p, Some(a), Some(b), &mut got).unwrap();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|iv| iv.overlaps(a, b))
                        .map(|iv| iv.id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(sorted_ids(got), want, "overlap [{}, {}]", a, b);
                }
                Op::Stab(x) => {
                    let mut got = Vec::new();
                    set.stab_into(&p, x, &mut got).unwrap();
                    let mut want: Vec<u64> =
                        model.iter().filter(|iv| iv.contains(x)).map(|iv| iv.id).collect();
                    want.sort_unstable();
                    prop_assert_eq!(sorted_ids(got), want);
                }
            }
        }
        set.validate(&p).unwrap();
    }
}
