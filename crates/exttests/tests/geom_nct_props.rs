//! NCT validator properties: every generator family passes at random
//! parameters; injecting a crossing into any valid set is detected.

use proptest::prelude::*;
use segdb_geom::gen::Family;
use segdb_geom::nct::verify_nct;
use segdb_geom::{GeomError, Segment};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generators_always_pass(seed in any::<u64>(), n in 20usize..300) {
        for f in Family::ALL {
            let set = f.generate(n, seed);
            prop_assert!(verify_nct(&set).is_ok(), "{} seed={} n={}", f.name(), seed, n);
        }
    }

    #[test]
    fn injected_crossing_is_detected(seed in any::<u64>(), n in 20usize..200, victim in any::<usize>()) {
        let mut set = Family::Strips.generate(n, seed);
        // Cross some existing segment through its interior with a steep
        // stinger that properly crosses it.
        let v = set[victim % set.len()];
        prop_assume!(!v.is_vertical());
        let mx = (v.a.x + v.b.x) / 2;
        prop_assume!(mx > v.a.x && mx < v.b.x);
        let (ylo, yhi) = v.y_span();
        let stinger = Segment::new(900_000, (mx, ylo - 100), (mx + 1, yhi + 100)).unwrap();
        set.push(stinger);
        match verify_nct(&set) {
            Err(GeomError::Crossing(_, _)) | Err(GeomError::Overlap(_, _)) => {}
            other => prop_assert!(false, "crossing not detected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_detected(seed in any::<u64>(), n in 5usize..100) {
        let mut set = Family::Temporal.generate(n, seed);
        let dup = set[0];
        // Far away geometrically, same id.
        let far = Segment::new(dup.id, (1 << 30, 1 << 30), ((1 << 30) + 5, 1 << 30)).unwrap();
        set.push(far);
        prop_assert!(matches!(verify_nct(&set), Err(GeomError::Overlap(a, b)) if a == b));
    }
}
