//! Model-based property tests: the B⁺-tree must behave exactly like an
//! in-memory ordered set under arbitrary operation sequences, on multiple
//! page sizes, while always passing deep validation.

use proptest::collection::vec;
use proptest::prelude::*;
use segdb_bptree::record::{KeyOrder, KeyValue};
use segdb_bptree::BPlusTree;
use segdb_pager::{Pager, PagerConfig};
use std::cmp::Ordering;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Remove(i64),
    LowerBound(i64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-64i64..64).prop_map(Op::Insert),
        (-64i64..64).prop_map(Op::Remove),
        (-70i64..70).prop_map(Op::LowerBound),
    ]
}

fn kv(k: i64) -> KeyValue {
    KeyValue { key: k, value: (k * 17) as u64 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(ops in vec(op(), 1..250), page in prop_oneof![Just(80usize), Just(128), Just(512)]) {
        let pager = Pager::new(PagerConfig { page_size: page, cache_pages: 0 });
        let mut tree = BPlusTree::create(&pager, KeyOrder).unwrap();
        let mut model: BTreeMap<i64, u64> = BTreeMap::new();

        for o in &ops {
            match *o {
                Op::Insert(k) => {
                    let did = tree.insert(&pager, kv(k)).unwrap();
                    let expected = model.insert(k, kv(k).value).is_none();
                    prop_assert_eq!(did, expected);
                }
                Op::Remove(k) => {
                    let did = tree.remove(&pager, &kv(k)).unwrap();
                    let expected = model.remove(&k).is_some();
                    prop_assert_eq!(did, expected);
                }
                Op::LowerBound(k) => {
                    let mut c = tree
                        .lower_bound(&pager, &move |r: &KeyValue| (k, 0u64).cmp(&(r.key, 0)))
                        .unwrap();
                    let got = c.next(&pager).unwrap().map(|r| r.key);
                    let expected = model.range(k..).next().map(|(&k2, _)| k2);
                    prop_assert_eq!(got, expected);
                }
            }
        }
        tree.validate(&pager).unwrap();
        let scanned: Vec<(i64, u64)> = tree.scan_all(&pager).unwrap().iter().map(|r| (r.key, r.value)).collect();
        let expected: Vec<(i64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn bulk_load_equals_incremental(mut keys in vec(-1000i64..1000, 1..300)) {
        keys.sort_unstable();
        keys.dedup();
        let pager = Pager::new(PagerConfig { page_size: 96, cache_pages: 0 });
        let recs: Vec<KeyValue> = keys.iter().map(|&k| kv(k)).collect();
        let bulk = BPlusTree::bulk_load(&pager, KeyOrder, &recs).unwrap();
        bulk.validate(&pager).unwrap();
        let mut inc = BPlusTree::create(&pager, KeyOrder).unwrap();
        for &k in &keys {
            inc.insert(&pager, kv(k)).unwrap();
        }
        inc.validate(&pager).unwrap();
        prop_assert_eq!(bulk.scan_all(&pager).unwrap(), inc.scan_all(&pager).unwrap());
    }

    /// With a stateful comparator ordering records by key descending, the
    /// tree must respect that order everywhere.
    #[test]
    fn custom_comparator_respected(mut keys in vec(-500i64..500, 1..120)) {
        keys.sort_unstable();
        keys.dedup();
        struct Desc;
        impl segdb_bptree::RecordOrd<KeyValue> for Desc {
            fn cmp_records(&self, a: &KeyValue, b: &KeyValue) -> Ordering {
                (b.key, b.value).cmp(&(a.key, a.value))
            }
        }
        let pager = Pager::new(PagerConfig { page_size: 96, cache_pages: 0 });
        let mut recs: Vec<KeyValue> = keys.iter().map(|&k| kv(k)).collect();
        recs.reverse(); // descending = sorted under Desc
        let t = BPlusTree::bulk_load(&pager, Desc, &recs).unwrap();
        t.validate(&pager).unwrap();
        prop_assert_eq!(t.scan_all(&pager).unwrap(), recs);
    }
}
