//! Workspace-level property tests: for *arbitrary* NCT inputs and
//! queries, all four index kinds agree with the oracle and with each
//! other, including after insertions.

use proptest::collection::vec;
use proptest::prelude::*;
use segdb::core::report::ids;
use segdb::core::{IndexKind, SegmentDatabase};
use segdb::geom::query::scan_oracle;
use segdb::geom::{Segment, VerticalQuery};

/// Strategy: strip-confined random segments (NCT by construction) with a
/// controllable long/short mix and occasional verticals and horizontals.
fn nct_set(max: usize) -> impl Strategy<Value = Vec<Segment>> {
    vec(
        (0i64..2000, 1i64..2000, 0i64..14, any::<bool>(), any::<bool>()),
        1..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (x0, len, dy, vertical, flat))| {
                let y = 16 * i as i64;
                if vertical {
                    Segment::new(i as u64, (x0, y), (x0, y + dy + 1)).unwrap()
                } else if flat {
                    Segment::new(i as u64, (x0, y), (x0 + len, y)).unwrap()
                } else {
                    Segment::new(i as u64, (x0, y), (x0 + len, y + dy + 1)).unwrap()
                }
            })
            .collect()
    })
}

fn queries() -> impl Strategy<Value = Vec<VerticalQuery>> {
    vec(
        (0i64..4200, -50i64..3000, 0i64..800, 0u8..4),
        1..12,
    )
    .prop_map(|qs| {
        qs.into_iter()
            .map(|(x, lo, h, kind)| match kind {
                0 => VerticalQuery::Line { x },
                1 => VerticalQuery::RayUp { x, y0: lo },
                2 => VerticalQuery::RayDown { x, y0: lo },
                _ => VerticalQuery::segment(x, lo, lo + h),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_indexes_agree_with_oracle(set in nct_set(120), qs in queries()) {
        for kind in [
            IndexKind::TwoLevelBinary,
            IndexKind::TwoLevelInterval,
            IndexKind::StabThenFilter,
        ] {
            let db = SegmentDatabase::builder()
                .page_size(512)
                .index(kind)
                .build(set.clone())
                .unwrap();
            db.validate().unwrap();
            for q in &qs {
                let (hits, _) = db.query_canonical(q).unwrap();
                prop_assert_eq!(ids(&hits), ids(&scan_oracle(&set, q)), "{:?} {:?}", kind, q);
            }
        }
    }

    #[test]
    fn built_equals_inserted(set in nct_set(80), qs in queries()) {
        for kind in [IndexKind::TwoLevelBinary, IndexKind::TwoLevelInterval] {
            let built = SegmentDatabase::builder()
                .page_size(512)
                .index(kind)
                .build(set.clone())
                .unwrap();
            let mut grown = SegmentDatabase::builder()
                .page_size(512)
                .index(kind)
                .build(vec![])
                .unwrap();
            for s in &set {
                grown.insert(*s).unwrap();
            }
            grown.validate().unwrap();
            for q in &qs {
                let (h1, _) = built.query_canonical(q).unwrap();
                let (h2, _) = grown.query_canonical(q).unwrap();
                prop_assert_eq!(ids(&h1), ids(&h2), "{:?} {:?}", kind, q);
            }
        }
    }
}
