//! Codec robustness: decoding **arbitrary bytes** must return an error,
//! never panic — corrupted persistent files must fail cleanly.

use proptest::collection::vec;
use proptest::prelude::*;
use segdb_bptree::node::Node;
use segdb_bptree::record::KeyValue;
use segdb_core::interval2l::msrec::MsRec;
use segdb_itree::node::ItNode;
use segdb_pager::ByteReader;
use segdb_pst::node::PstNode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pst_node_decode_never_panics(bytes in vec(any::<u8>(), 0..600)) {
        let _ = PstNode::decode(&bytes);
    }

    #[test]
    fn bptree_node_decode_never_panics(bytes in vec(any::<u8>(), 0..600)) {
        let _ = Node::<KeyValue>::decode(&bytes);
        let _ = Node::<MsRec>::decode(&bytes);
    }

    #[test]
    fn itree_node_decode_never_panics(bytes in vec(any::<u8>(), 0..600)) {
        let _ = ItNode::decode(&bytes);
    }

    #[test]
    fn record_decode_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        use segdb_bptree::Record;
        let mut r = ByteReader::new(&bytes);
        let _ = MsRec::decode(&mut r);
        let mut r = ByteReader::new(&bytes);
        let _ = KeyValue::decode(&mut r);
    }

    #[test]
    fn superblock_decode_never_panics(bytes in vec(any::<u8>(), 0..200)) {
        let _ = segdb_core::persist::Superblock::decode(&bytes);
    }
}
