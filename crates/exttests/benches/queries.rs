//! Wall-clock benchmarks (Criterion): build time and query latency per
//! index kind. The deterministic I/O tables live in `src/bin/e*`; these
//! add the real-time view on the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdb_core::binary2l::{Binary2LConfig, TwoLevelBinary};
use segdb_core::interval2l::{Interval2LConfig, TwoLevelInterval};
use segdb_core::{FullScan, StabThenFilter};
use segdb_geom::gen::{strips, vertical_queries};
use segdb_pager::{Pager, PagerConfig};
use std::hint::black_box;

const N: usize = 20_000;

fn pager() -> Pager {
    Pager::new(PagerConfig { page_size: 4096, cache_pages: 0 })
}

fn bench_builds(c: &mut Criterion) {
    let set = strips(N, 1 << 17, 16, 300, 77);
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("solution1", |b| {
        b.iter(|| {
            let p = pager();
            black_box(TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap());
        })
    });
    g.bench_function("solution2", |b| {
        b.iter(|| {
            let p = pager();
            black_box(TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap());
        })
    });
    g.bench_function("stab_filter", |b| {
        b.iter(|| {
            let p = pager();
            black_box(StabThenFilter::build(&p, &set).unwrap());
        })
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let set = strips(N, 1 << 17, 16, 300, 77);
    let queries = vertical_queries(&set, 64, 10, 99);

    let p1 = pager();
    let s1 = TwoLevelBinary::build(&p1, Binary2LConfig::default(), set.clone()).unwrap();
    let p2 = pager();
    let s2 = TwoLevelInterval::build(&p2, Interval2LConfig::default(), set.clone()).unwrap();
    let p3 = pager();
    let s3 = StabThenFilter::build(&p3, &set).unwrap();
    let p4 = pager();
    let s4 = FullScan::build(&p4, &set).unwrap();

    let mut g = c.benchmark_group("vs_query");
    for (name, f) in [
        ("solution1", &mut (|q: &segdb_geom::VerticalQuery| s1.query(&p1, q).unwrap().0.len())
            as &mut dyn FnMut(&segdb_geom::VerticalQuery) -> usize),
        ("solution2", &mut (|q| s2.query(&p2, q).unwrap().0.len())),
        ("stab_filter", &mut (|q| s3.query(&p3, q).unwrap().0.len())),
        ("full_scan", &mut (|q| s4.query(&p4, q).unwrap().0.len())),
    ] {
        g.bench_with_input(BenchmarkId::new(name, N), &queries, |b, qs| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(f(q))
            })
        });
    }
    g.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let set = strips(N, 1 << 17, 16, 300, 77);
    let mut g = c.benchmark_group("insert");
    g.sample_size(10);
    g.bench_function("solution1_20k", |b| {
        b.iter(|| {
            let p = pager();
            let mut t = TwoLevelBinary::build(&p, Binary2LConfig::default(), vec![]).unwrap();
            for s in &set {
                t.insert(&p, *s).unwrap();
            }
            black_box(t.len())
        })
    });
    g.bench_function("solution2_20k", |b| {
        b.iter(|| {
            let p = pager();
            let mut t = TwoLevelInterval::build(&p, Interval2LConfig::default(), vec![]).unwrap();
            for s in &set {
                t.insert(&p, *s).unwrap();
            }
            black_box(t.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_builds, bench_queries, bench_inserts);
criterion_main!(benches);
