//! Empty library target; this package exists to host the opt-in
//! proptest/criterion targets (see `Cargo.toml` for why it is excluded
//! from the workspace).
