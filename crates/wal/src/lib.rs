//! Append-only write-ahead log for the segdb write path.
//!
//! The log owns a whole [`Device`] and arranges it as a forward-linked
//! page chain: `[next+1: u32][frames...]` per page, where each frame is
//! `[len: u16][crc32: u32][payload: len]`. A payload carries one logical
//! write — `[seq: u64][req_id: u64][kind: u8][segment: 40 bytes]` — so a
//! record is self-describing and the log needs no external length
//! metadata. The device meta block stores `[b"SEGWAL01"][head+1: u32]`.
//!
//! Durability follows the classic group-commit protocol: appends are
//! written to the device immediately but `sync` is deferred until either
//! `group_window` records accumulate or the caller forces a [`Wal::flush`].
//! A crash can therefore lose at most the unsynced tail of the window —
//! exactly the records the server has not yet acknowledged.
//!
//! Crash safety relies on two invariants rather than on atomic page
//! writes:
//!
//! 1. **Append-only page images.** A page rewrite only ever extends the
//!    previous image (same byte prefix), so a torn write — which keeps a
//!    prefix of the new image and leaves the rest of the sector as it
//!    was — can corrupt only bytes past the last durable frame.
//! 2. **Self-verifying replay.** [`Wal::open`] walks the chain and stops
//!    at the first frame that fails its CRC, decodes to garbage, or
//!    breaks strict `seq` monotonicity (a recycled page full of stale
//!    frames always trips the latter). Everything before the stop point
//!    is returned in order; everything after is discarded and will be
//!    overwritten by subsequent appends.

use segdb_geom::{Point, Segment};
use segdb_pager::{ByteReader, ByteWriter, Device, PageId, PagerError, Result, NULL_PAGE};

/// Device meta magic for a WAL device.
pub const WAL_MAGIC: &[u8; 8] = b"SEGWAL01";

/// Per-page header: `next+1` (0 = no next page).
const PAGE_HEADER: usize = 4;
/// Frame header: `len: u16` + `crc32: u32`.
const FRAME_HEADER: usize = 6;
/// Payload: seq + req_id + kind + encoded segment.
const PAYLOAD: usize = 8 + 8 + 1 + 40;
/// Full frame size for one record.
const FRAME: usize = FRAME_HEADER + PAYLOAD;

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// One logical write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Add a segment to the database.
    Insert(Segment),
    /// Remove a segment (full geometry kept so recovery and tombstone
    /// accounting never need to consult the index for the victim).
    Delete(Segment),
}

impl WalOp {
    /// The segment this op applies to.
    pub fn segment(&self) -> &Segment {
        match self {
            WalOp::Insert(s) | WalOp::Delete(s) => s,
        }
    }
}

/// A replayed (or appended) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Strictly-increasing log sequence number.
    pub seq: u64,
    /// Client request id — the idempotence key for retried writes.
    pub req_id: u64,
    /// The logical write.
    pub op: WalOp,
}

/// Monotonic counters the server surfaces under `stats.writer`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frame bytes appended over the log's lifetime (not reset by
    /// truncation).
    pub bytes: u64,
    /// Records appended.
    pub records: u64,
    /// Device syncs issued (each one retires a group-commit window).
    pub group_commits: u64,
    /// Times the log was truncated after a checkpoint.
    pub resets: u64,
}

/// CRC-32 (IEEE 802.3, reflected) — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// The append-only log. Single-writer: callers serialize access (the
/// write engine holds it behind its writer mutex).
pub struct Wal {
    dev: Box<dyn Device>,
    /// Records per group-commit window (1 = sync every append).
    window: usize,
    head: PageId,
    tail: PageId,
    /// In-memory image of the tail page (prefix-stable append target).
    tail_buf: Vec<u8>,
    /// Offset of the next free byte in `tail_buf`.
    tail_used: usize,
    last_seq: u64,
    /// Appends since the last sync.
    pending: usize,
    dirty: bool,
    stats: WalStats,
}

fn encode_payload(rec: &WalRecord, buf: &mut [u8]) -> Result<()> {
    let mut w = ByteWriter::new(buf);
    w.u64(rec.seq)?;
    w.u64(rec.req_id)?;
    let (kind, s) = match &rec.op {
        WalOp::Insert(s) => (KIND_INSERT, s),
        WalOp::Delete(s) => (KIND_DELETE, s),
    };
    w.u8(kind)?;
    w.u64(s.id)?;
    w.i64(s.a.x)?;
    w.i64(s.a.y)?;
    w.i64(s.b.x)?;
    w.i64(s.b.y)?;
    Ok(())
}

fn decode_payload(buf: &[u8]) -> Result<WalRecord> {
    let mut r = ByteReader::new(buf);
    let seq = r.u64()?;
    let req_id = r.u64()?;
    let kind = r.u8()?;
    let id = r.u64()?;
    let a = Point::new(r.i64()?, r.i64()?);
    let b = Point::new(r.i64()?, r.i64()?);
    let seg = Segment::new(id, a, b).map_err(|_| PagerError::Corrupt("wal: invalid segment"))?;
    let op = match kind {
        KIND_INSERT => WalOp::Insert(seg),
        KIND_DELETE => WalOp::Delete(seg),
        _ => return Err(PagerError::Corrupt("wal: unknown record kind")),
    };
    Ok(WalRecord { seq, req_id, op })
}

impl Wal {
    /// Start a fresh, empty log on `dev` (overwrites any meta already
    /// there). `group_window` is clamped to at least 1.
    pub fn create(dev: Box<dyn Device>, group_window: usize) -> Result<Self> {
        let mut wal = Wal {
            dev,
            window: group_window.max(1),
            head: NULL_PAGE,
            tail: NULL_PAGE,
            tail_buf: Vec::new(),
            tail_used: 0,
            last_seq: 0,
            pending: 0,
            dirty: false,
            stats: WalStats::default(),
        };
        if wal.dev.page_size() < PAGE_HEADER + FRAME {
            return Err(PagerError::Corrupt("wal: page size too small"));
        }
        wal.write_meta()?;
        wal.dev.sync()?;
        Ok(wal)
    }

    /// Open a log, replaying every durable record in append order.
    ///
    /// Replay is total: a torn tail, an unreadable page, or stale frames
    /// on a recycled page end the replay at the last verified record
    /// instead of erroring — that is the crash contract.
    pub fn open(dev: Box<dyn Device>, group_window: usize) -> Result<(Self, Vec<WalRecord>)> {
        let page_size = dev.page_size();
        if page_size < PAGE_HEADER + FRAME {
            return Err(PagerError::Corrupt("wal: page size too small"));
        }
        let head = match dev.get_meta() {
            Ok(meta) if meta.len() >= 12 && &meta[..8] == WAL_MAGIC => {
                let plus_one = u32::from_le_bytes([meta[8], meta[9], meta[10], meta[11]]);
                if plus_one == 0 {
                    NULL_PAGE
                } else {
                    plus_one - 1
                }
            }
            // No (or foreign) meta: treat as a fresh log.
            _ => NULL_PAGE,
        };
        let mut wal = Wal {
            dev,
            window: group_window.max(1),
            head,
            tail: NULL_PAGE,
            tail_buf: Vec::new(),
            tail_used: 0,
            last_seq: 0,
            pending: 0,
            dirty: false,
            stats: WalStats::default(),
        };
        let mut records = Vec::new();
        let mut page = head;
        let mut buf = vec![0u8; page_size];
        let mut stopped = false;
        while page != NULL_PAGE && !stopped {
            if wal.dev.read(page, &mut buf).is_err() {
                // The link was written but the page never became durable.
                break;
            }
            let next_plus_one = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
            let mut off = PAGE_HEADER;
            let mut valid_end = PAGE_HEADER;
            loop {
                if page_size - off < FRAME_HEADER {
                    break;
                }
                let len = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
                if len == 0 {
                    break; // zero marker: no more frames on this page
                }
                if len > page_size - off - FRAME_HEADER {
                    stopped = true; // torn frame header
                    break;
                }
                let crc =
                    u32::from_le_bytes([buf[off + 2], buf[off + 3], buf[off + 4], buf[off + 5]]);
                let payload = &buf[off + FRAME_HEADER..off + FRAME_HEADER + len];
                if crc32(payload) != crc {
                    stopped = true; // torn payload
                    break;
                }
                let rec = match decode_payload(payload) {
                    Ok(r) => r,
                    Err(_) => {
                        stopped = true;
                        break;
                    }
                };
                if rec.seq <= wal.last_seq {
                    stopped = true; // stale frame from a recycled page
                    break;
                }
                wal.last_seq = rec.seq;
                records.push(rec);
                off += FRAME_HEADER + len;
                valid_end = off;
            }
            // Remember the furthest verified position: appends resume here.
            wal.tail = page;
            wal.tail_buf = buf.clone();
            // Scrub unverified bytes so they are never re-persisted.
            wal.tail_buf[valid_end..].fill(0);
            wal.tail_used = valid_end;
            page = if next_plus_one == 0 {
                NULL_PAGE
            } else {
                next_plus_one - 1
            };
        }
        if stopped && wal.tail != NULL_PAGE {
            // Drop the forward link past the torn point: the chain now
            // ends at the verified tail and appends overwrite from here.
            wal.tail_buf[..PAGE_HEADER].fill(0);
        }
        wal.stats.records = records.len() as u64;
        Ok((wal, records))
    }

    fn write_meta(&mut self) -> Result<()> {
        let mut meta = [0u8; 12];
        meta[..8].copy_from_slice(WAL_MAGIC);
        let plus_one = if self.head == NULL_PAGE {
            0
        } else {
            self.head + 1
        };
        meta[8..12].copy_from_slice(&plus_one.to_le_bytes());
        self.dev.set_meta(&meta)
    }

    /// Append one record; returns its sequence number. The record is
    /// durable once the group-commit window closes (or [`Wal::flush`]).
    pub fn append(&mut self, req_id: u64, op: WalOp) -> Result<u64> {
        let seq = self.last_seq + 1;
        let rec = WalRecord { seq, req_id, op };
        let page_size = self.dev.page_size();
        if self.tail == NULL_PAGE || self.tail_used + FRAME > page_size {
            // Grow the chain: fresh page becomes the new tail.
            let page = self.dev.allocate()?;
            let mut fresh = vec![0u8; page_size];
            // Write the zeroed image first so a recycled page can never
            // replay stale frames ahead of the link update.
            self.dev.write(page, &fresh)?;
            if self.tail == NULL_PAGE {
                self.head = page;
                self.write_meta()?;
            } else {
                self.tail_buf[..PAGE_HEADER].copy_from_slice(&(page + 1).to_le_bytes());
                let old = self.tail;
                self.dev.write(old, &self.tail_buf)?;
            }
            self.tail = page;
            std::mem::swap(&mut self.tail_buf, &mut fresh);
            self.tail_used = PAGE_HEADER;
        }
        let off = self.tail_used;
        self.tail_buf[off..off + 2].copy_from_slice(&(PAYLOAD as u16).to_le_bytes());
        encode_payload(
            &rec,
            &mut self.tail_buf[off + FRAME_HEADER..off + FRAME_HEADER + PAYLOAD],
        )?;
        let crc = crc32(&self.tail_buf[off + FRAME_HEADER..off + FRAME_HEADER + PAYLOAD]);
        self.tail_buf[off + 2..off + 6].copy_from_slice(&crc.to_le_bytes());
        self.tail_used = off + FRAME;
        self.dev.write(self.tail, &self.tail_buf)?;
        self.last_seq = seq;
        self.stats.bytes += FRAME as u64;
        self.stats.records += 1;
        self.pending += 1;
        self.dirty = true;
        if self.pending >= self.window {
            self.sync_now()?;
        }
        Ok(seq)
    }

    fn sync_now(&mut self) -> Result<()> {
        self.dev.sync()?;
        self.pending = 0;
        self.dirty = false;
        self.stats.group_commits += 1;
        Ok(())
    }

    /// Force-sync any unsynced appends (no-op when clean).
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty {
            self.sync_now()?;
        }
        Ok(())
    }

    /// Truncate the log after its contents were folded into the index
    /// and the fold was checkpointed. Sequence numbers keep counting —
    /// monotonicity across resets is what lets replay reject stale
    /// frames on recycled pages.
    pub fn reset(&mut self) -> Result<()> {
        let mut page = self.head;
        let page_size = self.dev.page_size();
        let mut buf = vec![0u8; page_size];
        while page != NULL_PAGE {
            let next = if self.dev.read(page, &mut buf).is_ok() {
                let plus_one = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
                if plus_one == 0 {
                    NULL_PAGE
                } else {
                    plus_one - 1
                }
            } else {
                NULL_PAGE
            };
            // Best-effort: after a crash the allocator may already
            // consider the page free.
            let _ = self.dev.free(page);
            page = next;
        }
        self.head = NULL_PAGE;
        self.tail = NULL_PAGE;
        self.tail_buf.clear();
        self.tail_used = 0;
        self.pending = 0;
        self.dirty = false;
        self.write_meta()?;
        self.dev.sync()?;
        self.stats.resets += 1;
        Ok(())
    }

    /// Highest sequence number ever assigned (or replayed).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Raise the sequence floor (e.g. to the checkpointed `wal_seq` from
    /// the database superblock) so fresh appends stay above every
    /// previously-issued number.
    pub fn set_seq_floor(&mut self, seq: u64) {
        self.last_seq = self.last_seq.max(seq);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Live pages currently held by the log chain's device.
    pub fn live_pages(&self) -> usize {
        self.dev.live_pages()
    }

    /// Records appended but not yet synced.
    pub fn unsynced(&self) -> usize {
        self.pending
    }

    /// Give the device back (tests use this to inspect or corrupt the
    /// raw pages between sessions).
    pub fn into_device(self) -> Box<dyn Device> {
        self.dev
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("head", &self.head)
            .field("tail", &self.tail)
            .field("last_seq", &self.last_seq)
            .field("pending", &self.pending)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segdb_pager::Disk;

    fn seg(id: u64) -> Segment {
        Segment::new(id, (0, id as i64), (10, id as i64 + 1)).unwrap()
    }

    fn ops(n: u64) -> Vec<(u64, WalOp)> {
        (0..n)
            .map(|i| {
                let op = if i % 3 == 2 {
                    WalOp::Delete(seg(i))
                } else {
                    WalOp::Insert(seg(i))
                };
                (1000 + i, op)
            })
            .collect()
    }

    #[test]
    fn crc32_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_log_reopen() {
        let wal = Wal::create(Box::new(Disk::new(256)), 4).unwrap();
        let dev = wal.into_device();
        let (mut wal, recs) = Wal::open(dev, 4).unwrap();
        assert!(recs.is_empty());
        assert_eq!(wal.last_seq(), 0);
        // The reopened log accepts appends.
        assert_eq!(wal.append(1, WalOp::Insert(seg(1))).unwrap(), 1);
        wal.flush().unwrap();
        let (_, recs) = Wal::open(wal.into_device(), 4).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn foreign_meta_reads_as_empty() {
        let mut dev: Box<dyn Device> = Box::new(Disk::new(256));
        dev.set_meta(b"NOTAWAL!").unwrap();
        let (_, recs) = Wal::open(dev, 1).unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn roundtrip_across_pages() {
        // 128-byte pages hold one 63-byte frame each after the header,
        // so 20 records force a many-page chain.
        let mut wal = Wal::create(Box::new(Disk::new(128)), 1).unwrap();
        let want = ops(20);
        for (rid, op) in &want {
            wal.append(*rid, *op).unwrap();
        }
        assert_eq!(wal.last_seq(), 20);
        let (wal, recs) = Wal::open(wal.into_device(), 1).unwrap();
        assert_eq!(recs.len(), 20);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.req_id, want[i].0);
            assert_eq!(r.op, want[i].1);
        }
        assert_eq!(wal.last_seq(), 20);
    }

    #[test]
    fn group_commit_window_boundary() {
        let mut wal = Wal::create(Box::new(Disk::new(4096)), 4).unwrap();
        for (rid, op) in ops(3) {
            wal.append(rid, op).unwrap();
        }
        assert_eq!(wal.stats().group_commits, 0);
        assert_eq!(wal.unsynced(), 3);
        // The 4th append closes the window: exactly one sync.
        wal.append(9, WalOp::Insert(seg(99))).unwrap();
        assert_eq!(wal.stats().group_commits, 1);
        assert_eq!(wal.unsynced(), 0);
        // A clean flush is a no-op; a dirty one syncs.
        wal.flush().unwrap();
        assert_eq!(wal.stats().group_commits, 1);
        wal.append(10, WalOp::Insert(seg(100))).unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.stats().group_commits, 2);
    }

    #[test]
    fn torn_tail_stops_replay() {
        let mut wal = Wal::create(Box::new(Disk::new(4096)), 1).unwrap();
        for (rid, op) in ops(5) {
            wal.append(rid, op).unwrap();
        }
        // Corrupt the last frame's payload on the raw device: replay
        // must surface records 1..=4 and drop the torn 5th.
        let mut dev = wal.into_device();
        let meta = dev.get_meta().unwrap();
        let head = u32::from_le_bytes([meta[8], meta[9], meta[10], meta[11]]) - 1;
        let mut buf = vec![0u8; dev.page_size()];
        dev.read(head, &mut buf).unwrap();
        let last = PAGE_HEADER + 4 * FRAME + FRAME_HEADER;
        buf[last] ^= 0xFF;
        dev.write(head, &buf).unwrap();
        let (mut wal, recs) = Wal::open(dev, 1).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(wal.last_seq(), 4);
        // Appending after a torn tail overwrites the garbage.
        wal.append(77, WalOp::Insert(seg(7))).unwrap();
        let (_, recs) = Wal::open(wal.into_device(), 1).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4].seq, 5);
        assert_eq!(recs[4].req_id, 77);
    }

    #[test]
    fn torn_frame_header_stops_replay() {
        // A frame whose length field survives but whose payload was
        // never written (remaining bytes zero) must fail the CRC.
        let mut wal = Wal::create(Box::new(Disk::new(4096)), 1).unwrap();
        for (rid, op) in ops(2) {
            wal.append(rid, op).unwrap();
        }
        let mut dev = wal.into_device();
        let meta = dev.get_meta().unwrap();
        let head = u32::from_le_bytes([meta[8], meta[9], meta[10], meta[11]]) - 1;
        let mut buf = vec![0u8; dev.page_size()];
        dev.read(head, &mut buf).unwrap();
        // Fake a torn third frame: length written, payload zeroed.
        let off = PAGE_HEADER + 2 * FRAME;
        buf[off..off + 2].copy_from_slice(&(PAYLOAD as u16).to_le_bytes());
        dev.write(head, &buf).unwrap();
        let (_, recs) = Wal::open(dev, 1).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn reset_truncates_and_keeps_seq_monotone() {
        let mut wal = Wal::create(Box::new(Disk::new(128)), 1).unwrap();
        for (rid, op) in ops(10) {
            wal.append(rid, op).unwrap();
        }
        let pages_before = wal.live_pages();
        assert!(pages_before >= 10);
        wal.reset().unwrap();
        assert_eq!(wal.live_pages(), 0);
        assert_eq!(wal.last_seq(), 10, "seq survives truncation");
        // New appends land on recycled pages with higher seqs.
        wal.append(50, WalOp::Insert(seg(50))).unwrap();
        let (_, recs) = Wal::open(wal.into_device(), 1).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 11);
    }

    #[test]
    fn seq_floor_raises_next_seq() {
        let mut wal = Wal::create(Box::new(Disk::new(4096)), 1).unwrap();
        wal.set_seq_floor(100);
        assert_eq!(wal.append(1, WalOp::Insert(seg(1))).unwrap(), 101);
    }
}
