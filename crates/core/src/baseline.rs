//! Baselines the paper's structures are benchmarked against.
//!
//! The paper has no experimental section, so these are the comparison
//! points a 1998 practitioner would have reached for:
//!
//! * [`FullScan`] — segments in a page chain, every query reads all
//!   `O(n)` blocks. The floor any index must beat, and the correctness
//!   oracle.
//! * [`StabThenFilter`] — an external interval tree over the segments'
//!   x-projections (the classical *stabbing query* reduction of §1)
//!   answering "which segments' x-ranges contain `x₀`", followed by an
//!   exact intersection filter. Costs `O(log_B n + t_stab)` where
//!   `t_stab ≥ t` counts segments crossing the whole vertical *line* —
//!   the gap between stabbing and VS queries that motivates the paper.

use crate::chain;
use crate::report::QueryTrace;
use segdb_geom::{MultiSink, ReportSink, Segment, VerticalQuery};
use segdb_itree::{Interval, IntervalTree, IntervalTreeConfig};
use segdb_pager::{PageId, Pager, Result, StatScope};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// The `O(n)`-per-query exhaustive baseline (and correctness oracle).
#[derive(Debug)]
pub struct FullScan {
    head: PageId,
    len: u64,
}

impl FullScan {
    /// Store the set in a page chain.
    pub fn build(pager: &Pager, segs: &[Segment]) -> Result<Self> {
        Ok(FullScan {
            head: chain::write(pager, segs)?,
            len: segs.len() as u64,
        })
    }

    /// Serializable identity.
    pub fn state(&self) -> (PageId, u64) {
        (self.head, self.len)
    }

    /// Reconstruct from a serialized identity.
    pub fn attach(head: PageId, len: u64) -> Self {
        FullScan { head, len }
    }

    /// Stored segment count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Answer a VS query by scanning everything.
    pub fn query(&self, pager: &Pager, q: &VerticalQuery) -> Result<(Vec<Segment>, QueryTrace)> {
        let mut out = Vec::new();
        let trace = self.query_sink(pager, q, &mut out)?;
        Ok((out, trace))
    }

    /// Streaming form of [`FullScan::query`]: push each hit into `sink`.
    /// A `Break` abandons the rest of the chain — `pages_saved` in the
    /// trace reports exactly how many pages that skipped.
    pub fn query_sink(
        &self,
        pager: &Pager,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let mut hits = 0u64;
        let flow = chain::scan_ctl(pager, self.head, |s| {
            if q.hits(&s) {
                hits += 1;
                sink.report(&s)
            } else {
                ControlFlow::Continue(())
            }
        })?;
        let io = scope.finish();
        let total_pages = (self.len as usize).div_ceil(chain::cap(pager.page_size()).max(1)) as u64;
        let pages_saved = if flow.is_break() {
            total_pages.saturating_sub(io.reads + io.cache_hits)
        } else {
            0
        };
        Ok(QueryTrace {
            hits: hits as u32,
            pages_saved,
            io,
            ..QueryTrace::default()
        })
    }

    /// Batched form of [`FullScan::query_sink`]: one chain scan feeds
    /// every slot of `multi`; the scan stops early only once *all*
    /// slots have retired.
    pub fn query_batch_sink(&self, pager: &Pager, multi: &mut MultiSink<'_>) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let flow = chain::scan_ctl(pager, self.head, |s| multi.offer(&s))?;
        let io = scope.finish();
        let total_pages = (self.len as usize).div_ceil(chain::cap(pager.page_size()).max(1)) as u64;
        let pages_saved = if flow.is_break() {
            total_pages.saturating_sub(io.reads + io.cache_hits)
        } else {
            0
        };
        Ok(QueryTrace {
            pages_saved,
            io,
            ..QueryTrace::default()
        })
    }
}

/// Stabbing-index baseline: x-projection interval tree plus exact filter.
#[derive(Debug)]
pub struct StabThenFilter {
    tree: IntervalTree,
    /// The filter needs full geometry; the x-tree only stores ids, so the
    /// baseline keeps a page-chained side table `id → segment`, loaded on
    /// demand per query batch. To keep the I/O accounting honest the
    /// whole segment is instead packed into the interval payload — the
    /// side map below is built once at attach time from the chain.
    segments: HashMap<u64, Segment>,
    chain: PageId,
}

impl StabThenFilter {
    /// Build the x-projection tree and the segment side table.
    pub fn build(pager: &Pager, segs: &[Segment]) -> Result<Self> {
        let intervals: Vec<Interval> = segs
            .iter()
            .map(|s| Interval::new(s.id, s.a.x, s.b.x))
            .collect();
        let tree = IntervalTree::build(pager, IntervalTreeConfig::default(), intervals)?;
        let chain = chain::write(pager, segs)?;
        let mut segments = HashMap::with_capacity(segs.len());
        for s in segs {
            segments.insert(s.id, *s);
        }
        Ok(StabThenFilter {
            tree,
            segments,
            chain,
        })
    }

    /// Serializable identity: the x-projection tree plus the side chain.
    pub fn state(&self) -> (segdb_itree::tree::ItState, PageId) {
        (self.tree.state(), self.chain)
    }

    /// Reconstruct from a serialized identity; reloads the side table
    /// from the chain.
    pub fn attach(pager: &Pager, tree: segdb_itree::tree::ItState, chain: PageId) -> Result<Self> {
        let tree = IntervalTree::attach(pager, IntervalTreeConfig::default(), tree)?;
        let mut segments = HashMap::new();
        chain::scan(pager, chain, |s| {
            segments.insert(s.id, s);
        })?;
        Ok(StabThenFilter {
            tree,
            segments,
            chain,
        })
    }

    /// Stored segment count.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Candidates whose x-range contains the query abscissa, then exact
    /// filter. The trace's `second_level_probes` records the candidate
    /// count — the `t_stab − t` waste this baseline pays.
    pub fn query(&self, pager: &Pager, q: &VerticalQuery) -> Result<(Vec<Segment>, QueryTrace)> {
        let mut out = Vec::new();
        let trace = self.query_sink(pager, q, &mut out)?;
        Ok((out, trace))
    }

    /// Streaming form of [`StabThenFilter::query`]. For full-line
    /// queries every stabbed candidate is a hit, so a count-only sink is
    /// answered straight from the stab tree's stored counts without
    /// touching the candidate lists.
    pub fn query_sink(
        &self,
        pager: &Pager,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        segdb_obs::trace::emit(
            segdb_obs::trace::EventKind::SecondLevelProbe,
            segdb_obs::trace::probe::STAB_TREE,
            0,
        );
        if !sink.want_segments() && matches!(q, VerticalQuery::Line { .. }) {
            let n = self.tree.stab_count(pager, q.x())?;
            let _ = sink.report_count(n);
            return Ok(QueryTrace {
                second_level_probes: n as u32,
                hits: n as u32,
                io: scope.finish(),
                ..QueryTrace::default()
            });
        }
        let mut candidates = 0u32;
        let mut hits = 0u64;
        let _ = self.tree.stab_ctl(pager, q.x(), &mut |iv| {
            candidates += 1;
            let seg = self.segments[&iv.id];
            if q.hits(&seg) {
                hits += 1;
                sink.report(&seg)
            } else {
                ControlFlow::Continue(())
            }
        })?;
        Ok(QueryTrace {
            second_level_probes: candidates,
            hits: hits as u32,
            io: scope.finish(),
            ..QueryTrace::default()
        })
    }

    /// Batched form of [`StabThenFilter::query_sink`]: every query's
    /// stab shares one descent of the x-projection tree (see
    /// [`IntervalTree::stab_batch_ctl`]); each candidate is resolved
    /// from the side table once per interested query and exact-filtered
    /// per slot. Count fast paths stay off in batch mode — the shared
    /// walk materializes candidates for all slots anyway.
    pub fn query_batch_sink(&self, pager: &Pager, multi: &mut MultiSink<'_>) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        segdb_obs::trace::emit(
            segdb_obs::trace::EventKind::SecondLevelProbe,
            segdb_obs::trace::probe::STAB_TREE,
            0,
        );
        let xs: Vec<(i64, usize)> = (0..multi.len())
            .filter(|&i| multi.is_active(i))
            .map(|i| (multi.query(i).x(), i))
            .collect();
        let mut candidates = 0u32;
        self.tree.stab_batch_ctl(pager, &xs, &mut |i, iv| {
            candidates += 1;
            let seg = self.segments[&iv.id];
            if multi.is_active(i) && multi.query(i).hits(&seg) {
                multi.report(i, &seg)
            } else {
                ControlFlow::Continue(())
            }
        })?;
        Ok(QueryTrace {
            second_level_probes: candidates,
            io: scope.finish(),
            ..QueryTrace::default()
        })
    }

    /// Internal pages of the x-projection stab tree, at most `budget` —
    /// the descent levels worth pinning resident.
    pub fn hot_pages(&self, pager: &Pager, budget: usize) -> Result<Vec<PageId>> {
        self.tree.node_pages(pager, budget)
    }

    /// The raw segment chain (tests).
    pub fn chain_head(&self) -> PageId {
        self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ids;
    use segdb_geom::gen::{mixed_map, vertical_queries};
    use segdb_geom::query::scan_oracle;
    use segdb_pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new(PagerConfig {
            page_size: 512,
            cache_pages: 0,
        })
    }

    #[test]
    fn full_scan_matches_oracle() {
        let p = pager();
        let set = mixed_map(500, 3);
        let fs = FullScan::build(&p, &set).unwrap();
        assert_eq!(fs.len(), set.len() as u64);
        for q in vertical_queries(&set, 20, 100, 5) {
            let (hits, trace) = fs.query(&p, &q).unwrap();
            assert_eq!(ids(&hits), ids(&scan_oracle(&set, &q)));
            assert_eq!(trace.hits as usize, hits.len());
            assert!(trace.io.reads > 0);
        }
    }

    #[test]
    fn full_scan_reads_all_blocks_every_time() {
        let p = pager();
        let set = mixed_map(1000, 7);
        let fs = FullScan::build(&p, &set).unwrap();
        let q = VerticalQuery::Line { x: i64::MIN / 4 }; // certainly empty
        let (hits, trace) = fs.query(&p, &q).unwrap();
        assert!(hits.is_empty());
        let expected_pages = set.len().div_ceil(chain::cap(512));
        assert_eq!(trace.io.reads as usize, expected_pages);
    }

    #[test]
    fn stab_then_filter_matches_oracle() {
        let p = pager();
        let set = mixed_map(600, 11);
        let sf = StabThenFilter::build(&p, &set).unwrap();
        for q in vertical_queries(&set, 30, 50, 13) {
            let (hits, trace) = sf.query(&p, &q).unwrap();
            assert_eq!(ids(&hits), ids(&scan_oracle(&set, &q)));
            assert!(trace.second_level_probes >= trace.hits, "stab ⊇ hits");
        }
    }

    #[test]
    fn stab_filter_wastes_io_on_short_queries() {
        // Long segments + short query window: t_stab ≫ t.
        let p = pager();
        let set: Vec<Segment> = (0..300)
            .map(|i| Segment::new(i, (0, 8 * i as i64), (1 << 20, 8 * i as i64 + 1)).unwrap())
            .collect();
        let sf = StabThenFilter::build(&p, &set).unwrap();
        let q = VerticalQuery::segment(1 << 10, 0, 20);
        let (hits, trace) = sf.query(&p, &q).unwrap();
        assert!(hits.len() <= 4);
        assert!(trace.second_level_probes == 300, "all 300 stab candidates");
    }
}
