#![warn(missing_docs)]

//! # segdb-core — the paper's two-level VS-query index structures
//!
//! This crate is the paper's primary contribution: secondary-storage
//! structures over `N` non-crossing, possibly touching (NCT) plane
//! segments that report every segment intersected by a *generalized
//! query segment* (line / ray / segment) of a fixed direction.
//!
//! Two index structures, as in the paper:
//!
//! * [`TwoLevelBinary`] — Section 3 / **Theorem 1**: a binary first-level
//!   tree over x-median vertical base lines; per node an interval set
//!   `C(v)` for segments lying *on* the line plus two line-based PSTs
//!   `L(v)`, `R(v)` for the halves of segments crossing it. `O(n)`
//!   blocks, `O(log₂ n · (log_B n + IL*(B)) + t)` query, amortized
//!   `O(log₂ n + log_B n / B)` updates via weight-balanced partial
//!   rebuilding (the BB\[α\] substitute).
//! * [`TwoLevelInterval`] — Section 4 / **Theorem 2**: an interval-tree
//!   first level with `Θ(B)`-ary slab decomposition; per node, short
//!   fragments in per-boundary PSTs `Lᵢ`/`Rᵢ`, on-line segments in
//!   `Cᵢ`, and long fragments in a segment tree `G` of multislab lists
//!   (B⁺-trees) linked by **fractional-cascading bridges** with the
//!   `d`-property (§4.3). `O(n log₂ B)` blocks, query
//!   `O(log_B n · (log_B n + log₂ B + IL*(B)) + t)`, semi-dynamic
//!   insertions.
//!
//! Plus the baselines every benchmark compares against ([`FullScan`],
//! [`StabThenFilter`]) and the user-facing [`SegmentDatabase`] facade
//! that handles fixed-direction queries through the exact shear of
//! `segdb-geom`.

pub mod anyquery;
pub mod baseline;
pub mod batch;
pub mod binary2l;
pub mod chain;
pub mod facade;
pub mod interval2l;
pub mod partition;
pub mod persist;
pub mod report;
#[cfg(any(test, feature = "testutil"))]
pub mod testutil;
pub mod torture;
pub mod writer;

pub use baseline::{FullScan, StabThenFilter};
pub use binary2l::{Binary2LConfig, TwoLevelBinary};
pub use facade::{DbError, IndexKind, SegmentDatabase, SegmentDatabaseBuilder};
pub use interval2l::{Interval2LConfig, TwoLevelInterval};
pub use partition::{PartitionError, XCuts};
pub use report::{QueryAnswer, QueryMode, QueryTrace};
pub use writer::{HistoryError, RecoveryReport, WriteAck, WriteEngine, WriterConfig};
