//! X-range partitioning for the sharded cluster.
//!
//! Theorem 2 already splits the plane into slabs at x-median base lines
//! and stores each segment *short* (inside one slab) or *long* (spanning
//! a slab) per node.  [`XCuts`] lifts that exact split across processes:
//! `K − 1` strictly increasing cut abscissae carve the x-axis into `K`
//! half-open ownership ranges, one per shard.  A segment whose x-span
//! stays inside one range lives on that shard alone (the "short" case);
//! a segment crossing a cut is **replicated** into every shard its span
//! touches (the "long" case), and the scatter-gather router de-duplicates
//! replicas by segment id at merge time — the same id-based de-dup the
//! 2LDS fragment stores already rely on (paper §4.2).
//!
//! Ownership is a *partition*: shard `i` owns `x ∈ [cuts[i-1], cuts[i])`
//! (unbounded at both ends).  Because replication stores a segment on
//! *every* shard its closed x-span intersects, the owner of any query
//! abscissa `x` holds **all** segments stabbed at `x` — which is what
//! lets `Count` route to the single owning shard and stay exact despite
//! replication.
//!
//! Note the two distinct senses of "replication" in the cluster: the
//! cut-crossing replication above decides *which shards store a
//! segment* and is a correctness requirement of the routing invariant,
//! while the R-way replica sets of the shard map (DESIGN.md §15) decide
//! *how many copies of each shard exist* and buy availability only.
//! They compose orthogonally — `XCuts` is oblivious to how many
//! replicas later serve each fragment it produces.

use segdb_geom::Segment;

/// Strictly increasing cut abscissae defining a `K`-shard x-partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XCuts {
    cuts: Vec<i64>,
}

/// Error raised by [`XCuts`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The cut sequence is not strictly increasing.
    CutsNotSorted {
        /// Offending cut value (equal to or below its predecessor).
        at: i64,
    },
    /// Too few distinct x-endpoints to cut the requested number of ways.
    TooFewEndpoints {
        /// Distinct endpoint abscissae available.
        distinct: usize,
        /// Shard count requested.
        requested: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::CutsNotSorted { at } => {
                write!(f, "shard cuts must be strictly increasing (at {at})")
            }
            PartitionError::TooFewEndpoints {
                distinct,
                requested,
            } => write!(
                f,
                "cannot cut {distinct} distinct endpoint abscissae into {requested} shards"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

impl XCuts {
    /// Build from explicit cut values; rejects non-increasing sequences.
    pub fn new(cuts: Vec<i64>) -> Result<XCuts, PartitionError> {
        for w in cuts.windows(2) {
            if w[1] <= w[0] {
                return Err(PartitionError::CutsNotSorted { at: w[1] });
            }
        }
        Ok(XCuts { cuts })
    }

    /// Equi-weight cuts over the endpoint-abscissa multiset: the same
    /// x-median rule Theorem 2 uses to pick slab base lines, applied
    /// `k − 1` times.  Requires at least `k` distinct endpoint values so
    /// every shard owns a non-empty data range.
    pub fn median_cuts(segs: &[Segment], k: usize) -> Result<XCuts, PartitionError> {
        assert!(k > 0, "shard count must be positive");
        let mut xs: Vec<i64> = segs.iter().flat_map(|s| [s.a.x, s.b.x]).collect();
        xs.sort_unstable();
        xs.dedup();
        if xs.len() < k {
            return Err(PartitionError::TooFewEndpoints {
                distinct: xs.len(),
                requested: k,
            });
        }
        let mut cuts = Vec::with_capacity(k - 1);
        for i in 1..k {
            let cut = xs[i * xs.len() / k];
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        Ok(XCuts { cuts })
    }

    /// Number of shards (`cuts + 1`).
    pub fn shard_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The raw cut values.
    pub fn cuts(&self) -> &[i64] {
        &self.cuts
    }

    /// The shard *owning* abscissa `x`: the unique `i` with
    /// `cuts[i-1] ≤ x < cuts[i]`.
    pub fn owner_of_x(&self, x: i64) -> usize {
        self.cuts.partition_point(|&c| c <= x)
    }

    /// The shard owning a segment, by x-midpoint — the write-routing rule:
    /// the midpoint owner provides the authoritative ack for a replicated
    /// write.
    pub fn owner_of(&self, seg: &Segment) -> usize {
        let (lo, hi) = seg.x_span();
        self.owner_of_x(lo + (hi - lo) / 2)
    }

    /// Inclusive shard-index range a vertical query at abscissa `x` can
    /// *touch*: shards whose closed data range `[cuts[i-1], cuts[i]]`
    /// contains `x`.  Two shards exactly on a cut, one otherwise.  Every
    /// segment stabbed at `x` is stored on each of these shards that owns
    /// part of its span, so any single member already suffices for
    /// `Count`; the full range is what `Collect` merges and de-dups over.
    pub fn touch_range(&self, x: i64) -> (usize, usize) {
        let lo = self.cuts.partition_point(|&c| c < x);
        let hi = self.cuts.partition_point(|&c| c <= x);
        (lo, hi)
    }

    /// Inclusive shard-index range a closed x-span `[lo, hi]` is stored
    /// on: every shard whose half-open ownership range the span
    /// intersects, i.e. `owner(lo) ..= owner(hi)`.  This is the boundary
    /// fragmentation rule: a "long" segment crossing a cut is replicated
    /// into each shard here.
    pub fn span_range(&self, lo: i64, hi: i64) -> (usize, usize) {
        debug_assert!(lo <= hi);
        (self.owner_of_x(lo), self.owner_of_x(hi))
    }

    /// Shard-index range storing `seg` (see [`XCuts::span_range`]).
    pub fn shards_of(&self, seg: &Segment) -> (usize, usize) {
        let (lo, hi) = seg.x_span();
        self.span_range(lo, hi)
    }

    /// Fragment a segment set into per-shard stores, replicating each
    /// boundary-crossing segment into every shard its span touches.
    pub fn fragments(&self, segs: &[Segment]) -> Vec<Vec<Segment>> {
        let mut out = vec![Vec::new(); self.shard_count()];
        for seg in segs {
            let (lo, hi) = self.shards_of(seg);
            for frag in &mut out[lo..=hi] {
                frag.push(*seg);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, x1: i64, x2: i64) -> Segment {
        Segment::new(id, (x1, id as i64), (x2, id as i64 + 1)).unwrap()
    }

    #[test]
    fn ownership_is_a_partition() {
        let cuts = XCuts::new(vec![-5, 0, 40]).unwrap();
        assert_eq!(cuts.shard_count(), 4);
        assert_eq!(cuts.owner_of_x(-6), 0);
        assert_eq!(cuts.owner_of_x(-5), 1); // cut value belongs to the right
        assert_eq!(cuts.owner_of_x(-1), 1);
        assert_eq!(cuts.owner_of_x(0), 2);
        assert_eq!(cuts.owner_of_x(39), 2);
        assert_eq!(cuts.owner_of_x(40), 3);
    }

    #[test]
    fn rejects_unsorted_cuts() {
        assert!(XCuts::new(vec![3, 3]).is_err());
        assert!(XCuts::new(vec![3, 1]).is_err());
        assert!(XCuts::new(Vec::new()).is_ok()); // single shard
    }

    #[test]
    fn touch_widens_exactly_on_cuts() {
        let cuts = XCuts::new(vec![0, 100]).unwrap();
        assert_eq!(cuts.touch_range(-1), (0, 0));
        assert_eq!(cuts.touch_range(0), (0, 1)); // on the cut: both sides
        assert_eq!(cuts.touch_range(1), (1, 1));
        assert_eq!(cuts.touch_range(100), (1, 2));
        assert_eq!(cuts.touch_range(101), (2, 2));
    }

    #[test]
    fn replication_covers_every_touched_shard() {
        // For random-ish segments and abscissae: every shard in
        // touch_range(x) that a segment's span covers must store a
        // replica, and the *owner* of x always stores every segment
        // stabbed at x.
        let cuts = XCuts::new(vec![-7, 3, 50]).unwrap();
        let mut segs = Vec::new();
        let mut id = 0u64;
        for x1 in [-20i64, -7, -6, 0, 3, 10, 49, 50, 60] {
            for x2 in [-7i64, 0, 3, 4, 50, 51, 80] {
                if x2 > x1 {
                    segs.push(seg(id, x1, x2));
                    id += 1;
                }
            }
        }
        let frags = cuts.fragments(&segs);
        for x in -25i64..=85 {
            let owner = cuts.owner_of_x(x);
            for s in &segs {
                let (lo, hi) = s.x_span();
                if lo <= x && x <= hi {
                    assert!(
                        frags[owner].iter().any(|f| f.id == s.id),
                        "owner {owner} of x={x} missing segment {}",
                        s.id
                    );
                }
            }
        }
    }

    #[test]
    fn midpoint_owner_is_within_span_shards() {
        let cuts = XCuts::new(vec![0, 10]).unwrap();
        for s in [seg(1, -5, 5), seg(2, -5, 15), seg(3, 9, 10), seg(4, 10, 11)] {
            let (lo, hi) = cuts.shards_of(&s);
            let owner = cuts.owner_of(&s);
            assert!((lo..=hi).contains(&owner));
        }
    }

    #[test]
    fn median_cuts_balance_and_determinism() {
        let segs: Vec<Segment> = (0..64)
            .map(|i| seg(i, i as i64 * 3, i as i64 * 3 + 100))
            .collect();
        let a = XCuts::median_cuts(&segs, 4).unwrap();
        let b = XCuts::median_cuts(&segs, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shard_count(), 4);
        let frags = a.fragments(&segs);
        assert!(frags.iter().all(|f| !f.is_empty()));
        // Degenerate input: every endpoint identical x-pair.
        let flat: Vec<Segment> = (0..8).map(|i| seg(i, 0, 1)).collect();
        assert!(XCuts::median_cuts(&flat, 4).is_err());
    }
}
