//! Shared brute-force oracles for tests.
//!
//! Every index test in the workspace validates answers against an
//! exhaustive scan; before this module each test file carried its own
//! copy of the same filter-map-sort loop. The helpers here are the one
//! shared implementation. The module is compiled only for this crate's
//! own tests or when the `testutil` feature is enabled (downstream test
//! targets opt in with `segdb-core = { features = ["testutil"] }`).

use segdb_geom::predicates::{hits_vertical, segments_intersect};
use segdb_geom::{Segment, VerticalQuery};

/// The kernel every oracle shares: keep the items matching `keep`, map
/// them to ids, and sort. Generic so substrate crates (whose unit tests
/// see their own types under `cfg(test)`) can use it on any record type.
pub fn oracle_ids<T>(set: &[T], id: impl Fn(&T) -> u64, keep: impl Fn(&T) -> bool) -> Vec<u64> {
    let mut ids: Vec<u64> = set.iter().filter(|t| keep(t)).map(id).collect();
    ids.sort_unstable();
    ids
}

/// Sorted ids of the segments a canonical vertical probe (`x = qx`,
/// ordinate window `[lo, hi]`, `None` = unbounded) intersects.
pub fn oracle_vertical(set: &[Segment], qx: i64, lo: Option<i64>, hi: Option<i64>) -> Vec<u64> {
    oracle_ids(set, |s| s.id, |s| hits_vertical(s, qx, lo, hi))
}

/// Sorted ids of the segments a [`VerticalQuery`] intersects.
pub fn oracle_query(set: &[Segment], q: &VerticalQuery) -> Vec<u64> {
    oracle_ids(set, |s| s.id, |s| q.hits(s))
}

/// Sorted ids of the segments an arbitrary-direction query segment
/// intersects (closed-set semantics, the §5 extension's oracle).
pub fn oracle_intersect(set: &[Segment], q: &Segment) -> Vec<u64> {
    oracle_ids(set, |s| s.id, |s| segments_intersect(s, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn oracles_agree_with_each_other() {
        let set = vec![
            seg(3, (0, 0), (10, 0)),
            seg(1, (0, 5), (10, 5)),
            seg(2, (20, 0), (30, 0)),
        ];
        let by_window = oracle_vertical(&set, 5, Some(0), Some(5));
        let by_query = oracle_query(&set, &VerticalQuery::segment(5, 0, 5));
        let by_segment = oracle_intersect(&set, &seg(99, (5, 0), (5, 5)));
        assert_eq!(by_window, vec![1, 3]);
        assert_eq!(by_window, by_query);
        assert_eq!(by_window, by_segment);
    }

    #[test]
    fn generic_kernel_sorts_and_filters() {
        let set = [(7u64, true), (2, false), (5, true)];
        assert_eq!(oracle_ids(&set, |t| t.0, |t| t.1), vec![5, 7]);
    }
}
