//! Solution 1 (paper §3, Theorem 1): the binary two-level data structure.
//!
//! **First level** — a binary tree over vertical *base lines*. Each node
//! `v` carries the line `bl(v): x = x_v`, chosen as the x-median of the
//! endpoints of the segments reaching `v`; segments intersecting `bl(v)`
//! stay at `v`, the rest pass to the left/right subtree (each receives at
//! most half the endpoints, so the height is `O(log₂ n)`). Recursion
//! stops at a page worth of segments — the paper's "until each leaf node
//! contains `B` segments".
//!
//! **Second level**, per internal node:
//!
//! * `C(v)` — vertical segments *lying on* `bl(v)`, as an
//!   [`IntervalSet`] over their ordinate ranges (the paper's external
//!   interval tree, `O(log_B n + t)` per overlap query);
//! * `L(v)`, `R(v)` — the left and right halves of segments *crossing*
//!   `bl(v)`, as external PSTs for line-based segments (§2). Each
//!   segment appears in both, so the structure stores every segment at
//!   most twice plus once in `C` — `O(n)` blocks total.
//!
//! **Search** for `x = x₀, lo ≤ y ≤ hi` walks one root-to-leaf path. At a
//! node: if `x₀ = x_v`, query `C(v)` and `L(v)` and stop (`L(v)` holds
//! *all* crossing segments, each of which meets the query line exactly at
//! its base point — querying `R(v)` too would double-report); if
//! `x₀ < x_v`, query `L(v)` and go left; symmetrically right. Each
//! segment is reported exactly once.
//!
//! **Updates** (Theorem 1(iii)) — the paper uses a BB\[α\] tree; this
//! implementation uses the standard equivalent, weight-balanced *partial
//! rebuilding*: subtree sizes are maintained on the insert/delete path
//! and the highest α-unbalanced subtree (α = ¾) is rebuilt from scratch,
//! giving the same amortized `O(log₂ n + log_B n / B)` bound.

use crate::chain;
use crate::report::QueryTrace;
use segdb_geom::{FusedSink, MultiSink, ReportSink, Segment, VerticalQuery};
use segdb_itree::overlap::{IntervalSet, IntervalSetState};
use segdb_itree::{Interval, IntervalTreeConfig};
use segdb_obs::trace::{emit as obs_emit, probe, EventKind};
use segdb_pager::{
    ByteReader, ByteWriter, PageId, Pager, PagerError, Result, StatScope, NULL_PAGE,
};
use segdb_pst::{Pst, PstConfig, PstState, Side};
use std::ops::ControlFlow;

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// Construction knobs for [`TwoLevelBinary`].
#[derive(Debug, Clone, Copy)]
pub struct Binary2LConfig {
    /// PST flavour for `L(v)` / `R(v)`: binary (pure Lemma 2 costs) or
    /// packed (Lemma 3 substitute). Default packed.
    pub pst: PstConfig,
    /// Rebuild a subtree when a child holds more than ¾ of its weight
    /// and the weight exceeds this many segments.
    pub rebuild_min: u64,
}

impl Default for Binary2LConfig {
    fn default() -> Self {
        Binary2LConfig {
            pst: PstConfig::packed(),
            rebuild_min: 32,
        }
    }
}

/// Decoded first-level node.
#[derive(Debug)]
enum Node {
    /// Page-chained raw segments.
    Leaf { head: PageId, count: u64 },
    /// Base-line node.
    Internal(Box<Internal>),
}

#[derive(Debug)]
struct Internal {
    /// Base line abscissa `x_v`.
    xv: i64,
    left: PageId,
    right: PageId,
    /// Subtree segment counts (this node's own segments included in
    /// `total`).
    total: u64,
    left_size: u64,
    right_size: u64,
    /// Segments lying on `bl(v)`.
    c: IntervalSetState,
    /// Left halves of segments crossing `bl(v)`.
    l: PstState,
    /// Right halves.
    r: PstState,
}

impl Node {
    fn encode(&self, buf: &mut [u8]) -> Result<()> {
        let mut w = ByteWriter::new(buf);
        match self {
            Node::Leaf { head, count } => {
                w.u8(TAG_LEAF)?;
                w.u32(*head)?;
                w.u64(*count)
            }
            Node::Internal(n) => {
                w.u8(TAG_INTERNAL)?;
                w.i64(n.xv)?;
                w.u32(n.left)?;
                w.u32(n.right)?;
                w.u64(n.total)?;
                w.u64(n.left_size)?;
                w.u64(n.right_size)?;
                n.c.encode(&mut w)?;
                n.l.encode(&mut w)?;
                n.r.encode(&mut w)
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let mut r = ByteReader::new(buf);
        match r.u8()? {
            TAG_LEAF => Ok(Node::Leaf {
                head: r.u32()?,
                count: r.u64()?,
            }),
            TAG_INTERNAL => Ok(Node::Internal(Box::new(Internal {
                xv: r.i64()?,
                left: r.u32()?,
                right: r.u32()?,
                total: r.u64()?,
                left_size: r.u64()?,
                right_size: r.u64()?,
                c: IntervalSetState::decode(&mut r)?,
                l: PstState::decode(&mut r)?,
                r: PstState::decode(&mut r)?,
            }))),
            _ => Err(PagerError::Corrupt("unknown binary2l node tag")),
        }
    }
}

/// The Section-3 two-level structure. See module docs.
///
/// ```
/// use segdb_pager::{Pager, PagerConfig};
/// use segdb_core::binary2l::{Binary2LConfig, TwoLevelBinary};
/// use segdb_geom::{Segment, VerticalQuery};
///
/// let pager = Pager::new(PagerConfig::default());
/// let set = vec![
///     Segment::new(1, (0, 0), (100, 0)).unwrap(),
///     Segment::new(2, (50, 0), (50, 30)).unwrap(), // touches segment 1
/// ];
/// let mut t = TwoLevelBinary::build(&pager, Binary2LConfig::default(), set).unwrap();
/// let (hits, trace) = t.query(&pager, &VerticalQuery::segment(50, 10, 40)).unwrap();
/// assert_eq!(hits.len(), 1);
/// assert!(trace.io.reads > 0);
/// t.insert(&pager, Segment::new(3, (40, 20), (60, 20)).unwrap()).unwrap();
/// let (hits, _) = t.query(&pager, &VerticalQuery::segment(50, 10, 40)).unwrap();
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug)]
pub struct TwoLevelBinary {
    root: PageId,
    len: u64,
    cfg: Binary2LConfig,
}

impl TwoLevelBinary {
    /// Build from an NCT segment set (NCT-ness is the caller's contract;
    /// [`segdb_geom::nct::verify_nct`] checks it).
    pub fn build(pager: &Pager, cfg: Binary2LConfig, segs: Vec<Segment>) -> Result<Self> {
        let len = segs.len() as u64;
        let root = build_rec(pager, &cfg, segs)?;
        Ok(TwoLevelBinary { root, len, cfg })
    }

    /// Serializable identity: `(root page, segment count)`. The config
    /// is context the owner persists alongside.
    pub fn state(&self) -> (PageId, u64) {
        (self.root, self.len)
    }

    /// Reconstruct from a serialized identity.
    pub fn attach(cfg: Binary2LConfig, root: PageId, len: u64) -> Self {
        TwoLevelBinary { root, len, cfg }
    }

    /// Stored segment count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Answer a VS query; returns the hits and the query trace.
    pub fn query(&self, pager: &Pager, q: &VerticalQuery) -> Result<(Vec<Segment>, QueryTrace)> {
        let mut out = Vec::new();
        let trace = self.query_sink(pager, q, &mut out)?;
        Ok((out, trace))
    }

    /// Streaming form of [`TwoLevelBinary::query`]: every hit is pushed
    /// into `sink` in traversal order (C(v) verticals, then the PST,
    /// walking root to leaf). A `Break` stops the walk where it stands;
    /// a count-only sink gets `C(v)` answered from the interval set's
    /// stored counts without reading its lists.
    pub fn query_sink(
        &self,
        pager: &Pager,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let mut trace = QueryTrace::default();
        let mut sink = FusedSink::new(sink);
        let mut hits = 0u64;
        let (x0, lo, hi) = (q.x(), q.lo(), q.hi());
        let mut page = self.root;
        while page != NULL_PAGE && !sink.broke() {
            obs_emit(
                EventKind::FirstLevelVisit,
                u64::from(page),
                trace.first_level_nodes as u64,
            );
            trace.first_level_nodes += 1;
            let node = read_node(pager, page)?;
            match node {
                Node::Leaf { head, .. } => {
                    let _ = chain::scan_ctl(pager, head, |s| {
                        if q.hits(&s) {
                            hits += 1;
                            sink.report(&s)
                        } else {
                            ControlFlow::Continue(())
                        }
                    })?;
                    break;
                }
                Node::Internal(n) => {
                    if x0 == n.xv {
                        // C(v): on-line verticals overlapping [lo, hi].
                        let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
                        obs_emit(EventKind::SecondLevelProbe, probe::C_SET, 0);
                        trace.second_level_probes += 1;
                        if !sink.want_segments() {
                            let cnt = c.overlap_count(pager, lo, hi)?;
                            hits += cnt;
                            let _ = sink.report_count(cnt);
                        } else {
                            let mut bad = false;
                            let _ = c.overlap_ctl(pager, lo, hi, &mut |iv| match Segment::new(
                                iv.id,
                                (n.xv, iv.lo),
                                (n.xv, iv.hi),
                            ) {
                                Ok(s) => {
                                    hits += 1;
                                    sink.report(&s)
                                }
                                Err(_) => {
                                    bad = true;
                                    ControlFlow::Break(())
                                }
                            })?;
                            if bad {
                                return Err(PagerError::Corrupt("bad C(v) interval"));
                            }
                        }
                        if sink.broke() {
                            break;
                        }
                        // L(v) holds every crossing segment; the query
                        // line passes through all their base points.
                        let l = Pst::attach(pager, n.xv, Side::Left, self.cfg.pst, n.l)?;
                        obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                        let st = l.query_sink(pager, x0, lo, hi, &mut sink)?;
                        hits += st.hits as u64;
                        trace.second_level_probes += 1;
                        break;
                    } else if x0 < n.xv {
                        let l = Pst::attach(pager, n.xv, Side::Left, self.cfg.pst, n.l)?;
                        obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                        let st = l.query_sink(pager, x0, lo, hi, &mut sink)?;
                        hits += st.hits as u64;
                        trace.second_level_probes += 1;
                        page = n.left;
                    } else {
                        let r = Pst::attach(pager, n.xv, Side::Right, self.cfg.pst, n.r)?;
                        obs_emit(EventKind::SecondLevelProbe, probe::R_PST, 0);
                        let st = r.query_sink(pager, x0, lo, hi, &mut sink)?;
                        hits += st.hits as u64;
                        trace.second_level_probes += 1;
                        page = n.right;
                    }
                }
            }
        }
        trace.hits = hits.min(u32::MAX as u64) as u32;
        trace.io = scope.finish();
        Ok(trace)
    }

    /// Batched form of [`TwoLevelBinary::query_sink`]: the whole batch
    /// descends the base-line tree level by level, so each first-level
    /// node is read once per batch, and every node's `L(v)`/`R(v)` PSTs
    /// are walked once for all the slots that probe them (see
    /// [`Pst::query_batch_sink`]). Per-slot `Break` retires only that
    /// slot; the walk keeps charging pages while any slot is active.
    pub fn query_batch_sink(&self, pager: &Pager, multi: &mut MultiSink<'_>) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let mut trace = QueryTrace::default();
        let mut frontier: Vec<(PageId, Vec<usize>)> = if self.root == NULL_PAGE {
            Vec::new()
        } else {
            vec![(self.root, (0..multi.len()).collect())]
        };
        while !frontier.is_empty() {
            let mut next: Vec<(PageId, Vec<usize>)> = Vec::new();
            for (page, group) in frontier.drain(..) {
                let group: Vec<usize> = group.into_iter().filter(|&i| multi.is_active(i)).collect();
                if group.is_empty() {
                    continue;
                }
                obs_emit(
                    EventKind::FirstLevelVisit,
                    u64::from(page),
                    trace.first_level_nodes as u64,
                );
                trace.first_level_nodes += 1;
                match read_node(pager, page)? {
                    Node::Leaf { head, .. } => {
                        let _ = chain::scan_ctl(pager, head, |s| {
                            for &i in &group {
                                if multi.is_active(i) && multi.query(i).hits(&s) {
                                    let _ = multi.report(i, &s);
                                }
                            }
                            if group.iter().any(|&i| multi.is_active(i)) {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        })?;
                    }
                    Node::Internal(n) => {
                        let mut lqs: Vec<segdb_pst::BatchQuery> = Vec::new();
                        let mut rqs: Vec<segdb_pst::BatchQuery> = Vec::new();
                        let (mut lkids, mut rkids) = (Vec::new(), Vec::new());
                        let mut c_set: Option<IntervalSet> = None;
                        for &i in &group {
                            let q = *multi.query(i);
                            let (x0, lo, hi) = (q.x(), q.lo(), q.hi());
                            if x0 == n.xv {
                                // C(v): on-line verticals overlapping [lo, hi].
                                let c = match &c_set {
                                    Some(c) => c,
                                    None => {
                                        c_set = Some(IntervalSet::attach(
                                            pager,
                                            IntervalTreeConfig::default(),
                                            n.c,
                                        )?);
                                        c_set.as_ref().expect("just set")
                                    }
                                };
                                obs_emit(EventKind::SecondLevelProbe, probe::C_SET, 0);
                                trace.second_level_probes += 1;
                                if !multi.want_segments(i) {
                                    let cnt = c.overlap_count(pager, lo, hi)?;
                                    let _ = multi.report_count(i, cnt);
                                } else {
                                    let mut bad = false;
                                    let _ =
                                        c.overlap_ctl(
                                            pager,
                                            lo,
                                            hi,
                                            &mut |iv| match Segment::new(
                                                iv.id,
                                                (n.xv, iv.lo),
                                                (n.xv, iv.hi),
                                            ) {
                                                Ok(s) => multi.report(i, &s),
                                                Err(_) => {
                                                    bad = true;
                                                    ControlFlow::Break(())
                                                }
                                            },
                                        )?;
                                    if bad {
                                        return Err(PagerError::Corrupt("bad C(v) interval"));
                                    }
                                }
                                // L(v) holds every crossing segment; the
                                // query stops at this node afterwards.
                                if multi.is_active(i) {
                                    lqs.push(segdb_pst::BatchQuery {
                                        qx: x0,
                                        lo,
                                        hi,
                                        tag: i,
                                    });
                                }
                            } else if x0 < n.xv {
                                lqs.push(segdb_pst::BatchQuery {
                                    qx: x0,
                                    lo,
                                    hi,
                                    tag: i,
                                });
                                lkids.push(i);
                            } else {
                                rqs.push(segdb_pst::BatchQuery {
                                    qx: x0,
                                    lo,
                                    hi,
                                    tag: i,
                                });
                                rkids.push(i);
                            }
                        }
                        if !lqs.is_empty() {
                            let l = Pst::attach(pager, n.xv, Side::Left, self.cfg.pst, n.l)?;
                            obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                            trace.second_level_probes += 1;
                            l.query_batch_sink(pager, &lqs, &mut |i, s| multi.report(i, s))?;
                        }
                        if !rqs.is_empty() {
                            let r = Pst::attach(pager, n.xv, Side::Right, self.cfg.pst, n.r)?;
                            obs_emit(EventKind::SecondLevelProbe, probe::R_PST, 0);
                            trace.second_level_probes += 1;
                            r.query_batch_sink(pager, &rqs, &mut |i, s| multi.report(i, s))?;
                        }
                        if n.left != NULL_PAGE && !lkids.is_empty() {
                            next.push((n.left, lkids));
                        }
                        if n.right != NULL_PAGE && !rkids.is_empty() {
                            next.push((n.right, rkids));
                        }
                    }
                }
            }
            frontier = next;
        }
        trace.io = scope.finish();
        Ok(trace)
    }

    /// Pages of the first-level tree's internal nodes, breadth-first
    /// from the root, at most `budget` — the levels every query descends
    /// through and therefore worth pinning resident (see
    /// [`Pager::pin_pages`]).
    pub fn hot_pages(&self, pager: &Pager, budget: usize) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut frontier = std::collections::VecDeque::new();
        if self.root != NULL_PAGE {
            frontier.push_back(self.root);
        }
        while let Some(page) = frontier.pop_front() {
            if out.len() >= budget {
                break;
            }
            if let Node::Internal(n) = read_node(pager, page)? {
                out.push(page);
                if n.left != NULL_PAGE {
                    frontier.push_back(n.left);
                }
                if n.right != NULL_PAGE {
                    frontier.push_back(n.right);
                }
            }
        }
        Ok(out)
    }

    /// Insert a segment (must keep the set NCT — caller's contract).
    /// Amortized `O(log₂ n + log_B n)` I/Os including rebuilds.
    pub fn insert(&mut self, pager: &Pager, seg: Segment) -> Result<()> {
        self.len += 1;
        if self.root == NULL_PAGE {
            self.root = leaf_from(pager, &[seg])?;
            return Ok(());
        }
        // Path of internal pages for the balance check.
        let mut path: Vec<PageId> = Vec::new();
        let mut page = self.root;
        loop {
            let node = read_node(pager, page)?;
            match node {
                Node::Leaf { head, count } => {
                    let new_head = chain::push(pager, head, &seg)?;
                    let count = count + 1;
                    if count as usize > 2 * chain::cap(pager.page_size()) {
                        // Leaf outgrew its page budget: rebuild it as a
                        // proper subtree in place.
                        let mut segs = chain::collect(pager, new_head)?;
                        chain::destroy(pager, new_head)?;
                        segs.shrink_to_fit();
                        build_rec_at(pager, &self.cfg, segs, page)?;
                    } else {
                        write_node(
                            pager,
                            page,
                            &Node::Leaf {
                                head: new_head,
                                count,
                            },
                        )?;
                    }
                    break;
                }
                Node::Internal(mut n) => {
                    n.total += 1;
                    path.push(page);
                    if seg.is_vertical() && seg.a.x == n.xv {
                        let mut c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
                        c.insert(pager, Interval::new(seg.id, seg.a.y, seg.b.y))?;
                        n.c = c.state();
                        write_node(pager, page, &Node::Internal(n))?;
                        break;
                    } else if seg.spans_x(n.xv) {
                        let mut l = Pst::attach(pager, n.xv, Side::Left, self.cfg.pst, n.l)?;
                        l.insert(pager, seg)?;
                        n.l = l.state();
                        let mut r = Pst::attach(pager, n.xv, Side::Right, self.cfg.pst, n.r)?;
                        r.insert(pager, seg)?;
                        n.r = r.state();
                        write_node(pager, page, &Node::Internal(n))?;
                        break;
                    } else if seg.b.x < n.xv {
                        n.left_size += 1;
                        if n.left == NULL_PAGE {
                            n.left = leaf_from(pager, &[seg])?;
                            write_node(pager, page, &Node::Internal(n))?;
                            break;
                        }
                        let next = n.left;
                        write_node(pager, page, &Node::Internal(n))?;
                        page = next;
                    } else {
                        n.right_size += 1;
                        if n.right == NULL_PAGE {
                            n.right = leaf_from(pager, &[seg])?;
                            write_node(pager, page, &Node::Internal(n))?;
                            break;
                        }
                        let next = n.right;
                        write_node(pager, page, &Node::Internal(n))?;
                        page = next;
                    }
                }
            }
        }
        self.rebalance_path(pager, &path)
    }

    /// Delete a stored segment (by value; the id identifies it). Returns
    /// whether it was found at the expected place.
    pub fn remove(&mut self, pager: &Pager, seg: &Segment) -> Result<bool> {
        let mut path: Vec<PageId> = Vec::new();
        let mut page = self.root;
        let mut found = false;
        while page != NULL_PAGE {
            let node = read_node(pager, page)?;
            match node {
                Node::Leaf { head, count } => {
                    found = chain::remove(pager, head, seg.id)?;
                    if found {
                        write_node(
                            pager,
                            page,
                            &Node::Leaf {
                                head,
                                count: count - 1,
                            },
                        )?;
                    }
                    break;
                }
                Node::Internal(mut n) => {
                    path.push(page);
                    if seg.is_vertical() && seg.a.x == n.xv {
                        let mut c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
                        found = c.remove(pager, &Interval::new(seg.id, seg.a.y, seg.b.y))?;
                        n.c = c.state();
                        if found {
                            n.total -= 1;
                        }
                        write_node(pager, page, &Node::Internal(n))?;
                        break;
                    } else if seg.spans_x(n.xv) {
                        let mut l = Pst::attach(pager, n.xv, Side::Left, self.cfg.pst, n.l)?;
                        l.remove(pager, seg.id)?;
                        n.l = l.state();
                        let mut r = Pst::attach(pager, n.xv, Side::Right, self.cfg.pst, n.r)?;
                        r.remove(pager, seg.id)?;
                        n.r = r.state();
                        n.total -= 1;
                        found = true;
                        write_node(pager, page, &Node::Internal(n))?;
                        break;
                    } else if seg.b.x < n.xv {
                        n.total -= 1;
                        n.left_size -= 1;
                        let next = n.left;
                        write_node(pager, page, &Node::Internal(n))?;
                        page = next;
                    } else {
                        n.total -= 1;
                        n.right_size -= 1;
                        let next = n.right;
                        write_node(pager, page, &Node::Internal(n))?;
                        page = next;
                    }
                }
            }
        }
        if found {
            self.len -= 1;
            self.rebalance_path(pager, &path)?;
        }
        Ok(found)
    }

    /// Structural summary — how the §3 construction distributed the
    /// segments (teaching/debugging aid, used by the paper-figure
    /// fidelity tests).
    pub fn describe(&self, pager: &Pager) -> Result<StructureStats> {
        let mut st = StructureStats::default();
        if self.root != NULL_PAGE {
            describe_rec(pager, &self.cfg, self.root, 1, &mut st)?;
        }
        Ok(st)
    }

    /// Every stored segment (rebuild/test helper).
    pub fn scan_all(&self, pager: &Pager) -> Result<Vec<Segment>> {
        let mut out = Vec::with_capacity(self.len as usize);
        if self.root != NULL_PAGE {
            collect_rec(pager, &self.cfg, self.root, &mut out)?;
        }
        Ok(out)
    }

    /// Free every page.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        if self.root != NULL_PAGE {
            destroy_rec(pager, &self.cfg, self.root)?;
        }
        Ok(())
    }

    /// Deep validation of the first-level invariants and every
    /// second-level structure.
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        if self.root == NULL_PAGE {
            if self.len != 0 {
                return Err(PagerError::Corrupt("binary2l empty root, nonzero len"));
            }
            return Ok(());
        }
        let total = validate_rec(pager, &self.cfg, self.root, None, None)?;
        if total != self.len {
            return Err(PagerError::Corrupt("binary2l len mismatch"));
        }
        Ok(())
    }

    fn rebalance_path(&mut self, pager: &Pager, path: &[PageId]) -> Result<()> {
        for &page in path {
            if let Node::Internal(n) = read_node(pager, page)? {
                if n.total < self.cfg.rebuild_min {
                    break;
                }
                let threshold = n.total * 3 / 4;
                if n.left_size > threshold || n.right_size > threshold {
                    let mut segs = Vec::with_capacity(n.total as usize);
                    collect_rec(pager, &self.cfg, page, &mut segs)?;
                    destroy_children_of(pager, &self.cfg, page)?;
                    build_rec_at(pager, &self.cfg, segs, page)?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}

/// What [`TwoLevelBinary::describe`] reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StructureStats {
    /// First-level internal (base-line) nodes.
    pub internal_nodes: u64,
    /// First-level leaves.
    pub leaves: u64,
    /// Tree height (levels).
    pub height: u32,
    /// Segments lying on base lines (Σ |C(v)|).
    pub on_line: u64,
    /// Segments crossing base lines (Σ |L(v)| = Σ |R(v)|).
    pub crossing: u64,
    /// Segments stored in leaves.
    pub in_leaves: u64,
}

fn describe_rec(
    pager: &Pager,
    cfg: &Binary2LConfig,
    page: PageId,
    depth: u32,
    st: &mut StructureStats,
) -> Result<()> {
    st.height = st.height.max(depth);
    match read_node(pager, page)? {
        Node::Leaf { count, .. } => {
            st.leaves += 1;
            st.in_leaves += count;
        }
        Node::Internal(n) => {
            st.internal_nodes += 1;
            let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
            st.on_line += c.len();
            let l = Pst::attach(pager, n.xv, Side::Left, cfg.pst, n.l)?;
            st.crossing += l.len();
            if n.left != NULL_PAGE {
                describe_rec(pager, cfg, n.left, depth + 1, st)?;
            }
            if n.right != NULL_PAGE {
                describe_rec(pager, cfg, n.right, depth + 1, st)?;
            }
        }
    }
    Ok(())
}

fn read_node(pager: &Pager, id: PageId) -> Result<Node> {
    pager.with_page(id, Node::decode)?
}

fn write_node(pager: &Pager, id: PageId, node: &Node) -> Result<()> {
    pager.overwrite_page(id, |buf| node.encode(buf))?
}

fn leaf_from(pager: &Pager, segs: &[Segment]) -> Result<PageId> {
    let page = pager.allocate()?;
    let head = chain::write(pager, segs)?;
    write_node(
        pager,
        page,
        &Node::Leaf {
            head,
            count: segs.len() as u64,
        },
    )?;
    Ok(page)
}

fn build_rec(pager: &Pager, cfg: &Binary2LConfig, segs: Vec<Segment>) -> Result<PageId> {
    let page = pager.allocate()?;
    build_rec_at(pager, cfg, segs, page)?;
    Ok(page)
}

fn build_rec_at(
    pager: &Pager,
    cfg: &Binary2LConfig,
    segs: Vec<Segment>,
    page: PageId,
) -> Result<()> {
    if segs.len() <= chain::cap(pager.page_size()) {
        let head = chain::write(pager, &segs)?;
        return write_node(
            pager,
            page,
            &Node::Leaf {
                head,
                count: segs.len() as u64,
            },
        );
    }
    // Median endpoint abscissa.
    let mut xs: Vec<i64> = segs.iter().flat_map(|s| [s.a.x, s.b.x]).collect();
    xs.sort_unstable();
    let xv = xs[xs.len() / 2];

    let total = segs.len() as u64;
    let mut on_line = Vec::new();
    let mut crossing = Vec::new();
    let (mut lefts, mut rights) = (Vec::new(), Vec::new());
    for s in segs {
        if s.is_vertical() && s.a.x == xv {
            on_line.push(Interval::new(s.id, s.a.y, s.b.y));
        } else if s.spans_x(xv) {
            crossing.push(s);
        } else if s.b.x < xv {
            lefts.push(s);
        } else {
            rights.push(s);
        }
    }
    let c = IntervalSet::build(pager, IntervalTreeConfig::default(), on_line)?.state();
    let l = Pst::build(pager, xv, Side::Left, cfg.pst, crossing.clone())?.state();
    let r = Pst::build(pager, xv, Side::Right, cfg.pst, crossing)?.state();
    let (left_size, right_size) = (lefts.len() as u64, rights.len() as u64);
    let left = if lefts.is_empty() {
        NULL_PAGE
    } else {
        build_rec(pager, cfg, lefts)?
    };
    let right = if rights.is_empty() {
        NULL_PAGE
    } else {
        build_rec(pager, cfg, rights)?
    };
    write_node(
        pager,
        page,
        &Node::Internal(Box::new(Internal {
            xv,
            left,
            right,
            total,
            left_size,
            right_size,
            c,
            l,
            r,
        })),
    )
}

fn collect_rec(
    pager: &Pager,
    cfg: &Binary2LConfig,
    page: PageId,
    out: &mut Vec<Segment>,
) -> Result<()> {
    match read_node(pager, page)? {
        Node::Leaf { head, .. } => chain::scan(pager, head, |s| out.push(s))?,
        Node::Internal(n) => {
            let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
            for iv in c.scan_all(pager)? {
                out.push(
                    Segment::new(iv.id, (n.xv, iv.lo), (n.xv, iv.hi))
                        .map_err(|_| PagerError::Corrupt("bad C(v) interval"))?,
                );
            }
            // L(v) alone holds every crossing segment once.
            let l = Pst::attach(pager, n.xv, Side::Left, cfg.pst, n.l)?;
            out.extend(l.scan_all(pager)?);
            if n.left != NULL_PAGE {
                collect_rec(pager, cfg, n.left, out)?;
            }
            if n.right != NULL_PAGE {
                collect_rec(pager, cfg, n.right, out)?;
            }
        }
    }
    Ok(())
}

fn destroy_children_of(pager: &Pager, cfg: &Binary2LConfig, page: PageId) -> Result<()> {
    if let Node::Internal(n) = read_node(pager, page)? {
        IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?.destroy(pager)?;
        Pst::attach(pager, n.xv, Side::Left, cfg.pst, n.l)?.destroy(pager)?;
        Pst::attach(pager, n.xv, Side::Right, cfg.pst, n.r)?.destroy(pager)?;
        if n.left != NULL_PAGE {
            destroy_rec(pager, cfg, n.left)?;
        }
        if n.right != NULL_PAGE {
            destroy_rec(pager, cfg, n.right)?;
        }
    } else if let Node::Leaf { head, .. } = read_node(pager, page)? {
        chain::destroy(pager, head)?;
    }
    Ok(())
}

fn destroy_rec(pager: &Pager, cfg: &Binary2LConfig, page: PageId) -> Result<()> {
    destroy_children_of(pager, cfg, page)?;
    pager.free(page)
}

/// Validates the subtree and returns its segment count.
fn validate_rec(
    pager: &Pager,
    cfg: &Binary2LConfig,
    page: PageId,
    lo: Option<i64>,
    hi: Option<i64>,
) -> Result<u64> {
    match read_node(pager, page)? {
        Node::Leaf { head, count } => {
            let mut n = 0u64;
            let mut ok = true;
            chain::scan(pager, head, |s| {
                n += 1;
                // Every leaf segment lies strictly inside the ancestor
                // slab.
                ok &= lo.is_none_or(|l| s.a.x > l) && hi.is_none_or(|h| s.b.x < h);
            })?;
            if !ok {
                return Err(PagerError::Corrupt("leaf segment escapes slab"));
            }
            if n != count {
                return Err(PagerError::Corrupt("leaf count stale"));
            }
            Ok(n)
        }
        Node::Internal(n) => {
            if lo.is_some_and(|l| n.xv <= l) || hi.is_some_and(|h| n.xv >= h) {
                return Err(PagerError::Corrupt("base line escapes ancestor slab"));
            }
            let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c)?;
            c.validate(pager)?;
            let l = Pst::attach(pager, n.xv, Side::Left, cfg.pst, n.l)?;
            l.validate(pager)?;
            let r = Pst::attach(pager, n.xv, Side::Right, cfg.pst, n.r)?;
            r.validate(pager)?;
            if l.len() != r.len() {
                return Err(PagerError::Corrupt("L(v)/R(v) length mismatch"));
            }
            let here = c.len() + l.len();
            let left = if n.left == NULL_PAGE {
                0
            } else {
                validate_rec(pager, cfg, n.left, lo, Some(n.xv))?
            };
            let right = if n.right == NULL_PAGE {
                0
            } else {
                validate_rec(pager, cfg, n.right, Some(n.xv), hi)?
            };
            if left != n.left_size || right != n.right_size {
                return Err(PagerError::Corrupt("subtree sizes stale"));
            }
            if here + left + right != n.total {
                return Err(PagerError::Corrupt("subtree total stale"));
            }
            Ok(n.total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ids;
    use segdb_geom::gen::{grid_map, mixed_map, nested, strips, temporal, vertical_queries};
    use segdb_geom::query::scan_oracle;
    use segdb_pager::PagerConfig;

    fn pager(page: usize) -> Pager {
        Pager::new(PagerConfig {
            page_size: page,
            cache_pages: 0,
        })
    }

    fn check_queries(set: &[Segment], t: &TwoLevelBinary, p: &Pager, queries: &[VerticalQuery]) {
        for q in queries {
            let (hits, trace) = t.query(p, q).unwrap();
            let expect = ids(&scan_oracle(set, q));
            assert_eq!(ids(&crate::report::normalize(hits)), expect, "q={q:?}");
            assert_eq!(trace.hits as usize, expect.len());
        }
    }

    #[test]
    fn matches_oracle_on_all_families() {
        for (name, set) in [
            ("mixed", mixed_map(700, 5)),
            ("grid", grid_map(12, 12, 32, 100, 9)),
            ("strips", strips(500, 1 << 14, 16, 300, 2)),
            ("temporal", temporal(400, 4096, 8)),
            ("nested", nested(300)),
        ] {
            let p = pager(512);
            let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
            t.validate(&p).unwrap();
            assert_eq!(t.len(), set.len() as u64, "{name}");
            let mut queries = vertical_queries(&set, 25, 100, 77);
            // Boundary-exact: hit actual endpoints and base lines.
            for s in set.iter().take(10) {
                queries.push(VerticalQuery::Line { x: s.a.x });
                queries.push(VerticalQuery::segment(s.b.x, s.b.y - 5, s.b.y + 5));
            }
            check_queries(&set, &t, &p, &queries);
        }
    }

    #[test]
    fn binary_pst_config_works_too() {
        let p = pager(512);
        let set = mixed_map(400, 21);
        let cfg = Binary2LConfig {
            pst: PstConfig::binary(),
            ..Binary2LConfig::default()
        };
        let t = TwoLevelBinary::build(&p, cfg, set.clone()).unwrap();
        t.validate(&p).unwrap();
        check_queries(&set, &t, &p, &vertical_queries(&set, 20, 150, 3));
    }

    #[test]
    fn incremental_insert_matches_oracle() {
        let p = pager(512);
        let set = mixed_map(400, 33);
        let mut t = TwoLevelBinary::build(&p, Binary2LConfig::default(), vec![]).unwrap();
        for (i, s) in set.iter().enumerate() {
            t.insert(&p, *s).unwrap();
            if i % 97 == 0 {
                t.validate(&p).unwrap();
            }
        }
        t.validate(&p).unwrap();
        check_queries(&set, &t, &p, &vertical_queries(&set, 25, 120, 5));
        let mut all = ids(&t.scan_all(&p).unwrap());
        all.dedup();
        assert_eq!(all.len(), set.len());
    }

    #[test]
    fn delete_then_query() {
        let p = pager(512);
        let set = temporal(300, 2048, 4);
        let mut t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
        let (gone, kept): (Vec<Segment>, Vec<Segment>) = set.iter().partition(|s| s.id % 3 == 0);
        for s in &gone {
            assert!(t.remove(&p, s).unwrap(), "missing {s}");
        }
        t.validate(&p).unwrap();
        assert_eq!(t.len() as usize, kept.len());
        let kept: Vec<Segment> = kept;
        check_queries(&kept, &t, &p, &vertical_queries(&kept, 25, 150, 6));
    }

    #[test]
    fn query_io_beats_full_scan() {
        let p = pager(1024);
        let set = strips(20_000, 1 << 16, 16, 200, 5);
        let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
        let fs = crate::FullScan::build(&p, &set).unwrap();
        let queries = vertical_queries(&set, 20, 20, 9);
        let (mut t_io, mut fs_io) = (0u64, 0u64);
        for q in &queries {
            let (h1, tr1) = t.query(&p, q).unwrap();
            let (h2, tr2) = fs.query(&p, q).unwrap();
            assert_eq!(ids(&h1), ids(&h2));
            t_io += tr1.io.reads;
            fs_io += tr2.io.reads;
        }
        assert!(t_io * 10 < fs_io, "index {t_io} vs scan {fs_io}");
    }

    #[test]
    fn space_is_linear_in_n() {
        let p = pager(1024);
        let set = strips(10_000, 1 << 16, 16, 250, 6);
        let before = p.live_pages();
        let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
        let used = p.live_pages() - before;
        let b = chain::cap(1024); // segments per block
        let n_blocks = set.len() / b + 1;
        assert!(used < 12 * n_blocks, "used {used} blocks, n/B = {n_blocks}");
        t.destroy(&p).unwrap();
        assert_eq!(p.live_pages(), before);
    }

    #[test]
    fn empty_and_single() {
        let p = pager(512);
        let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), vec![]).unwrap();
        t.validate(&p).unwrap();
        let (hits, _) = t.query(&p, &VerticalQuery::Line { x: 0 }).unwrap();
        assert!(hits.is_empty());
        let one = vec![Segment::new(1, (0, 0), (5, 5)).unwrap()];
        let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), one.clone()).unwrap();
        let (hits, _) = t.query(&p, &VerticalQuery::segment(3, 0, 5)).unwrap();
        assert_eq!(ids(&hits), vec![1]);
    }
}
