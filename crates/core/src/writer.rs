//! The online write path: single-writer / snapshot-reader semantics
//! over a [`SegmentDatabase`].
//!
//! # Architecture
//!
//! The engine layers three pieces over the paper's structures:
//!
//! * **WAL** ([`segdb_wal::Wal`]) — every accepted insert/delete is
//!   appended (group-committed) before it is acknowledged, carrying the
//!   client request id as the idempotence key.
//! * **Delta overlay** — accepted ops land in a bounded memtable-style
//!   [`DeltaSnap`] (copy-on-write behind an `Arc`), merged into every
//!   query: `answer = base ∖ deltaDeletes ∪ deltaInserts`. Counts use
//!   exact arithmetic (`base − |deletes ∩ q| + |inserts ∩ q|`), which
//!   keeps the index's count-from-headers fast paths intact.
//! * **Fold** — when the delta reaches `delta_limit`, the writer takes
//!   the database write lock and replays the pending ops through the
//!   native [`SegmentDatabase::insert`]/[`SegmentDatabase::remove`]
//!   machinery (the paper's amortized partial rebuilds, Lemma 3 /
//!   BB[α]), checkpoints `wal_seq` via [`SegmentDatabase::save`], and
//!   truncates the WAL. Readers never observe a half-applied fold: they
//!   hold the read lock for the whole base-walk *and* delta snapshot.
//!
//! # Crash contract
//!
//! Recovery ([`WriteEngine::recover`]) replays WAL records with
//! `seq > superblock.wal_seq` against the re-opened database, then
//! checkpoints. The device model is sync-atomic (the durable image
//! advances only at `sync`, as [`segdb_pager::FaultDevice`] enforces),
//! so every crash lands in one of three states: before the fold's save
//! (WAL replays onto the old image), after save but before WAL
//! truncation (replay skips everything via the checkpoint), or after
//! truncation (nothing to do). A group-commit window may lose its
//! unsynced tail — exactly the ops never acknowledged.

use crate::facade::{DbError, SegmentDatabase};
use crate::report::{QueryAnswer, QueryMode, QueryTrace};
use segdb_geom::transform::Direction;
use segdb_geom::{Point, Segment, VerticalQuery};
use segdb_pager::Device;
use segdb_wal::{Wal, WalOp, WalRecord, WalStats};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning for the write engine.
#[derive(Debug, Clone, Copy)]
pub struct WriterConfig {
    /// WAL group-commit window (records per sync; 1 = sync every op).
    pub group_window: usize,
    /// Fold the delta into the index once it holds this many ops.
    pub delta_limit: usize,
    /// Request ids remembered for idempotent retry detection.
    pub recent_ids: usize,
    /// Applied WAL records retained in memory for replica catch-up
    /// ([`WriteEngine::records_since`]). The WAL itself is truncated at
    /// every fold, so this ring is the only replay source a lagging
    /// peer can pull from.
    pub sync_history: usize,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            group_window: 8,
            delta_limit: 1024,
            recent_ids: 4096,
            sync_history: 4096,
        }
    }
}

/// Acknowledgement for one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// WAL sequence number the op was logged under (0 for a no-op
    /// delete that found nothing).
    pub seq: u64,
    /// Whether the op changed the database (a delete of an absent
    /// segment is acknowledged but `applied = false`).
    pub applied: bool,
    /// True when this request id was already processed — the stored
    /// acknowledgement is returned and nothing is re-applied.
    pub duplicate: bool,
}

/// Why a replica catch-up request could not be served from the
/// in-memory history ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryError {
    /// The ring no longer reaches back to the requested cursor: the
    /// oldest retained record follows `floor`, so a peer asking for
    /// records after a smaller sequence number needs a full rebuild.
    Truncated {
        /// Sequence number the retained history starts after.
        floor: u64,
    },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Truncated { floor } => write!(
                f,
                "sync history truncated: records are retained only after seq {floor}; \
                 rebuild the replica from a fresh fragment instead"
            ),
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records found in the log (durable at the crash).
    pub replayed: u64,
    /// Records actually applied (`seq` above the checkpoint).
    pub applied: u64,
    /// The checkpoint the superblock carried before replay.
    pub checkpoint: u64,
    /// Highest sequence number after replay.
    pub last_seq: u64,
}

/// Immutable snapshot of the unfolded ops. Readers clone the `Arc`
/// under the database read lock; the writer replaces the whole snapshot
/// on every mutation (ops are rare and bounded by `delta_limit`, so
/// copy-on-write beats finer locking).
#[derive(Debug, Default, Clone)]
pub struct DeltaSnap {
    /// Canonical-frame segments inserted since the last fold.
    inserts: Vec<Segment>,
    /// Canonical-frame segments deleted since the last fold (always
    /// segments present in the base index — deletes of delta inserts
    /// cancel in place).
    deletes: Vec<Segment>,
}

impl DeltaSnap {
    /// Ops held (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the overlay is empty (queries take the base-only path).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Bounded FIFO map of recently-seen request ids → their ack.
#[derive(Debug, Default)]
struct RecentIds {
    map: HashMap<u64, WriteAck>,
    order: VecDeque<u64>,
    cap: usize,
}

impl RecentIds {
    fn new(cap: usize) -> Self {
        RecentIds {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn get(&self, id: u64) -> Option<WriteAck> {
        self.map.get(&id).copied()
    }

    fn put(&mut self, id: u64, ack: WriteAck) {
        if self.map.insert(id, ack).is_none() {
            self.order.push_back(id);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// One accepted-but-unfolded op, kept in WAL order (user frame — fold
/// replays through the facade, which re-applies the direction shear).
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    seq: u64,
    insert: bool,
    seg: Segment,
}

/// Writer-side state serialized behind one mutex: the WAL handle, the
/// unfolded op list, the idempotence table and the catch-up ring.
struct WriterInner {
    wal: Wal,
    pending: Vec<PendingOp>,
    recent: RecentIds,
    /// Applied records in seq order, surviving WAL truncation at fold
    /// time so lagging replicas can replay them (bounded ring).
    history: VecDeque<WalRecord>,
    /// Sequence number the retained history starts after: every record
    /// with `seq > history_floor` is still in `history`.
    history_floor: u64,
}

impl WriterInner {
    fn push_history(&mut self, cap: usize, rec: WalRecord) {
        self.history.push_back(rec);
        while self.history.len() > cap.max(1) {
            if let Some(old) = self.history.pop_front() {
                self.history_floor = old.seq;
            }
        }
    }
}

/// Monotonic counters surfaced under `stats.writer`.
#[derive(Debug, Default)]
pub struct WriterCounters {
    /// Inserts accepted (duplicates excluded).
    pub inserts: AtomicU64,
    /// Deletes accepted that found their target.
    pub deletes: AtomicU64,
    /// Deletes acknowledged without a target.
    pub delete_misses: AtomicU64,
    /// Retried request ids answered from the idempotence table.
    pub duplicates: AtomicU64,
    /// Delta folds (each one runs the amortized partial-rebuild path).
    pub rebuilds: AtomicU64,
    /// Tombstone compactions.
    pub compactions: AtomicU64,
    /// Epoch: bumped on every fold or compaction (readers of `stats`
    /// can detect index swaps).
    pub epoch: AtomicU64,
}

/// The write engine: one writer, many snapshot readers.
pub struct WriteEngine {
    db: RwLock<SegmentDatabase>,
    delta: Mutex<Arc<DeltaSnap>>,
    writer: Mutex<WriterInner>,
    direction: Direction,
    cfg: WriterConfig,
    counters: WriterCounters,
}

impl std::fmt::Debug for WriteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteEngine")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl WriteEngine {
    /// Wrap a database with a fresh (already-replayed) WAL device.
    ///
    /// Replays any durable records above the database's checkpoint,
    /// folds them in, re-checkpoints, and truncates the log — after
    /// this returns, the engine serves reads and writes immediately.
    pub fn recover(
        mut db: SegmentDatabase,
        wal_dev: Box<dyn Device>,
        cfg: WriterConfig,
    ) -> Result<(Self, RecoveryReport), DbError> {
        let (mut wal, records) = Wal::open(wal_dev, cfg.group_window)?;
        let checkpoint = db.wal_seq();
        wal.set_seq_floor(checkpoint);
        let mut recent = RecentIds::new(cfg.recent_ids);
        let mut report = RecoveryReport {
            replayed: records.len() as u64,
            checkpoint,
            ..RecoveryReport::default()
        };
        let mut last = checkpoint;
        // Every durable record seeds the catch-up ring: a freshly
        // restarted primary can serve `sync_from` for its whole log.
        let mut history: VecDeque<WalRecord> = VecDeque::new();
        let mut history_floor = records.first().map(|r| r.seq - 1).unwrap_or(checkpoint);
        for rec in &records {
            history.push_back(*rec);
            while history.len() > cfg.sync_history.max(1) {
                if let Some(old) = history.pop_front() {
                    history_floor = old.seq;
                }
            }
            // The idempotence table survives a crash for every durable
            // record, applied or already-checkpointed.
            let applied_slot = WriteAck {
                seq: rec.seq,
                applied: true,
                duplicate: false,
            };
            recent.put(rec.req_id, applied_slot);
            if rec.seq <= checkpoint {
                continue;
            }
            report.applied += 1;
            last = last.max(rec.seq);
            match rec.op {
                WalOp::Insert(seg) => db.insert(seg)?,
                WalOp::Delete(seg) => {
                    // A miss is legal: the delete may race a fold that
                    // already consumed an earlier record for the same id.
                    let _ = db.remove(&seg)?;
                }
            }
        }
        if report.applied > 0 {
            db.set_wal_seq(last);
            db.save()?;
            wal.reset()?;
        }
        report.last_seq = wal.last_seq();
        let direction = db.direction();
        Ok((
            WriteEngine {
                db: RwLock::new(db),
                delta: Mutex::new(Arc::new(DeltaSnap::default())),
                writer: Mutex::new(WriterInner {
                    wal,
                    pending: Vec::new(),
                    recent,
                    history,
                    history_floor,
                }),
                direction,
                cfg,
                counters: WriterCounters::default(),
            },
            report,
        ))
    }

    /// Run `f` against the current database snapshot (read lock held for
    /// the duration — the epoch cannot swap underneath `f`).
    pub fn with_db<R>(&self, f: impl FnOnce(&SegmentDatabase) -> R) -> R {
        f(&self.db.read().expect("db lock poisoned"))
    }

    /// Run `f` with the database write lock (pauses readers; used by
    /// maintenance paths that mutate outside the write protocol).
    pub fn with_db_mut<R>(&self, f: impl FnOnce(&mut SegmentDatabase) -> R) -> R {
        f(&mut self.db.write().expect("db lock poisoned"))
    }

    /// The engine's tuning.
    pub fn config(&self) -> WriterConfig {
        self.cfg
    }

    /// Writer counters (atomics; loadable without any lock).
    pub fn counters(&self) -> &WriterCounters {
        &self.counters
    }

    /// WAL lifetime stats plus the current delta size.
    pub fn wal_stats(&self) -> (WalStats, usize) {
        let inner = self.writer.lock().expect("writer lock poisoned");
        let delta = self.delta.lock().expect("delta lock poisoned");
        (inner.wal.stats(), delta.len())
    }

    /// Snapshot of the delta overlay (tests and diagnostics).
    pub fn delta(&self) -> Arc<DeltaSnap> {
        self.delta.lock().expect("delta lock poisoned").clone()
    }

    // ---- write protocol -------------------------------------------------

    /// Insert `seg` (user coordinates). `req_id` deduplicates retries:
    /// a second call with the same id returns the stored ack.
    pub fn insert(&self, req_id: u64, seg: Segment) -> Result<WriteAck, DbError> {
        let mut inner = self.writer.lock().expect("writer lock poisoned");
        if let Some(prev) = inner.recent.get(req_id) {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            return Ok(WriteAck {
                duplicate: true,
                ..prev
            });
        }
        // Validate the transform up front: nothing is logged for a
        // segment the index could never hold.
        let canonical = self.direction.apply_segment(&seg)?;
        let seq = inner.wal.append(req_id, WalOp::Insert(seg))?;
        inner.pending.push(PendingOp {
            seq,
            insert: true,
            seg,
        });
        inner.push_history(
            self.cfg.sync_history,
            WalRecord {
                seq,
                req_id,
                op: WalOp::Insert(seg),
            },
        );
        {
            let mut delta = self.delta.lock().expect("delta lock poisoned");
            let mut next = (**delta).clone();
            next.inserts.push(canonical);
            *delta = Arc::new(next);
        }
        let ack = WriteAck {
            seq,
            applied: true,
            duplicate: false,
        };
        inner.recent.put(req_id, ack);
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        self.maybe_fold(inner)?;
        Ok(ack)
    }

    /// Delete `seg` (user coordinates, exact geometry + id match).
    /// Returns `applied = false` when no such segment is stored.
    pub fn delete(&self, req_id: u64, seg: Segment) -> Result<WriteAck, DbError> {
        let mut inner = self.writer.lock().expect("writer lock poisoned");
        if let Some(prev) = inner.recent.get(req_id) {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            return Ok(WriteAck {
                duplicate: true,
                ..prev
            });
        }
        let canonical = self.direction.apply_segment(&seg)?;
        // Resolve the target: a delta insert cancels in place; a base
        // segment is verified by a point query before the tombstone is
        // logged (exact counts depend on every logged delete hitting).
        enum Target {
            DeltaInsert,
            Base,
            Missing,
        }
        let target = {
            let delta = self.delta.lock().expect("delta lock poisoned");
            if delta.inserts.contains(&canonical) {
                Target::DeltaInsert
            } else if delta.deletes.contains(&canonical) {
                Target::Missing // already deleted this epoch
            } else {
                let db = self.db.read().expect("db lock poisoned");
                let (hits, _) = db.query_line(seg.a)?;
                if hits.contains(&seg) {
                    Target::Base
                } else {
                    Target::Missing
                }
            }
        };
        if matches!(target, Target::Missing) {
            let ack = WriteAck {
                seq: 0,
                applied: false,
                duplicate: false,
            };
            inner.recent.put(req_id, ack);
            self.counters.delete_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(ack);
        }
        let seq = inner.wal.append(req_id, WalOp::Delete(seg))?;
        inner.pending.push(PendingOp {
            seq,
            insert: false,
            seg,
        });
        inner.push_history(
            self.cfg.sync_history,
            WalRecord {
                seq,
                req_id,
                op: WalOp::Delete(seg),
            },
        );
        {
            let mut delta = self.delta.lock().expect("delta lock poisoned");
            let mut next = (**delta).clone();
            match target {
                Target::DeltaInsert => next.inserts.retain(|s| *s != canonical),
                Target::Base => next.deletes.push(canonical),
                Target::Missing => unreachable!(),
            }
            *delta = Arc::new(next);
        }
        let ack = WriteAck {
            seq,
            applied: true,
            duplicate: false,
        };
        inner.recent.put(req_id, ack);
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        self.maybe_fold(inner)?;
        Ok(ack)
    }

    /// Durability barrier: group-commit the WAL tail now.
    pub fn flush(&self) -> Result<(), DbError> {
        let mut inner = self.writer.lock().expect("writer lock poisoned");
        inner.wal.flush()?;
        Ok(())
    }

    // ---- replica catch-up ------------------------------------------------

    /// Highest WAL sequence number this engine has assigned (the cursor
    /// a lagging replica hands to a peer's `wal_since`).
    pub fn last_seq(&self) -> u64 {
        let inner = self.writer.lock().expect("writer lock poisoned");
        inner.wal.last_seq()
    }

    /// Applied records with `seq > from`, replayable by a lagging peer.
    ///
    /// The WAL itself truncates at every fold, so this serves from the
    /// bounded in-memory ring (`WriterConfig::sync_history`); once the
    /// ring has evicted past `from` the gap is unservable and the caller
    /// gets [`HistoryError::Truncated`].
    pub fn records_since(&self, from: u64) -> Result<Vec<WalRecord>, HistoryError> {
        let inner = self.writer.lock().expect("writer lock poisoned");
        if from < inner.history_floor {
            return Err(HistoryError::Truncated {
                floor: inner.history_floor,
            });
        }
        Ok(inner
            .history
            .iter()
            .filter(|r| r.seq > from)
            .copied()
            .collect())
    }

    /// Apply one record replayed from a peer, idempotently.
    ///
    /// Safe to call with records this replica already holds (replaying
    /// from `from = 0` converges): the request id hits the dedup window
    /// when it is still remembered, and an insert whose exact segment is
    /// already visible is acknowledged as a duplicate without being
    /// re-applied even after the id has aged out. Deletes of absent
    /// segments are no-ops by construction. Applied records re-enter
    /// this replica's own WAL and history, so a caught-up replica can
    /// itself serve `sync_from`.
    pub fn sync_apply(&self, rec: &WalRecord) -> Result<WriteAck, DbError> {
        match rec.op {
            WalOp::Insert(seg) => {
                if self.contains_segment(&seg)? {
                    return Ok(WriteAck {
                        seq: 0,
                        applied: false,
                        duplicate: true,
                    });
                }
                self.insert(rec.req_id, seg)
            }
            WalOp::Delete(seg) => self.delete(rec.req_id, seg),
        }
    }

    /// Is this exact segment (id + geometry) currently visible?
    fn contains_segment(&self, seg: &Segment) -> Result<bool, DbError> {
        let (ans, _) = self.query_line_mode(seg.a, QueryMode::Collect)?;
        match ans {
            QueryAnswer::Segments(hits) => Ok(hits.contains(seg)),
            _ => Ok(false),
        }
    }

    /// Fold the delta into the index now, regardless of size.
    pub fn fold(&self) -> Result<(), DbError> {
        let inner = self.writer.lock().expect("writer lock poisoned");
        self.fold_locked(inner)
    }

    fn maybe_fold(&self, inner: std::sync::MutexGuard<'_, WriterInner>) -> Result<(), DbError> {
        if inner.pending.len() >= self.cfg.delta_limit {
            self.fold_locked(inner)?;
        }
        Ok(())
    }

    fn fold_locked(
        &self,
        mut inner: std::sync::MutexGuard<'_, WriterInner>,
    ) -> Result<(), DbError> {
        if inner.pending.is_empty() {
            return Ok(());
        }
        // WAL first: the fold's source of truth must be durable before
        // the index starts moving.
        inner.wal.flush()?;
        let ops = std::mem::take(&mut inner.pending);
        let last = ops.last().map(|o| o.seq).unwrap_or(0);
        {
            // Readers drain, then the index mutates and the delta clears
            // atomically from their point of view (both under the write
            // lock — a reader either sees old base + old delta or new
            // base + empty delta, never a torn pair).
            let mut db = self.db.write().expect("db lock poisoned");
            for op in &ops {
                if op.insert {
                    db.insert(op.seg)?;
                } else {
                    let _ = db.remove(&op.seg)?;
                }
            }
            db.set_wal_seq(last);
            db.save()?;
            let mut delta = self.delta.lock().expect("delta lock poisoned");
            *delta = Arc::new(DeltaSnap::default());
        }
        inner.wal.reset()?;
        self.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.counters.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Fold lazy-delete tombstones back into the index (the background
    /// compaction pass). Folds the delta first so the rebuild sees
    /// every accepted op. Returns whether a rebuild ran.
    pub fn compact(&self) -> Result<bool, DbError> {
        let inner = self.writer.lock().expect("writer lock poisoned");
        self.fold_locked(inner)?;
        // Re-acquire: fold_locked consumed the guard.
        let _inner = self.writer.lock().expect("writer lock poisoned");
        let mut db = self.db.write().expect("db lock poisoned");
        let ran = db.compact()?;
        if ran {
            db.save()?;
            self.counters.compactions.fetch_add(1, Ordering::Relaxed);
            self.counters.epoch.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ran)
    }

    // ---- snapshot reads -------------------------------------------------

    /// Line query through `anchor` (user coordinates), merged with the
    /// delta overlay.
    pub fn query_line_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let a = anchor.into();
        self.query_overlay(a, None, None, mode)
    }

    /// Upward ray query from `anchor`, merged with the delta overlay.
    pub fn query_ray_up_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let a = anchor.into();
        self.query_overlay(a, Some(a.y), None, mode)
    }

    /// Downward ray query from `anchor`, merged with the delta overlay.
    pub fn query_ray_down_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let a = anchor.into();
        self.query_overlay(a, None, Some(a.y), mode)
    }

    /// Segment query `p1—p2`, merged with the delta overlay.
    pub fn query_segment_mode(
        &self,
        p1: impl Into<Point>,
        p2: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let (p1, p2) = (p1.into(), p2.into());
        let db = self.db.read().expect("db lock poisoned");
        let delta = self.delta.lock().expect("delta lock poisoned").clone();
        if delta.is_empty() {
            return db.query_segment_mode(p1, p2, mode);
        }
        let q = db.segment_query(p1, p2)?;
        Self::merge(&db, &delta, &q, mode, |m| db.query_segment_mode(p1, p2, m))
    }

    /// Shared overlay walk for the anchor-shaped queries.
    fn query_overlay(
        &self,
        a: Point,
        lo: Option<i64>,
        hi: Option<i64>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let db = self.db.read().expect("db lock poisoned");
        let delta = self.delta.lock().expect("delta lock poisoned").clone();
        let base = |m: QueryMode| match (lo, hi) {
            (None, None) => db.query_line_mode(a, m),
            (Some(_), None) => db.query_ray_up_mode(a, m),
            (None, Some(_)) => db.query_ray_down_mode(a, m),
            (Some(_), Some(_)) => unreachable!("no anchor shape sets both bounds"),
        };
        if delta.is_empty() {
            return base(mode);
        }
        let q = self
            .direction
            .make_query(a, lo, hi)
            .map_err(DbError::from)?;
        Self::merge(&db, &delta, &q, mode, base)
    }

    /// Batched canonical-frame reads merged with the delta overlay: one
    /// read lock and one delta snapshot cover the whole batch, and the
    /// base answers come from a single shared index walk
    /// ([`SegmentDatabase::query_batch_canonical_mode`]). The per-query
    /// merge arithmetic is identical to the sequential path.
    pub fn query_batch_canonical_mode(
        &self,
        items: &[(VerticalQuery, QueryMode)],
    ) -> Vec<Result<(QueryAnswer, QueryTrace), DbError>> {
        let db = self.db.read().expect("db lock poisoned");
        let delta = self.delta.lock().expect("delta lock poisoned").clone();
        if delta.is_empty() {
            return db.query_batch_canonical_mode(items);
        }
        // Each slot runs under the base mode that makes its post-merge
        // arithmetic exact (Exists may widen to Count, Limit over-fetches
        // by the delete count) — same widening the sequential path does.
        let base_items: Vec<(VerticalQuery, QueryMode)> = items
            .iter()
            .map(|&(q, mode)| {
                let widened = Self::base_mode(&delta, &q, mode);
                (q, widened)
            })
            .collect();
        let base = db.query_batch_canonical_mode(&base_items);
        items
            .iter()
            .zip(base)
            .map(|(&(q, mode), res)| {
                let (ans, trace) = res?;
                Self::merge_answer(&db, &delta, &q, mode, ans, trace)
            })
            .collect()
    }

    /// The base-index mode that lets [`WriteEngine::merge_answer`]
    /// reconstruct an exact `mode` answer under this delta.
    fn base_mode(delta: &DeltaSnap, q: &VerticalQuery, mode: QueryMode) -> QueryMode {
        match mode {
            QueryMode::Collect => QueryMode::Collect,
            QueryMode::Count => QueryMode::Count,
            QueryMode::Exists => {
                // Deletes in play: the early-exit walk could stop on a
                // deleted segment, so widen to exact count arithmetic.
                if delta.deletes.iter().any(|s| q.hits(s)) {
                    QueryMode::Count
                } else {
                    QueryMode::Exists
                }
            }
            // A limit walk must over-fetch by the number of deletes that
            // might be filtered back out.
            QueryMode::Limit(k) => {
                QueryMode::Limit(((k as usize) + delta.deletes.len()).min(u32::MAX as usize) as u32)
            }
        }
    }

    /// Merge `base` answers with the delta overlay for `q`.
    fn merge(
        db: &SegmentDatabase,
        delta: &DeltaSnap,
        q: &VerticalQuery,
        mode: QueryMode,
        base: impl Fn(QueryMode) -> Result<(QueryAnswer, QueryTrace), DbError>,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        if mode == QueryMode::Exists && delta.inserts.iter().any(|s| q.hits(s)) {
            // A delta insert satisfies the query without touching the
            // base index at all.
            return Ok((QueryAnswer::Exists(true), QueryTrace::default()));
        }
        let (ans, trace) = base(Self::base_mode(delta, q, mode))?;
        Self::merge_answer(db, delta, q, mode, ans, trace)
    }

    /// Reconstruct the exact `mode` answer from a base answer computed
    /// under [`WriteEngine::base_mode`], applying the delta arithmetic
    /// (`base − |deletes ∩ q| + |inserts ∩ q|`).
    fn merge_answer(
        db: &SegmentDatabase,
        delta: &DeltaSnap,
        q: &VerticalQuery,
        mode: QueryMode,
        ans: QueryAnswer,
        trace: QueryTrace,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let ins_hits: Vec<&Segment> = delta.inserts.iter().filter(|s| q.hits(s)).collect();
        let del_hits: u64 = delta.deletes.iter().filter(|s| q.hits(s)).count() as u64;
        match mode {
            QueryMode::Count => {
                let n = ans.count().saturating_sub(del_hits) + ins_hits.len() as u64;
                Ok((QueryAnswer::Count(n), trace))
            }
            QueryMode::Exists => {
                if !ins_hits.is_empty() {
                    return Ok((QueryAnswer::Exists(true), trace));
                }
                if del_hits == 0 {
                    // Base ran Exists; any base hit is live.
                    return Ok((QueryAnswer::Exists(ans.count() > 0), trace));
                }
                // Base widened to Count: exact arithmetic.
                Ok((
                    QueryAnswer::Exists(ans.count().saturating_sub(del_hits) > 0),
                    trace,
                ))
            }
            QueryMode::Collect | QueryMode::Limit(_) => {
                let k = match mode {
                    QueryMode::Limit(k) => Some(k as usize),
                    _ => None,
                };
                let deleted_ids: std::collections::HashSet<u64> =
                    delta.deletes.iter().map(|s| s.id).collect();
                let mut hits = match ans {
                    QueryAnswer::Segments(v) => v,
                    _ => unreachable!("collect-shaped base answer"),
                };
                hits.retain(|s| !deleted_ids.contains(&s.id));
                for s in ins_hits {
                    hits.push(db.direction().unapply_segment(s)?);
                }
                if let Some(k) = k {
                    hits.truncate(k);
                } else {
                    hits = crate::report::normalize(hits);
                }
                Ok((QueryAnswer::Segments(hits), trace))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexKind;
    use segdb_pager::Disk;

    fn seg(id: u64, y: i64) -> Segment {
        Segment::new(id, (0, y), (1000, y)).unwrap()
    }

    fn engine(n: u64, cfg: WriterConfig) -> WriteEngine {
        let set: Vec<Segment> = (0..n).map(|i| seg(i, 10 * i as i64)).collect();
        let db = SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(0)
            .index(IndexKind::TwoLevelInterval)
            .build(set)
            .unwrap();
        let (eng, rep) = WriteEngine::recover(db, Box::new(Disk::new(512)), cfg).unwrap();
        assert_eq!(rep.replayed, 0);
        eng
    }

    fn count(eng: &WriteEngine, x: i64) -> u64 {
        let (ans, _) = eng.query_line_mode((x, 0), QueryMode::Count).unwrap();
        ans.count()
    }

    #[test]
    fn overlay_merges_all_modes() {
        let eng = engine(50, WriterConfig::default());
        assert_eq!(count(&eng, 500), 50);
        // Insert two, delete one base segment.
        eng.insert(1, seg(100, 5)).unwrap();
        eng.insert(2, seg(101, 7)).unwrap();
        let ack = eng.delete(3, seg(10, 100)).unwrap();
        assert!(ack.applied);
        assert_eq!(count(&eng, 500), 51);
        let (ans, _) = eng.query_line_mode((500, 0), QueryMode::Collect).unwrap();
        let hits = ans.segments().unwrap();
        assert_eq!(hits.len(), 51);
        assert!(hits.iter().any(|s| s.id == 100));
        assert!(!hits.iter().any(|s| s.id == 10));
        let (ans, _) = eng.query_line_mode((500, 0), QueryMode::Exists).unwrap();
        assert_eq!(ans, QueryAnswer::Exists(true));
        let (ans, _) = eng.query_line_mode((500, 0), QueryMode::Limit(5)).unwrap();
        assert_eq!(ans.segments().unwrap().len(), 5);
        // Deleting a delta insert cancels it without touching base.
        let ack = eng.delete(4, seg(101, 7)).unwrap();
        assert!(ack.applied);
        assert_eq!(count(&eng, 500), 50);
        // Deleting something absent is acknowledged but not applied.
        let ack = eng.delete(5, seg(999, 1)).unwrap();
        assert!(!ack.applied);
    }

    #[test]
    fn duplicate_request_ids_are_idempotent() {
        let eng = engine(10, WriterConfig::default());
        let a1 = eng.insert(42, seg(100, 5)).unwrap();
        let a2 = eng.insert(42, seg(100, 5)).unwrap();
        assert!(!a1.duplicate && a2.duplicate);
        assert_eq!(a1.seq, a2.seq);
        assert_eq!(count(&eng, 500), 11);
        let d1 = eng.delete(43, seg(100, 5)).unwrap();
        let d2 = eng.delete(43, seg(100, 5)).unwrap();
        assert!(d1.applied && d2.duplicate && d2.applied);
        assert_eq!(count(&eng, 500), 10);
        assert_eq!(eng.counters().duplicates.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fold_applies_and_checkpoints() {
        let cfg = WriterConfig {
            delta_limit: 4,
            ..WriterConfig::default()
        };
        let eng = engine(20, cfg);
        for i in 0..4 {
            eng.insert(100 + i, seg(200 + i, 3 + i as i64)).unwrap();
        }
        // delta_limit reached: the 4th insert folded everything.
        assert!(eng.delta().is_empty());
        assert_eq!(eng.counters().rebuilds.load(Ordering::Relaxed), 1);
        assert_eq!(count(&eng, 500), 24);
        eng.with_db(|db| {
            assert_eq!(db.len(), 24);
            assert_eq!(db.wal_seq(), 4);
            db.validate().unwrap();
        });
    }

    #[test]
    fn catch_up_history_survives_folds_and_replays_idempotently() {
        let cfg = WriterConfig {
            delta_limit: 4,
            group_window: 1,
            ..WriterConfig::default()
        };
        let eng = engine(20, cfg);
        for i in 0..5 {
            eng.insert(100 + i, seg(200 + i, 3 + i as i64)).unwrap();
        }
        eng.delete(106, seg(3, 30)).unwrap();
        // A fold ran (delta_limit 4) and truncated the WAL, but the
        // ring still serves the whole log.
        assert!(eng.counters().rebuilds.load(Ordering::Relaxed) >= 1);
        let recs = eng.records_since(0).unwrap();
        assert_eq!(recs.len(), 6);
        assert_eq!(recs.first().unwrap().seq, 1);
        assert_eq!(eng.last_seq(), 6);
        assert_eq!(eng.records_since(4).unwrap().len(), 2);

        // A peer starting from the same base converges by replaying —
        // and a second replay of the same records applies nothing new.
        let peer = engine(20, cfg);
        for rec in &recs {
            let ack = peer.sync_apply(rec).unwrap();
            assert!(ack.applied && !ack.duplicate);
        }
        assert_eq!(count(&peer, 500), 24); // 20 + 5 − 1
        for rec in &recs {
            let ack = peer.sync_apply(rec).unwrap();
            assert!(ack.duplicate, "replayed record must not re-apply");
        }
        assert_eq!(count(&peer, 500), 24);
    }

    #[test]
    fn history_ring_is_bounded_and_reports_truncation() {
        let cfg = WriterConfig {
            sync_history: 4,
            ..WriterConfig::default()
        };
        let eng = engine(5, cfg);
        for i in 0..10u64 {
            eng.insert(i + 1, seg(300 + i, i as i64)).unwrap();
        }
        assert_eq!(eng.records_since(6).unwrap().len(), 4);
        assert_eq!(eng.records_since(9).unwrap().len(), 1);
        assert!(matches!(
            eng.records_since(5),
            Err(HistoryError::Truncated { floor: 6 })
        ));
    }

    #[test]
    fn recovery_replays_unfolded_tail() {
        let set: Vec<Segment> = (0..10).map(|i| seg(i, 10 * i as i64)).collect();
        let db = SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(0)
            .index(IndexKind::TwoLevelInterval)
            .build(set)
            .unwrap();
        let cfg = WriterConfig {
            group_window: 1,
            ..WriterConfig::default()
        };
        let (eng, _) = WriteEngine::recover(db, Box::new(Disk::new(512)), cfg).unwrap();
        eng.insert(1, seg(100, 5)).unwrap();
        eng.delete(2, seg(3, 30)).unwrap();
        // Simulate a crash that loses the in-memory delta but keeps the
        // synced WAL: rebuild the db from scratch and replay the device.
        let wal_dev = {
            let mut inner = eng.writer.lock().unwrap();
            // Steal the WAL device (test-only surgery).
            let wal = std::mem::replace(
                &mut inner.wal,
                Wal::create(Box::new(Disk::new(512)), 1).unwrap(),
            );
            wal.into_device()
        };
        let set: Vec<Segment> = (0..10).map(|i| seg(i, 10 * i as i64)).collect();
        let db2 = SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(0)
            .index(IndexKind::TwoLevelInterval)
            .build(set)
            .unwrap();
        let (eng2, rep) = WriteEngine::recover(db2, wal_dev, cfg).unwrap();
        assert_eq!(rep.replayed, 2);
        assert_eq!(rep.applied, 2);
        assert_eq!(count(&eng2, 500), 10); // 10 − 1 + 1
        eng2.with_db(|db| {
            assert_eq!(db.wal_seq(), 2);
            db.validate().unwrap();
        });
        // A retry of a pre-crash request id is still recognized.
        let ack = eng2.insert(1, seg(100, 5)).unwrap();
        assert!(ack.duplicate);
    }
}
