//! Database persistence: the superblock.
//!
//! A [`crate::SegmentDatabase`] saved to a persistent device writes its
//! identity — format version, fixed direction, index kind, index config
//! and root state — into the device's metadata area (the header page of
//! a [`segdb_pager::FileDevice`]). [`crate::SegmentDatabase::open`]
//! reads it back and re-attaches every structure without touching the
//! data pages.

use crate::anyquery::AnyQueryState;
use crate::binary2l::Binary2LConfig;
use crate::interval2l::Interval2LConfig;
use crate::IndexKind;
use segdb_geom::transform::Direction;
use segdb_pager::{ByteReader, ByteWriter, PageId, PagerError, Result};
use segdb_pst::PstConfig;

/// Current on-disk format magic. `003` adds the write path: the
/// superblock carries the WAL checkpoint (`wal_seq`) and the interval
/// index's tombstone chain stores full segments (geometry included)
/// instead of bare ids, which is what lets Count-mode queries subtract
/// overlapping tombstones without materializing. `002` marks databases
/// whose B⁺-trees may carry v2 internal nodes (per-child subtree counts
/// backing the count-mode fast paths). `001` databases open unchanged —
/// v1 internal nodes simply decode with "unknown" counts and count
/// queries fall back to recursing — so decode accepts all three magics;
/// encode always stamps the current one.
const MAGIC: &[u8; 8] = b"SEGDB003";
const MAGIC_V2: &[u8; 8] = b"SEGDB002";
const MAGIC_V1: &[u8; 8] = b"SEGDB001";
/// Superblock buffer size (well under any page's metadata area).
/// The trailing 9 bytes (`tombs_are_segments` flag + `wal_seq`) only
/// exist under the v3 magic.
pub const SUPERBLOCK_SIZE: usize = 88 + 1 + AnyQueryState::ENCODED_SIZE + 9;

/// Everything needed to re-open a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Fixed query direction.
    pub direction: (i64, i64),
    /// Which index backs the database.
    pub kind: IndexKind,
    /// Root page of the index (interpretation depends on `kind`).
    pub root: PageId,
    /// Stored segment count.
    pub len: u64,
    /// Extra root (StabThenFilter: segment chain; TwoLevelInterval:
    /// tombstone chain head).
    pub aux: PageId,
    /// Extra counter (TwoLevelInterval: tombstone count).
    pub aux2: u64,
    /// PST fanout (0 = packed default).
    pub pst_fanout: u32,
    /// First-level fanout for Solution 2 (0 = page default).
    pub fanout: u32,
    /// Bridge density `d`.
    pub bridge_d: u32,
    /// Bridges enabled.
    pub bridges: bool,
    /// Weight-rebuild threshold.
    pub rebuild_min: u64,
    /// Optional arbitrary-direction query extension (§5 future work).
    pub any: Option<AnyQueryState>,
    /// Highest WAL sequence number folded into the index (the write
    /// path's checkpoint; replay skips records at or below it). Always 0
    /// for databases saved before v3.
    pub wal_seq: u64,
    /// Whether the interval index's tombstone chain stores full
    /// segments (v3+) or bare ids (v1/v2). Derived from the magic on
    /// decode; a save always upgrades to the segment format.
    pub tombs_are_segments: bool,
}

fn kind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::TwoLevelBinary => 1,
        IndexKind::TwoLevelInterval => 2,
        IndexKind::FullScan => 3,
        IndexKind::StabThenFilter => 4,
    }
}

fn kind_from(tag: u8) -> Result<IndexKind> {
    Ok(match tag {
        1 => IndexKind::TwoLevelBinary,
        2 => IndexKind::TwoLevelInterval,
        3 => IndexKind::FullScan,
        4 => IndexKind::StabThenFilter,
        _ => return Err(PagerError::Corrupt("unknown index kind in superblock")),
    })
}

impl Superblock {
    /// Serialize into a metadata blob.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; SUPERBLOCK_SIZE];
        let mut w = ByteWriter::new(&mut buf);
        w.skip(8)?; // magic, written below
        w.i64(self.direction.0)?;
        w.i64(self.direction.1)?;
        w.u8(kind_tag(self.kind))?;
        w.u32(self.root)?;
        w.u64(self.len)?;
        w.u32(self.aux)?;
        w.u64(self.aux2)?;
        w.u32(self.pst_fanout)?;
        w.u32(self.fanout)?;
        w.u32(self.bridge_d)?;
        w.u8(u8::from(self.bridges))?;
        w.u64(self.rebuild_min)?;
        match &self.any {
            None => w.u8(0)?,
            Some(a) => {
                w.u8(1)?;
                a.encode(&mut w)?;
            }
        }
        // The v3 tail fields live at fixed offsets (the `any` encoding
        // is variable-length, so positional writing would move them).
        let n = buf.len();
        buf[n - 9] = u8::from(self.tombs_are_segments);
        buf[n - 8..].copy_from_slice(&self.wal_seq.to_le_bytes());
        buf[..8].copy_from_slice(MAGIC);
        Ok(buf)
    }

    /// Deserialize from a metadata blob (v1, v2 or v3 magic).
    pub fn decode(buf: &[u8]) -> Result<Superblock> {
        if buf.len() < 8 {
            return Err(PagerError::Corrupt("bad database superblock"));
        }
        let magic: &[u8] = &buf[..8];
        let v3 = magic == MAGIC;
        if !v3 && magic != MAGIC_V2 && magic != MAGIC_V1 {
            return Err(PagerError::Corrupt("bad database superblock"));
        }
        // v1/v2 blobs lack the trailing flag + wal_seq fields.
        let need = if v3 {
            SUPERBLOCK_SIZE
        } else {
            SUPERBLOCK_SIZE - 9
        };
        if buf.len() < need {
            return Err(PagerError::Corrupt("bad database superblock"));
        }
        let mut r = ByteReader::new(buf);
        r.skip(8)?;
        Ok(Superblock {
            direction: (r.i64()?, r.i64()?),
            kind: kind_from(r.u8()?)?,
            root: r.u32()?,
            len: r.u64()?,
            aux: r.u32()?,
            aux2: r.u64()?,
            pst_fanout: r.u32()?,
            fanout: r.u32()?,
            bridge_d: r.u32()?,
            bridges: r.u8()? != 0,
            rebuild_min: r.u64()?,
            any: if r.u8()? == 1 {
                Some(AnyQueryState::decode(&mut r)?)
            } else {
                None
            },
            wal_seq: if v3 {
                u64::from_le_bytes(
                    buf[SUPERBLOCK_SIZE - 8..SUPERBLOCK_SIZE]
                        .try_into()
                        .unwrap(),
                )
            } else {
                0
            },
            tombs_are_segments: v3 && buf[SUPERBLOCK_SIZE - 9] != 0,
        })
    }

    /// The direction object (validated).
    pub fn direction_obj(&self) -> Result<Direction> {
        Direction::new(self.direction.0, self.direction.1)
            .map_err(|_| PagerError::Corrupt("bad direction in superblock"))
    }

    /// The PST config this superblock records.
    pub fn pst_config(&self) -> PstConfig {
        if self.pst_fanout == 0 {
            PstConfig::packed()
        } else {
            PstConfig {
                fanout: Some(self.pst_fanout as usize),
            }
        }
    }

    /// The Solution-1 config this superblock records.
    pub fn binary_config(&self) -> Binary2LConfig {
        Binary2LConfig {
            pst: self.pst_config(),
            rebuild_min: self.rebuild_min,
        }
    }

    /// The Solution-2 config this superblock records.
    pub fn interval_config(&self) -> Interval2LConfig {
        Interval2LConfig {
            pst: self.pst_config(),
            fanout: if self.fanout == 0 {
                None
            } else {
                Some(self.fanout as usize)
            },
            bridge_d: self.bridge_d as usize,
            bridges: self.bridges,
            rebuild_min: self.rebuild_min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sb = Superblock {
            direction: (-3, 7),
            kind: IndexKind::TwoLevelInterval,
            root: 42,
            len: 1000,
            aux: 7,
            aux2: 9,
            pst_fanout: 0,
            fanout: 16,
            bridge_d: 4,
            bridges: true,
            rebuild_min: 32,
            any: None,
            wal_seq: 777,
            tombs_are_segments: true,
        };
        let buf = sb.encode().unwrap();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
        assert!(sb.direction_obj().is_ok());
        assert_eq!(sb.interval_config().bridge_d, 4);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Superblock::decode(&[0u8; SUPERBLOCK_SIZE]).is_err());
        assert!(Superblock::decode(b"short").is_err());
    }

    #[test]
    fn older_magics_still_open() {
        let sb = Superblock {
            direction: (0, 1),
            kind: IndexKind::FullScan,
            root: 5,
            len: 10,
            aux: 0,
            aux2: 0,
            pst_fanout: 0,
            fanout: 0,
            bridge_d: 2,
            bridges: true,
            rebuild_min: 32,
            any: None,
            wal_seq: 123,
            tombs_are_segments: true,
        };
        let mut buf = sb.encode().unwrap();
        assert_eq!(&buf[..8], MAGIC);
        for magic in [MAGIC_V1, MAGIC_V2] {
            buf[..8].copy_from_slice(magic);
            // Pre-v3 saves were 9 bytes shorter — truncate to prove the
            // old length is still accepted.
            let old = &buf[..SUPERBLOCK_SIZE - 9];
            let got = Superblock::decode(old).unwrap();
            // Pre-v3 superblocks carry no checkpoint and id-format tombs.
            assert_eq!(got.wal_seq, 0);
            assert!(!got.tombs_are_segments);
            assert_eq!(
                Superblock {
                    wal_seq: 123,
                    tombs_are_segments: true,
                    ..got
                },
                sb
            );
        }
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [
            IndexKind::TwoLevelBinary,
            IndexKind::TwoLevelInterval,
            IndexKind::FullScan,
            IndexKind::StabThenFilter,
        ] {
            let sb = Superblock {
                direction: (0, 1),
                kind,
                root: 1,
                len: 2,
                aux: 3,
                aux2: 0,
                pst_fanout: 2,
                fanout: 0,
                bridge_d: 2,
                bridges: false,
                rebuild_min: 8,
                any: None,
                wal_seq: 0,
                tombs_are_segments: true,
            };
            assert_eq!(
                Superblock::decode(&sb.encode().unwrap()).unwrap().kind,
                kind
            );
        }
    }
}
