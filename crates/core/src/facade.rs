//! The user-facing segment database.
//!
//! [`SegmentDatabase`] owns the pager, the chosen index structure and the
//! fixed query [`Direction`]. Segments are sheared into the canonical
//! frame at ingestion; query answers are sheared back, so callers only
//! ever see their own coordinates. The inverse shear is exact (integer
//! division that provably divides), so round-tripping is lossless.

use crate::anyquery::AnyQueryIndex;
use crate::baseline::{FullScan, StabThenFilter};
use crate::binary2l::{Binary2LConfig, TwoLevelBinary};
use crate::interval2l::{Interval2LConfig, TwoLevelInterval};
use crate::persist::Superblock;
use crate::report::{normalize, QueryAnswer, QueryMode, QueryTrace};
use segdb_geom::nct::verify_nct;
use segdb_geom::transform::Direction;
use segdb_geom::{
    CountSink, ExistsSink, GeomError, LimitSink, MultiSink, Point, ReportSink, Segment,
    VerticalQuery,
};
use segdb_itree::tree::ItState;
use segdb_obs::cost::{CostKind, CostModel, Fitter};
use segdb_obs::trace::TraceSummary;
use segdb_obs::{Json, Registry};
use segdb_pager::{Device, FileDevice, Pager, PagerError};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Which index backs the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Solution 1 (§3, Theorem 1): `O(n)` space, supports insert+delete.
    TwoLevelBinary,
    /// Solution 2 (§4, Theorem 2): `O(n log B)` space, fastest queries,
    /// semi-dynamic (insert only).
    TwoLevelInterval,
    /// Exhaustive scan baseline.
    FullScan,
    /// Stabbing-index + filter baseline.
    StabThenFilter,
}

impl IndexKind {
    /// The paper bound that applies to this structure's queries.
    pub fn cost_kind(self) -> CostKind {
        match self {
            IndexKind::TwoLevelBinary => CostKind::TwoLevelBinary,
            IndexKind::TwoLevelInterval => CostKind::TwoLevelInterval,
            IndexKind::FullScan => CostKind::FullScan,
            IndexKind::StabThenFilter => CostKind::StabThenFilter,
        }
    }
}

/// Database-level errors.
#[derive(Debug)]
pub enum DbError {
    /// Invalid geometry (crossings, coordinate range, bad direction…).
    Geom(GeomError),
    /// Storage-layer failure.
    Pager(PagerError),
    /// Operation the chosen index does not support.
    Unsupported(&'static str),
    /// Query segment endpoints do not lie on a common line of the fixed
    /// direction.
    NotAligned,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Geom(e) => write!(f, "geometry: {e}"),
            DbError::Pager(e) => write!(f, "storage: {e}"),
            DbError::Unsupported(w) => write!(f, "unsupported operation: {w}"),
            DbError::NotAligned => {
                write!(f, "query endpoints not aligned with the fixed direction")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// True for failures a retry may cure: storage-level I/O errors
    /// (including injected device faults), which pass and the query
    /// succeeds once the fault clears. Geometry errors, unsupported
    /// operations and misaligned queries are deterministic rejections —
    /// retrying them re-earns the same answer.
    pub fn is_transient(&self) -> bool {
        matches!(self, DbError::Pager(PagerError::Io(_)))
    }
}

impl From<GeomError> for DbError {
    fn from(e: GeomError) -> Self {
        DbError::Geom(e)
    }
}

impl From<PagerError> for DbError {
    fn from(e: PagerError) -> Self {
        DbError::Pager(e)
    }
}

#[derive(Debug)]
enum Index {
    Binary(TwoLevelBinary),
    Interval(TwoLevelInterval),
    Scan(FullScan),
    Stab(StabThenFilter),
}

impl Index {
    fn kind(&self) -> IndexKind {
        match self {
            Index::Binary(_) => IndexKind::TwoLevelBinary,
            Index::Interval(_) => IndexKind::TwoLevelInterval,
            Index::Scan(_) => IndexKind::FullScan,
            Index::Stab(_) => IndexKind::StabThenFilter,
        }
    }
}

/// Per-database observability state: a metric registry plus the cost
/// fitter judging each query against the paper's bound. Both are
/// thread-safe so observed queries can run concurrently (the registry
/// locks internally; the fitter sits behind its own mutex).
#[derive(Debug)]
struct DbObserver {
    registry: Registry,
    fitter: Mutex<Fitter>,
}

impl DbObserver {
    fn new(kind: IndexKind, len: u64, block_segments: u64) -> DbObserver {
        DbObserver {
            registry: Registry::new(),
            fitter: Mutex::new(Fitter::new(CostModel::new(
                kind.cost_kind(),
                len,
                block_segments,
            ))),
        }
    }

    fn fitter(&self) -> std::sync::MutexGuard<'_, Fitter> {
        self.fitter.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Builder for [`SegmentDatabase`].
pub struct SegmentDatabaseBuilder {
    page_size: usize,
    cache_pages: usize,
    cache_shards: usize,
    direction: Direction,
    kind: IndexKind,
    validate_nct: bool,
    persist: Option<PathBuf>,
    device: Option<Box<dyn Device>>,
    arbitrary: bool,
    observe: bool,
}

impl fmt::Debug for SegmentDatabaseBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentDatabaseBuilder")
            .field("page_size", &self.page_size)
            .field("cache_pages", &self.cache_pages)
            .field("cache_shards", &self.cache_shards)
            .field("kind", &self.kind)
            .field("persist", &self.persist)
            .field("device", &self.device.is_some())
            .field("arbitrary", &self.arbitrary)
            .field("observe", &self.observe)
            .finish()
    }
}

impl Default for SegmentDatabaseBuilder {
    fn default() -> Self {
        SegmentDatabaseBuilder {
            page_size: 4096,
            cache_pages: 0,
            cache_shards: 1,
            direction: Direction::VERTICAL,
            kind: IndexKind::TwoLevelInterval,
            validate_nct: true,
            persist: None,
            device: None,
            arbitrary: false,
            observe: false,
        }
    }
}

impl SegmentDatabaseBuilder {
    /// Page (block) size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Buffer-pool capacity in pages (0 = pure I/O model).
    pub fn cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Split the buffer pool over `shards` independently locked LRU
    /// shards (default 1 = exact global LRU, the deterministic
    /// experiment configuration). Concurrent query serving uses more so
    /// reader threads contend per shard instead of on one pool lock.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Fixed query direction (default vertical).
    pub fn direction(mut self, dx: i64, dy: i64) -> Result<Self, DbError> {
        self.direction = Direction::new(dx, dy)?;
        Ok(self)
    }

    /// Index structure (default [`IndexKind::TwoLevelInterval`]).
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.kind = kind;
        self
    }

    /// Skip the NCT validation sweep (for very large trusted inputs).
    pub fn trust_input(mut self) -> Self {
        self.validate_nct = false;
        self
    }

    /// Additionally build the §5 future-work extension: an auxiliary
    /// candidate-filter index enabling
    /// [`SegmentDatabase::query_free_segment`] — intersection queries by
    /// segments of **any** direction (at non-optimal, candidate-bounded
    /// cost; see [`crate::anyquery`]).
    pub fn enable_arbitrary_queries(mut self) -> Self {
        self.arbitrary = true;
        self
    }

    /// Attach the observability layer: a per-database metric registry
    /// (I/O per query, hits per query, cache hit ratio, …) and the
    /// cost-model verifier that judges every query against the paper's
    /// fitted bound (see [`SegmentDatabase::metrics_json`]). Queries then
    /// carry [`QueryTrace::cost`] once the fitter has warmed up.
    pub fn observe(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Build on a persistent single-file store at `path` (created or
    /// truncated) instead of the in-memory disk. The database is saved
    /// and synced after the build; call [`SegmentDatabase::save`] after
    /// later mutations and [`SegmentDatabase::open`] to reload.
    pub fn persist_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist = Some(path.into());
        self
    }

    /// Build on an explicit [`Device`] (e.g. a
    /// [`segdb_pager::FaultDevice`] for crash-recovery torture). Takes
    /// precedence over [`SegmentDatabaseBuilder::persist_to`]; the
    /// device's own page size wins over
    /// [`SegmentDatabaseBuilder::page_size`]. Like the persistent path,
    /// the database is saved and synced after the build so the device
    /// holds a reopenable image.
    pub fn on_device(mut self, device: Box<dyn Device>) -> Self {
        self.device = Some(device);
        self
    }

    /// Build the database over `segments` (given in user coordinates).
    pub fn build(self, segments: Vec<Segment>) -> Result<SegmentDatabase, DbError> {
        let explicit_device = self.device.is_some();
        let device: Box<dyn Device> = match self.device {
            Some(d) => d,
            None => match &self.persist {
                None => Box::new(segdb_pager::Disk::new(self.page_size)),
                Some(path) => Box::new(FileDevice::create(path, self.page_size)?),
            },
        };
        let pager = Pager::with_device_sharded(device, self.cache_pages, self.cache_shards);
        let transformed: Vec<Segment> = segments
            .iter()
            .map(|s| self.direction.apply_segment(s))
            .collect::<Result<_, _>>()?;
        if self.validate_nct {
            verify_nct(&transformed)?;
        }
        let index = match self.kind {
            IndexKind::TwoLevelBinary => Index::Binary(TwoLevelBinary::build(
                &pager,
                Binary2LConfig::default(),
                transformed,
            )?),
            IndexKind::TwoLevelInterval => Index::Interval(TwoLevelInterval::build(
                &pager,
                Interval2LConfig::default(),
                transformed,
            )?),
            IndexKind::FullScan => Index::Scan(FullScan::build(&pager, &transformed)?),
            IndexKind::StabThenFilter => Index::Stab(StabThenFilter::build(&pager, &transformed)?),
        };
        let any = if self.arbitrary {
            // Rebuild the transformed set (moved into the index above).
            let transformed: Vec<Segment> = segments
                .iter()
                .map(|s| self.direction.apply_segment(s))
                .collect::<Result<_, _>>()?;
            Some(AnyQueryIndex::build(&pager, &transformed)?)
        } else {
            None
        };
        let mut db = SegmentDatabase {
            pager,
            direction: self.direction,
            index,
            any,
            obs: None,
            wal_seq: 0,
        };
        if self.observe {
            db.set_observability(true);
        }
        if self.persist.is_some() || explicit_device {
            db.save()?;
        } else {
            // An in-memory build leaves up to cache_pages dirty pages
            // resident. Write them back (keeping the pool warm) so the
            // database enters concurrent serving with a clean pool — a
            // dirty page evicted mid-serving would otherwise have to be
            // written back on the read path. The writes are counted as
            // part of the build cost, mirroring the persistent path's
            // save(); per-query I/O is StatScope-diffed, so query
            // experiments are unaffected.
            db.pager.clean_pool()?;
        }
        Ok(db)
    }
}

/// A segment database answering generalized-segment intersection queries
/// of a fixed direction, per the paper. See crate docs.
#[derive(Debug)]
pub struct SegmentDatabase {
    pager: Pager,
    direction: Direction,
    index: Index,
    any: Option<AnyQueryIndex>,
    obs: Option<DbObserver>,
    /// WAL checkpoint persisted with the superblock: every log record
    /// with `seq <= wal_seq` is already folded into the index, so
    /// recovery replays only the tail (see `segdb_core::writer`).
    wal_seq: u64,
}

impl SegmentDatabase {
    /// Start building a database.
    pub fn builder() -> SegmentDatabaseBuilder {
        SegmentDatabaseBuilder::default()
    }

    /// Re-open a database previously built with
    /// [`SegmentDatabaseBuilder::persist_to`] and saved.
    pub fn open(path: impl AsRef<Path>, cache_pages: usize) -> Result<Self, DbError> {
        Self::open_sharded(path, cache_pages, 1)
    }

    /// Like [`SegmentDatabase::open`], but splitting the buffer pool
    /// over `cache_shards` locked LRU shards — the configuration the
    /// serving layer uses so concurrent readers scale. `cache_shards = 1`
    /// is the deterministic single-LRU of the experiments.
    pub fn open_sharded(
        path: impl AsRef<Path>,
        cache_pages: usize,
        cache_shards: usize,
    ) -> Result<Self, DbError> {
        Self::open_device(Box::new(FileDevice::open(path)?), cache_pages, cache_shards)
    }

    /// Re-open a database from an explicit [`Device`] already holding a
    /// saved image — the recovery path of the crash torture harness,
    /// which hands the last-sync-consistent store back after a simulated
    /// power cut (see [`segdb_pager::FaultHandle::recover`]).
    pub fn open_device(
        device: Box<dyn Device>,
        cache_pages: usize,
        cache_shards: usize,
    ) -> Result<Self, DbError> {
        let pager = Pager::with_device_sharded(device, cache_pages, cache_shards);
        let sb = Superblock::decode(&pager.get_meta()?)?;
        let direction = sb.direction_obj()?;
        let index = match sb.kind {
            IndexKind::TwoLevelBinary => {
                Index::Binary(TwoLevelBinary::attach(sb.binary_config(), sb.root, sb.len))
            }
            IndexKind::TwoLevelInterval => Index::Interval(TwoLevelInterval::attach(
                &pager,
                sb.interval_config(),
                sb.root,
                sb.len,
                sb.aux,
                sb.aux2,
                sb.tombs_are_segments,
            )),
            IndexKind::FullScan => Index::Scan(FullScan::attach(sb.root, sb.len)),
            IndexKind::StabThenFilter => Index::Stab(StabThenFilter::attach(
                &pager,
                ItState {
                    root: sb.root,
                    len: sb.len,
                },
                sb.aux,
            )?),
        };
        let any = match sb.any {
            None => None,
            Some(st) => Some(AnyQueryIndex::attach(&pager, st)?),
        };
        Ok(SegmentDatabase {
            pager,
            direction,
            index,
            any,
            obs: None,
            wal_seq: sb.wal_seq,
        })
    }

    /// Persist the database identity into the device's superblock and
    /// durably sync. Required after mutations on a persistent database
    /// (a crash before `save` loses the index roots, not the pages).
    pub fn save(&self) -> Result<(), DbError> {
        let (kind, root, len, aux) = match &self.index {
            Index::Binary(t) => {
                let (root, len) = t.state();
                (IndexKind::TwoLevelBinary, root, len, 0)
            }
            Index::Interval(t) => {
                let (root, len, th, tc) = t.state();
                return self.save_with(
                    IndexKind::TwoLevelInterval,
                    root,
                    len,
                    th,
                    tc,
                    // A legacy-attached id-format chain must not be
                    // stamped with the v3 segment-format magic's claim.
                    t.tombs_are_segments(),
                );
            }
            Index::Scan(t) => {
                let (root, len) = t.state();
                (IndexKind::FullScan, root, len, 0)
            }
            Index::Stab(t) => {
                let (it, chain) = t.state();
                (IndexKind::StabThenFilter, it.root, it.len, chain)
            }
        };
        self.save_with(kind, root, len, aux, 0, true)
    }

    fn save_with(
        &self,
        kind: IndexKind,
        root: segdb_pager::PageId,
        len: u64,
        aux: segdb_pager::PageId,
        aux2: u64,
        tombs_are_segments: bool,
    ) -> Result<(), DbError> {
        let sb = Superblock {
            direction: (self.direction.dx(), self.direction.dy()),
            kind,
            root,
            len,
            aux,
            aux2,
            // The facade builds with default configs; record them so
            // attach reconstructs identically.
            pst_fanout: 0,
            fanout: 0,
            bridge_d: Interval2LConfig::default().bridge_d as u32,
            bridges: true,
            rebuild_min: Binary2LConfig::default().rebuild_min,
            any: self.any.as_ref().map(|a| a.state()),
            wal_seq: self.wal_seq,
            tombs_are_segments,
        };
        self.pager.set_meta(&sb.encode()?)?;
        self.pager.sync()?;
        Ok(())
    }

    /// Number of stored segments.
    pub fn len(&self) -> u64 {
        match &self.index {
            Index::Binary(t) => t.len(),
            Index::Interval(t) => t.len(),
            Index::Scan(t) => t.len(),
            Index::Stab(t) => t.len(),
        }
    }

    /// True when no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed query direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The underlying pager (I/O statistics, space accounting).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Which index structure backs this database.
    pub fn kind(&self) -> IndexKind {
        self.index.kind()
    }

    /// Segments per block `B` — the external-memory model's block
    /// capacity for this page size.
    pub fn block_segments(&self) -> u64 {
        crate::chain::cap(self.pager.page_size()) as u64
    }

    /// Turn the observability layer on or off after construction (the
    /// builder's [`SegmentDatabaseBuilder::observe`] does this at build
    /// time; re-opened databases use this). Turning it on resets any
    /// previous metrics and cost-fit state.
    pub fn set_observability(&mut self, on: bool) {
        self.obs = if on {
            Some(DbObserver::new(
                self.index.kind(),
                self.len(),
                self.block_segments(),
            ))
        } else {
            None
        };
    }

    /// Is the observability layer attached?
    pub fn observability(&self) -> bool {
        self.obs.is_some()
    }

    /// Snapshot the observability metrics as JSON:
    /// `{index, segments, block_segments, space_blocks, cache_hit_ratio,
    /// fanout_utilization_pct, cost_model, metrics: {counters, histograms}}`.
    /// `None` when observability is off.
    pub fn metrics_json(&self) -> Option<Json> {
        let obs = self.obs.as_ref()?;
        let reads = obs.registry.counter("page_reads");
        let hits = obs.registry.counter("cache_hits");
        let ratio = if reads + hits == 0 {
            0.0
        } else {
            hits as f64 / (reads + hits) as f64
        };
        let blocks = self.space_blocks() as f64;
        let util = if blocks == 0.0 {
            0.0
        } else {
            100.0 * self.len() as f64 / (blocks * self.block_segments() as f64)
        };
        Some(Json::obj([
            ("index", Json::Str(format!("{:?}", self.index.kind()))),
            ("segments", Json::U64(self.len())),
            ("block_segments", Json::U64(self.block_segments())),
            ("space_blocks", Json::U64(self.space_blocks() as u64)),
            ("cache_hit_ratio", Json::F64(ratio)),
            ("fanout_utilization_pct", Json::F64(util)),
            ("cost_model", obs.fitter().to_json()),
            ("metrics", obs.registry.to_json()),
        ]))
    }

    /// Pin the index's internal descent levels into the pager's
    /// resident cache tier (exempt from eviction), at most `budget`
    /// pages. Returns how many pages are pinned. Opt-in: deterministic
    /// I/O accounting is unchanged until a caller asks for this.
    /// Re-call after structural rebuilds (fold/compact) — stale pins
    /// are refreshed on write and released on free, so correctness
    /// never depends on it, only hit rates.
    pub fn pin_internal_levels(&self, budget: usize) -> Result<usize, DbError> {
        let pages = match &self.index {
            Index::Binary(x) => x.hot_pages(&self.pager, budget)?,
            Index::Interval(x) => x.hot_pages(&self.pager, budget)?,
            Index::Scan(_) => Vec::new(), // no internal levels to pin
            Index::Stab(x) => x.hot_pages(&self.pager, budget)?,
        };
        Ok(self.pager.pin_pages(&pages)?)
    }

    /// Release every pinned page back to the evictable tier.
    pub fn unpin_all(&self) {
        self.pager.unpin_all();
    }

    /// Run a canonical-frame query with event tracing enabled and return
    /// the enriched trace plus the aggregated span summary (first-level
    /// visits, second-level probes, bridge jumps, per-crate node visits,
    /// pager events). Powering the CLI `trace` subcommand.
    pub fn traced_query(
        &self,
        q: &VerticalQuery,
    ) -> Result<(Vec<Segment>, QueryTrace, TraceSummary), DbError> {
        segdb_obs::trace::clear();
        let res = segdb_obs::trace::with_tracing(|| self.run(q));
        let (events, dropped) = segdb_obs::trace::drain();
        let (hits, trace) = res?;
        Ok((hits, trace, TraceSummary::from_events(&events, dropped)))
    }

    /// Blocks of secondary storage currently allocated.
    pub fn space_blocks(&self) -> usize {
        self.pager.live_pages()
    }

    /// Report every segment intersected by the **full line** of the
    /// fixed direction through `anchor`.
    pub fn query_line(
        &self,
        anchor: impl Into<Point>,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        let q = self.direction.make_query(anchor.into(), None, None)?;
        self.run(&q)
    }

    /// Mode-shaped form of [`SegmentDatabase::query_line`].
    pub fn query_line_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let q = self.direction.make_query(anchor.into(), None, None)?;
        self.run_mode(&q, mode)
    }

    /// Report every segment intersected by the ray from `anchor` in the
    /// fixed direction (increasing ordinate).
    pub fn query_ray_up(
        &self,
        anchor: impl Into<Point>,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        let a = anchor.into();
        let q = self.direction.make_query(a, Some(a.y), None)?;
        self.run(&q)
    }

    /// Mode-shaped form of [`SegmentDatabase::query_ray_up`].
    pub fn query_ray_up_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let a = anchor.into();
        let q = self.direction.make_query(a, Some(a.y), None)?;
        self.run_mode(&q, mode)
    }

    /// Report every segment intersected by the ray from `anchor` against
    /// the fixed direction (decreasing ordinate).
    pub fn query_ray_down(
        &self,
        anchor: impl Into<Point>,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        let a = anchor.into();
        let q = self.direction.make_query(a, None, Some(a.y))?;
        self.run(&q)
    }

    /// Mode-shaped form of [`SegmentDatabase::query_ray_down`].
    pub fn query_ray_down_mode(
        &self,
        anchor: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let a = anchor.into();
        let q = self.direction.make_query(a, None, Some(a.y))?;
        self.run_mode(&q, mode)
    }

    /// Translate user-coordinate segment-query endpoints into the
    /// canonical-frame query, rejecting misaligned endpoints. The
    /// serving layer's batch collector uses this (plus
    /// [`Direction::make_query`] for the anchor shapes) to express a
    /// whole request group in the canonical frame before the shared
    /// walk.
    pub fn segment_query(&self, p1: Point, p2: Point) -> Result<VerticalQuery, DbError> {
        let (t1, t2) = (
            self.direction.apply_point(p1)?,
            self.direction.apply_point(p2)?,
        );
        if t1.x != t2.x {
            return Err(DbError::NotAligned);
        }
        let (lo, hi) = if t1.y <= t2.y {
            (t1.y, t2.y)
        } else {
            (t2.y, t1.y)
        };
        Ok(self.direction.make_query(p1, Some(lo), Some(hi))?)
    }

    /// Report every segment intersected by the query segment `p1—p2`,
    /// whose endpoints must lie on a common line of the fixed direction.
    pub fn query_segment(
        &self,
        p1: impl Into<Point>,
        p2: impl Into<Point>,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        let q = self.segment_query(p1.into(), p2.into())?;
        self.run(&q)
    }

    /// Mode-shaped form of [`SegmentDatabase::query_segment`].
    pub fn query_segment_mode(
        &self,
        p1: impl Into<Point>,
        p2: impl Into<Point>,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let q = self.segment_query(p1.into(), p2.into())?;
        self.run_mode(&q, mode)
    }

    /// Run a canonical-frame query directly (benchmarks use this to sweep
    /// parameters without the anchor arithmetic).
    pub fn query_canonical(
        &self,
        q: &VerticalQuery,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        self.run(q)
    }

    /// Mode-shaped form of [`SegmentDatabase::query_canonical`]: the
    /// same traversal feeds the mode's sink, so `Count` queries ride the
    /// count-from-headers fast paths and `Exists`/`Limit` queries stop
    /// reading pages as soon as the answer is decided.
    pub fn query_canonical_mode(
        &self,
        q: &VerticalQuery,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        self.run_mode(q, mode)
    }

    /// Insert a segment (user coordinates). The set must stay NCT —
    /// violations are the caller's responsibility (checked lazily by
    /// [`SegmentDatabase::validate`]).
    pub fn insert(&mut self, seg: Segment) -> Result<(), DbError> {
        let t = self.direction.apply_segment(&seg)?;
        match &mut self.index {
            Index::Binary(x) => x.insert(&self.pager, t)?,
            Index::Interval(x) => x.insert(&self.pager, t)?,
            Index::Scan(_) => return Err(DbError::Unsupported("insert into FullScan baseline")),
            Index::Stab(_) => {
                return Err(DbError::Unsupported("insert into StabThenFilter baseline"))
            }
        }
        if let Some(any) = &mut self.any {
            any.insert(&self.pager, t)?;
        }
        Ok(())
    }

    /// Report every stored segment intersected by the query segment
    /// `p1—p2` of **arbitrary** direction — the paper's §5 future work,
    /// served by the candidate-filter extension (requires
    /// [`SegmentDatabaseBuilder::enable_arbitrary_queries`]). The trace's
    /// `second_level_probes` records the candidate count.
    pub fn query_free_segment(
        &self,
        p1: impl Into<Point>,
        p2: impl Into<Point>,
    ) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        let any = self.any.as_ref().ok_or(DbError::Unsupported(
            "arbitrary queries not enabled at build time",
        ))?;
        let (p1, p2) = (p1.into(), p2.into());
        let q = Segment::new(
            u64::MAX,
            self.direction.apply_point(p1)?,
            self.direction.apply_point(p2)?,
        )?;
        let scope = segdb_pager::StatScope::begin(&self.pager);
        let (hits, candidates) = any.query(&self.pager, &q)?;
        let hits = hits
            .iter()
            .map(|s| self.direction.unapply_segment(s))
            .collect::<Result<Vec<_>, _>>()?;
        let hits = normalize(hits);
        let trace = QueryTrace {
            second_level_probes: candidates,
            hits: hits.len() as u32,
            io: scope.finish(),
            ..QueryTrace::default()
        };
        Ok((hits, trace))
    }

    /// Delete a stored segment. Native in the Theorem-1 structure; the
    /// paper's Theorem-2 structure is semi-dynamic, so its deletes go
    /// through the lazy-tombstone extension (see
    /// [`crate::interval2l::TwoLevelInterval::remove`]).
    pub fn remove(&mut self, seg: &Segment) -> Result<bool, DbError> {
        let t = self.direction.apply_segment(seg)?;
        if let Some(any) = &mut self.any {
            any.remove(&self.pager, &t)?;
        }
        match &mut self.index {
            Index::Binary(x) => Ok(x.remove(&self.pager, &t)?),
            Index::Interval(x) => Ok(x.remove(&self.pager, &t)?),
            Index::Scan(_) | Index::Stab(_) => Err(DbError::Unsupported("delete from baseline")),
        }
    }

    /// Lazy-delete tombstones currently live in the index (always 0 for
    /// structures that delete in place).
    pub fn tomb_count(&self) -> u64 {
        match &self.index {
            Index::Interval(x) => x.tomb_count(),
            _ => 0,
        }
    }

    /// Fold lazy-delete tombstones back into the index ahead of the
    /// automatic `tomb_count >= len` trigger — the background compaction
    /// entry point; restores the stored-count Count fast path. Returns
    /// whether any work was done.
    pub fn compact(&mut self) -> Result<bool, DbError> {
        match &mut self.index {
            Index::Interval(x) => Ok(x.compact(&self.pager)?),
            _ => Ok(false),
        }
    }

    /// The WAL checkpoint recorded at the last save (see
    /// [`crate::writer`]).
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Update the WAL checkpoint; the next [`SegmentDatabase::save`]
    /// persists it with the superblock.
    pub fn set_wal_seq(&mut self, seq: u64) {
        self.wal_seq = seq;
    }

    /// Deep structural validation of the whole index.
    pub fn validate(&self) -> Result<(), DbError> {
        match &self.index {
            Index::Binary(x) => x.validate(&self.pager)?,
            Index::Interval(x) => x.validate(&self.pager)?,
            Index::Scan(_) | Index::Stab(_) => {}
        }
        if let Some(any) = &self.any {
            any.validate(&self.pager)?;
        }
        Ok(())
    }

    fn run(&self, q: &VerticalQuery) -> Result<(Vec<Segment>, QueryTrace), DbError> {
        match self.run_mode(q, QueryMode::Collect)? {
            (QueryAnswer::Segments(hits), trace) => Ok((hits, trace)),
            _ => unreachable!("Collect always answers with segments"),
        }
    }

    /// One streaming traversal of the index, pushing into `sink`.
    fn run_sink(
        &self,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace, DbError> {
        Ok(match &self.index {
            Index::Binary(x) => x.query_sink(&self.pager, q, sink)?,
            Index::Interval(x) => x.query_sink(&self.pager, q, sink)?,
            Index::Scan(x) => x.query_sink(&self.pager, q, sink)?,
            Index::Stab(x) => x.query_sink(&self.pager, q, sink)?,
        })
    }

    /// One shared traversal of the index answering every live slot of
    /// `multi` — the batched counterpart of [`run_sink`](Self::run_sink).
    pub(crate) fn run_batch_sinks(&self, multi: &mut MultiSink<'_>) -> Result<QueryTrace, DbError> {
        Ok(match &self.index {
            Index::Binary(x) => x.query_batch_sink(&self.pager, multi)?,
            Index::Interval(x) => x.query_batch_sink(&self.pager, multi)?,
            Index::Scan(x) => x.query_batch_sink(&self.pager, multi)?,
            Index::Stab(x) => x.query_batch_sink(&self.pager, multi)?,
        })
    }

    /// Run a canonical-frame query under `mode`. Segment-carrying
    /// answers are sheared back to user coordinates and normalized;
    /// count/exists answers never materialize the segments at all.
    pub(crate) fn run_mode(
        &self,
        q: &VerticalQuery,
        mode: QueryMode,
    ) -> Result<(QueryAnswer, QueryTrace), DbError> {
        let (answer, mut trace) = match mode {
            QueryMode::Collect => {
                let mut out = Vec::new();
                let trace = self.run_sink(q, &mut out)?;
                (QueryAnswer::Segments(self.unshear(out)?), trace)
            }
            QueryMode::Count => {
                let mut sink = CountSink::new();
                let trace = self.run_sink(q, &mut sink)?;
                (QueryAnswer::Count(sink.count), trace)
            }
            QueryMode::Exists => {
                let mut sink = ExistsSink::new();
                let trace = self.run_sink(q, &mut sink)?;
                (QueryAnswer::Exists(sink.found), trace)
            }
            QueryMode::Limit(k) => {
                let mut sink = LimitSink::new(k as usize);
                let trace = self.run_sink(q, &mut sink)?;
                (QueryAnswer::Segments(self.unshear(sink.into_vec())?), trace)
            }
        };
        trace.mode = mode;
        if let Some(obs) = &self.obs {
            self.observe_query(obs, &mut trace);
        }
        Ok((answer, trace))
    }

    /// Feed one finished query into the observer, when one is on.
    /// Batch execution uses this after splitting the shared-walk I/O
    /// across slots; `run_mode` keeps its inline call.
    pub(crate) fn observe_trace(&self, trace: &mut QueryTrace) {
        if let Some(obs) = &self.obs {
            self.observe_query(obs, trace);
        }
    }

    /// Back to user coordinates, sorted by id.
    pub(crate) fn unshear(&self, hits: Vec<Segment>) -> Result<Vec<Segment>, DbError> {
        let hits = hits
            .iter()
            .map(|s| self.direction.unapply_segment(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(normalize(hits))
    }

    /// Feed one finished query into the registry and the cost fitter.
    fn observe_query(&self, obs: &DbObserver, trace: &mut QueryTrace) {
        let r = &obs.registry;
        r.incr("queries", 1);
        r.incr(&format!("queries_{}", trace.mode.name()), 1);
        r.incr("pages_saved", trace.pages_saved);
        r.incr("page_reads", trace.io.reads);
        r.incr("page_writes", trace.io.writes);
        r.incr("cache_hits", trace.io.cache_hits);
        r.observe("io_per_query", trace.io.total_io());
        r.observe("hits_per_query", trace.hits as u64);
        r.observe("first_level_nodes", trace.first_level_nodes as u64);
        r.observe("second_level_probes", trace.second_level_probes as u64);
        // The stab baseline's output term is its candidate count, not the
        // filtered hits — that is exactly the `t_stab ≥ t` the paper
        // holds against it.
        let t_items = match self.index.kind() {
            IndexKind::StabThenFilter => trace.second_level_probes as u64,
            _ => trace.hits as u64,
        };
        let mut fitter = obs.fitter();
        fitter.set_n(self.len());
        trace.cost = fitter.record(t_items, trace.io.total_io());
        if trace.cost.is_some_and(|c| !c.within) {
            r.incr("cost_violations", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ids;
    use segdb_geom::gen::{mixed_map, vertical_queries};
    use segdb_geom::query::scan_oracle;

    const KINDS: [IndexKind; 4] = [
        IndexKind::TwoLevelBinary,
        IndexKind::TwoLevelInterval,
        IndexKind::FullScan,
        IndexKind::StabThenFilter,
    ];

    /// The serving layer shares one database across worker threads; this
    /// is the compile-time contract it stands on.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SegmentDatabase>();
    }

    #[test]
    fn concurrent_queries_share_one_database() {
        let set = mixed_map(300, 41);
        let queries = vertical_queries(&set, 16, 100, 7);
        let db = std::sync::Arc::new(
            SegmentDatabase::builder()
                .page_size(512)
                .cache_pages(32)
                .cache_shards(4)
                .observe()
                .build(set.clone())
                .unwrap(),
        );
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| ids(&db.query_canonical(q).unwrap().0))
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let db = std::sync::Arc::clone(&db);
                let queries = queries.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for (q, want) in queries.iter().zip(&expected) {
                        let (hits, _) = db.query_canonical(q).unwrap();
                        assert_eq!(&ids(&hits), want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = db.metrics_json().unwrap();
        let n = snap
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("queries"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(n as u64, 16 + 4 * 16, "every observed query counted");
    }

    #[test]
    fn all_kinds_agree_on_vertical_queries() {
        let set = mixed_map(400, 17);
        let queries = vertical_queries(&set, 20, 120, 23);
        for kind in KINDS {
            let db = SegmentDatabase::builder()
                .page_size(512)
                .index(kind)
                .build(set.clone())
                .unwrap();
            db.validate().unwrap();
            assert_eq!(db.len(), set.len() as u64);
            for q in &queries {
                let (hits, _) = db.query_canonical(q).unwrap();
                assert_eq!(ids(&hits), ids(&scan_oracle(&set, q)), "{kind:?} {q:?}");
            }
        }
    }

    #[test]
    fn sheared_direction_roundtrips() {
        // A set that is NCT after shearing along (1, 2).
        let raw: Vec<Segment> = (0..200)
            .map(|i| {
                let y = 8 * i as i64;
                Segment::new(i, (0, y), (500, y + 3)).unwrap()
            })
            .collect();
        let db = SegmentDatabase::builder()
            .page_size(512)
            .direction(1, 2)
            .unwrap()
            .build(raw.clone())
            .unwrap();
        let (hits, _) = db.query_line((10, 0)).unwrap();
        // Answers come back in original coordinates.
        for h in &hits {
            assert_eq!(h, &raw[h.id as usize]);
        }
        // Brute-force check in original space: the query line through
        // (10, 0) along (1, 2) is y = 2(x − 10); a segment is hit iff it
        // straddles that line within its span.
        let oracle: Vec<u64> = raw
            .iter()
            .filter(|s| {
                let f = |x: i64| 2 * (x - 10);
                let (ya, yb) = (s.a.y - f(s.a.x), s.b.y - f(s.b.x));
                ya.signum() * yb.signum() <= 0
            })
            .map(|s| s.id)
            .collect();
        assert_eq!(ids(&hits), oracle);
    }

    #[test]
    fn misaligned_segment_query_rejected() {
        let db = SegmentDatabase::builder()
            .page_size(512)
            .build(vec![Segment::new(0, (0, 0), (10, 0)).unwrap()])
            .unwrap();
        assert!(matches!(
            db.query_segment((0, 0), (5, 3)),
            Err(DbError::NotAligned)
        ));
        let (hits, _) = db.query_segment((5, -1), (5, 1)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn crossing_input_rejected() {
        let set = vec![
            Segment::new(0, (0, 0), (10, 10)).unwrap(),
            Segment::new(1, (0, 10), (10, 0)).unwrap(),
        ];
        let err = SegmentDatabase::builder().build(set).unwrap_err();
        assert!(matches!(err, DbError::Geom(GeomError::Crossing(0, 1))));
    }

    #[test]
    fn insert_and_remove_through_facade() {
        let set = mixed_map(200, 29);
        let mut db = SegmentDatabase::builder()
            .page_size(512)
            .index(IndexKind::TwoLevelBinary)
            .build(vec![])
            .unwrap();
        for s in &set {
            db.insert(*s).unwrap();
        }
        db.validate().unwrap();
        assert_eq!(db.len(), set.len() as u64);
        assert!(db.remove(&set[0]).unwrap());
        assert_eq!(db.len(), set.len() as u64 - 1);
        // The Theorem-2 structure is semi-dynamic in the paper; our
        // lazy-tombstone extension makes removal work there too.
        let mut db2 = SegmentDatabase::builder()
            .page_size(512)
            .index(IndexKind::TwoLevelInterval)
            .build(set.clone())
            .unwrap();
        db2.insert(Segment::new(9999, (1 << 20, 0), (1 << 20, 5)).unwrap())
            .unwrap();
        assert!(db2.remove(&set[0]).unwrap());
        assert!(
            !db2.remove(&set[0]).unwrap(),
            "second removal finds nothing"
        );
        db2.validate().unwrap();
        assert_eq!(db2.len(), set.len() as u64);
    }

    #[test]
    fn rays_and_lines_through_facade() {
        let set = vec![
            Segment::new(0, (0, 0), (10, 0)).unwrap(),
            Segment::new(1, (0, 10), (10, 10)).unwrap(),
        ];
        let db = SegmentDatabase::builder()
            .page_size(512)
            .build(set)
            .unwrap();
        let (hits, _) = db.query_line((5, 0)).unwrap();
        assert_eq!(hits.len(), 2);
        let (hits, _) = db.query_ray_up((5, 5)).unwrap();
        assert_eq!(ids(&hits), vec![1]);
        let (hits, _) = db.query_ray_down((5, 5)).unwrap();
        assert_eq!(ids(&hits), vec![0]);
    }
}
