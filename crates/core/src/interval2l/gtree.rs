//! The segment tree `G` over slabs (paper §4.2): skeleton geometry.
//!
//! For a first-level node with `k` boundaries (`s₀ … s_{k−1}`, slabs
//! `0 … k`), only slabs `1 … k−1` can be *fully spanned* by a fragment
//! (they have boundaries on both sides), so `G` is a balanced binary
//! segment tree whose leaves are exactly those `k−1` slabs — the paper's
//! "`b − 1` leaves". The skeleton is purely combinatorial and is
//! recomputed from `k` (no storage); only the per-node multislab list
//! handles live in the first-level node's page.

/// One node of the `G` skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GNode {
    /// Covered slab range `[a, b]` (inclusive, `1 ≤ a ≤ b ≤ k−1`).
    pub a: usize,
    /// Range end.
    pub b: usize,
    /// Index of the left child in the skeleton array (self-loop = leaf).
    pub left: usize,
    /// Index of the right child.
    pub right: usize,
}

impl GNode {
    /// True when this node covers a single slab.
    pub fn is_leaf(&self) -> bool {
        self.a == self.b
    }

    /// The boundary index splitting the children: left covers `[a, mid]`,
    /// right covers `[mid+1, b]`; the split line is `s_mid`.
    pub fn mid(&self) -> usize {
        (self.a + self.b) / 2
    }
}

/// The deterministic skeleton for `k` boundaries. Index 0 is the root.
/// Empty when `k < 2`.
pub fn skeleton(k: usize) -> Vec<GNode> {
    if k < 2 {
        return Vec::new();
    }
    let mut nodes = Vec::with_capacity(2 * (k - 1) - 1);
    build(&mut nodes, 1, k - 1);
    nodes
}

fn build(nodes: &mut Vec<GNode>, a: usize, b: usize) -> usize {
    let idx = nodes.len();
    nodes.push(GNode {
        a,
        b,
        left: idx,
        right: idx,
    });
    if a < b {
        let mid = (a + b) / 2;
        let left = build(nodes, a, mid);
        let right = build(nodes, mid + 1, b);
        nodes[idx].left = left;
        nodes[idx].right = right;
    }
    idx
}

/// Skeleton indices of the **allocation nodes** of a fragment spanning
/// slabs `[fa, fb]` (inclusive): the maximal nodes fully inside the span
/// — at most two per level (the paper's `O(log₂ B)` allocation count).
pub fn allocation(nodes: &[GNode], fa: usize, fb: usize, out: &mut Vec<usize>) {
    if nodes.is_empty() || fa > fb {
        return;
    }
    alloc_rec(nodes, 0, fa, fb, out);
}

fn alloc_rec(nodes: &[GNode], idx: usize, fa: usize, fb: usize, out: &mut Vec<usize>) {
    let n = nodes[idx];
    if fb < n.a || fa > n.b {
        return;
    }
    if fa <= n.a && n.b <= fb {
        out.push(idx);
        return;
    }
    if n.is_leaf() {
        return;
    }
    alloc_rec(nodes, n.left, fa, fb, out);
    alloc_rec(nodes, n.right, fa, fb, out);
}

/// Root-to-leaf path of skeleton indices for a query in slab `j`
/// (`1 ≤ j ≤ k−1`); empty if `j` is outside the spannable slabs.
pub fn path(nodes: &[GNode], j: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if nodes.is_empty() || j < nodes[0].a || j > nodes[0].b {
        return out;
    }
    let mut idx = 0usize;
    loop {
        out.push(idx);
        let n = nodes[idx];
        if n.is_leaf() {
            return out;
        }
        idx = if j <= n.mid() { n.left } else { n.right };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_shape() {
        assert!(skeleton(0).is_empty());
        assert!(skeleton(1).is_empty());
        for k in 2..40 {
            let s = skeleton(k);
            assert_eq!(s.len(), 2 * (k - 1) - 1, "k={k}");
            assert_eq!((s[0].a, s[0].b), (1, k - 1));
            let leaves = s.iter().filter(|n| n.is_leaf()).count();
            assert_eq!(leaves, k - 1);
            // Children partition parents.
            for n in &s {
                if !n.is_leaf() {
                    assert_eq!(s[n.left].a, n.a);
                    assert_eq!(s[n.left].b, n.mid());
                    assert_eq!(s[n.right].a, n.mid() + 1);
                    assert_eq!(s[n.right].b, n.b);
                }
            }
        }
    }

    #[test]
    fn allocation_is_disjoint_exact_cover() {
        for k in 2..24 {
            let s = skeleton(k);
            for fa in 1..k {
                for fb in fa..k {
                    let mut idxs = Vec::new();
                    allocation(&s, fa, fb, &mut idxs);
                    // Covered slabs = [fa, fb] exactly, disjointly.
                    let mut covered = vec![0u8; k];
                    for &i in &idxs {
                        for c in covered.iter_mut().take(s[i].b + 1).skip(s[i].a) {
                            *c += 1;
                        }
                    }
                    for (slab, &c) in covered.iter().enumerate().take(k).skip(1) {
                        let want = u8::from(fa <= slab && slab <= fb);
                        assert_eq!(c, want, "k={k} [{fa},{fb}] slab {slab}");
                    }
                }
            }
        }
    }

    #[test]
    fn allocation_count_is_logarithmic() {
        let k = 33;
        let s = skeleton(k);
        for fa in 1..k {
            for fb in fa..k {
                let mut idxs = Vec::new();
                allocation(&s, fa, fb, &mut idxs);
                let height = (k as f64).log2().ceil() as usize + 1;
                assert!(idxs.len() <= 2 * height, "[{fa},{fb}]: {}", idxs.len());
            }
        }
    }

    #[test]
    fn path_visits_exactly_covering_nodes() {
        for k in 2..24 {
            let s = skeleton(k);
            for j in 1..k {
                let p = path(&s, j);
                assert!(!p.is_empty());
                // Path = every node covering slab j.
                let covering: Vec<usize> = (0..s.len())
                    .filter(|&i| s[i].a <= j && j <= s[i].b)
                    .collect();
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, covering, "k={k} j={j}");
                assert!(s[*p.last().unwrap()].is_leaf());
            }
            assert!(path(&s, 0).is_empty());
            assert!(path(&s, k).is_empty());
        }
    }

    /// Every allocation node of `[fa, fb]` lies on the query path of any
    /// slab `j ∈ [fa, fb]` — the property that makes the G search find
    /// every intersected long fragment.
    #[test]
    fn allocation_meets_every_covered_path() {
        let k = 17;
        let s = skeleton(k);
        for fa in 1..k {
            for fb in fa..k {
                let mut idxs = Vec::new();
                allocation(&s, fa, fb, &mut idxs);
                for j in fa..=fb {
                    let p = path(&s, j);
                    let on_path = idxs.iter().filter(|i| p.contains(i)).count();
                    assert_eq!(on_path, 1, "exactly one allocation node per covered path");
                }
            }
        }
    }
}
