//! Multislab list records and their geometric order.

use segdb_bptree::{Record, RecordOrd};
use segdb_geom::{Point, Segment};
use segdb_pager::{ByteReader, ByteWriter, PageId, PagerError, Result, NULL_PAGE};
use segdb_pst::Side;
use std::cmp::Ordering;

/// One entry of a multislab list: a long fragment (represented by its
/// original segment — the clip to the multislab is implicit) plus the
/// fractional-cascading bridge pointers of §4.3.
///
/// This implementation keeps multislab lists **pure**: only real
/// fragments, every one of which spans the whole multislab, so every
/// pair is exactly comparable at every line of the multislab. The
/// paper's *augmented bridge fragments* are replaced by pointer fields
/// on the nearest preceding real element (see
/// `build_g_lists` in the parent module); DESIGN.md records why this preserves the
/// `d`-property's density and landing guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsRec {
    /// The original segment (fragment clip implied by the list's range).
    pub seg: Segment,
    /// Leaf page in the *left* child list where a downward search for
    /// this element's position lands ([`NULL_PAGE`] = no bridge here).
    pub bridge_left: PageId,
    /// Same, for the right child list.
    pub bridge_right: PageId,
}

impl MsRec {
    /// A fragment with no bridge pointers.
    pub fn real(seg: Segment) -> Self {
        MsRec {
            seg,
            bridge_left: NULL_PAGE,
            bridge_right: NULL_PAGE,
        }
    }
}

impl Record for MsRec {
    const ENCODED_SIZE: usize = 40 + 4 + 4;

    fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.u64(self.seg.id)?;
        w.i64(self.seg.a.x)?;
        w.i64(self.seg.a.y)?;
        w.i64(self.seg.b.x)?;
        w.i64(self.seg.b.y)?;
        w.u32(self.bridge_left)?;
        w.u32(self.bridge_right)
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let id = r.u64()?;
        let a = Point::new(r.i64()?, r.i64()?);
        let b = Point::new(r.i64()?, r.i64()?);
        let seg =
            Segment::new(id, a, b).map_err(|_| PagerError::Corrupt("invalid multislab segment"))?;
        Ok(MsRec {
            seg,
            bridge_left: r.u32()?,
            bridge_right: r.u32()?,
        })
    }
}

/// The list order: exact ordinate at the list's *reference line* (the
/// left outer boundary of the multislab), touching ties by slope (the
/// order just right of the line), then id.
///
/// For non-crossing fragments that all span the multislab, this order is
/// consistent with the ordinate order at **every** line of the multislab
/// (strictly at interior lines — two full-spanning fragments touching at
/// an interior point would have to cross), which is what makes the
/// intersected run contiguous and the §4.3 bridge merges line up across
/// levels.
#[derive(Debug, Clone, Copy)]
pub struct MsOrder {
    /// Reference line (left outer boundary of the multislab).
    pub line: i64,
}

impl MsOrder {
    /// Compare two fragments at an arbitrary line both span — bridge
    /// merges compare parent and child lists at the parent's split line.
    pub fn cmp_at(line: i64, a: &MsRec, b: &MsRec) -> Ordering {
        Side::Right.cmp_base(line, &a.seg, &b.seg)
    }
}

impl RecordOrd<MsRec> for MsOrder {
    fn cmp_records(&self, a: &MsRec, b: &MsRec) -> Ordering {
        MsOrder::cmp_at(self.line, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, a: (i64, i64), b: (i64, i64)) -> MsRec {
        MsRec::real(Segment::new(id, a, b).unwrap())
    }

    #[test]
    fn roundtrip() {
        let mut r = rec(9, (0, 5), (100, 7));
        r.bridge_left = 42;
        r.bridge_right = 77;
        let mut buf = vec![0u8; MsRec::ENCODED_SIZE];
        r.encode(&mut ByteWriter::new(&mut buf)).unwrap();
        assert_eq!(MsRec::decode(&mut ByteReader::new(&buf)).unwrap(), r);
    }

    #[test]
    fn order_by_line_then_slope() {
        let o = MsOrder { line: 0 };
        let lo = rec(1, (0, 0), (100, 10));
        let hi = rec(2, (0, 5), (100, 6));
        assert_eq!(o.cmp_records(&lo, &hi), Ordering::Less);
        // Touching at the line: flatter first (order just right of it).
        let flat = rec(3, (0, 0), (100, 1));
        let steep = rec(4, (0, 0), (100, 50));
        assert_eq!(o.cmp_records(&flat, &steep), Ordering::Less);
    }

    #[test]
    fn order_consistent_across_lines() {
        // Non-crossing fragments spanning [0, 100]: order at 0 matches
        // order at 50 and 100.
        let a = rec(1, (-10, 0), (110, 20));
        let b = rec(2, (0, 5), (100, 30));
        for line in [0, 50, 100] {
            assert_eq!(MsOrder::cmp_at(line, &a, &b), Ordering::Less, "line {line}");
        }
    }

    #[test]
    fn bridge_fields_do_not_affect_order() {
        let o = MsOrder { line: 0 };
        let a = rec(1, (0, 0), (100, 10));
        let mut b = a;
        b.bridge_left = 99;
        assert_eq!(o.cmp_records(&a, &b), Ordering::Equal);
    }
}
