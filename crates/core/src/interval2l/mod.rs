//! Solution 2 (paper §4, Theorem 2): the interval-tree two-level
//! structure with fractional cascading.
//!
//! **First level** (§4.1) — an external-interval-tree decomposition: each
//! node carries `k` boundary lines (endpoint quantiles) cutting its range
//! into `k+1` slabs; a segment stays at the topmost node where it meets a
//! boundary, everything else drops into the slab child. `k = Θ(B)`
//! (page-size bounded), so the height is `O(log_B n)`.
//!
//! **Second level** (§4.2), per node — each assigned segment is split:
//!
//! * lies on boundary `sᵢ` → interval set `Cᵢ`;
//! * **short fragments**: the part before the first crossed boundary
//!   `s_f` goes to the left-side PST `L_f`, the part after the last
//!   crossed boundary `s_l` to the right-side PST `R_l`;
//! * **long (central) fragment**: the part spanning complete slabs
//!   `f+1 … l` is filed, segment-tree style, at its `O(log₂ B)`
//!   *allocation nodes* in `G` (see [`gtree`]), each node's *multislab
//!   list* being a B⁺-tree ordered by the exact ordinate at the
//!   multislab's reference line ([`msrec::MsOrder`]).
//!
//! **Fractional cascading** (§4.3) — parent and child multislab lists
//! are merged at the parent's split line and every `(d+1)`-th merged
//! element is selected, satisfying the paper's `d`-property. Where the
//! paper inserts *augmented bridge fragments* into the neighbouring
//! list, this implementation materializes each selection as a **pointer
//! on the nearest preceding real parent element**, aimed at the child
//! leaf a position search for the selected element lands on (cut
//! fragments are not exactly comparable at every query line; pointers
//! on pure lists are — DESIGN.md discusses the substitution). Density
//! and landing direction are preserved: pointer gaps in the parent are
//! ≤ `d+2` elements, and a pointer taken from *before* the reported
//! run's start lands at or before the child's run start. A query walks
//! `G` root→leaf paying one full B⁺-tree descent only at the root;
//! below it jumps through the bridge found just before the run start
//! and re-anchors with a short forward scan. If a bridge is missing or
//! stale (inserts mark the node dirty until the amortized rebuild), the
//! query falls back to a full descent — correctness never depends on
//! bridge freshness, only speed does (measured by experiment E7).
//!
//! **Insertions** (Theorem 2(iii)) — route to the owning node, insert
//! into the three structures, maintain weights, partially rebuild
//! α-unbalanced subtrees, and rebuild a node's bridges once enough
//! inserts accumulate.

pub mod gtree;
pub mod msrec;

use crate::chain;
use crate::report::{CountingSink, QueryTrace, TombFilterSink};
use gtree::{allocation, path as g_path, skeleton, GNode};
use msrec::{MsOrder, MsRec};
use segdb_bptree::{BPlusTree, Cursor, TreeState};
use segdb_geom::predicates::y_at_x_cmp;
use segdb_geom::{FusedSink, MultiSink, ReportSink, Segment, VerticalQuery};
use segdb_itree::overlap::{IntervalSet, IntervalSetState};
use segdb_itree::{Interval, IntervalTreeConfig};
use segdb_obs::trace::{emit as obs_emit, probe, EventKind};
use segdb_pager::{
    ByteReader, ByteWriter, PageId, Pager, PagerError, Result, StatScope, NULL_PAGE,
};
use segdb_pst::{Pst, PstConfig, PstState, Side};
use std::cmp::Ordering;
use std::ops::ControlFlow;

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
/// Bridge-navigation forward-scan cap before falling back to a descent.
const JUMP_SCAN_CAP: usize = 64;

/// Construction knobs for [`TwoLevelInterval`].
#[derive(Debug, Clone, Copy)]
pub struct Interval2LConfig {
    /// PST flavour for the short-fragment structures.
    pub pst: PstConfig,
    /// Boundaries per first-level node (`None` = page-size maximum, the
    /// paper's `b = Θ(B)`).
    pub fanout: Option<usize>,
    /// The `d` of the `d`-property (`≥ 2`); bridges every `d+1` merged
    /// elements. Larger `d` = fewer augmented copies, longer re-anchor
    /// scans (ablation E7).
    pub bridge_d: usize,
    /// Disable bridges entirely (the Lemma 4 configuration, for the
    /// ablation).
    pub bridges: bool,
    /// Weight-rebuild threshold, as in Solution 1.
    pub rebuild_min: u64,
}

impl Default for Interval2LConfig {
    fn default() -> Self {
        Interval2LConfig {
            pst: PstConfig::packed(),
            fanout: None,
            bridge_d: 2,
            bridges: true,
            rebuild_min: 32,
        }
    }
}

/// Max boundary count for a page size.
fn max_fanout(page_size: usize) -> usize {
    // bytes(k) ≈ fixed 40 + k·(8 sizes + 8 bnd + 4 child + 28 C + 40 LR
    // + 32 G states)
    ((page_size.saturating_sub(48)) / 120).max(1)
}

/// Sentinel-aware interval-set state ("absent" = root NULL, no pages).
fn absent_set() -> IntervalSetState {
    IntervalSetState {
        tree: segdb_itree::tree::ItState {
            root: NULL_PAGE,
            len: 0,
        },
        starts: TreeState {
            root: NULL_PAGE,
            height: 0,
            len: 0,
        },
    }
}

fn set_is_absent(s: &IntervalSetState) -> bool {
    s.tree.root == NULL_PAGE
}

fn list_is_absent(s: &TreeState) -> bool {
    s.root == NULL_PAGE
}

fn absent_list() -> TreeState {
    TreeState {
        root: NULL_PAGE,
        height: 0,
        len: 0,
    }
}

/// Decoded first-level node.
#[derive(Debug)]
enum Node {
    Leaf { head: PageId, count: u64 },
    Internal(Box<Internal>),
}

#[derive(Debug)]
struct Internal {
    /// `k` strictly increasing boundary abscissae.
    boundaries: Vec<i64>,
    /// `k+1` slab children ([`NULL_PAGE`] = empty).
    children: Vec<PageId>,
    /// Per-child subtree segment counts.
    child_sizes: Vec<u64>,
    /// Total segments in this subtree (own included).
    total: u64,
    /// Per-boundary on-line interval sets (absent-sentinel aware).
    c: Vec<IntervalSetState>,
    /// Per-boundary left-side short-fragment PSTs.
    l: Vec<PstState>,
    /// Per-boundary right-side short-fragment PSTs.
    r: Vec<PstState>,
    /// Multislab list per `G` skeleton node (absent-sentinel aware).
    g: Vec<TreeState>,
    /// Real (non-augmented) fragments across all of `g`.
    g_total: u64,
    /// Bridges unusable until rebuilt.
    bridges_dirty: bool,
    /// Inserts into `g` since the last bridge rebuild.
    g_inserts: u32,
}

impl Node {
    fn encode(&self, buf: &mut [u8]) -> Result<()> {
        let mut w = ByteWriter::new(buf);
        match self {
            Node::Leaf { head, count } => {
                w.u8(TAG_LEAF)?;
                w.u32(*head)?;
                w.u64(*count)
            }
            Node::Internal(n) => {
                let k = n.boundaries.len();
                if n.children.len() != k + 1
                    || n.child_sizes.len() != k + 1
                    || n.c.len() != k
                    || n.l.len() != k
                    || n.r.len() != k
                    || n.g.len() != skeleton(k).len()
                {
                    return Err(PagerError::Corrupt("interval2l node arity"));
                }
                w.u8(TAG_INTERNAL)?;
                w.u16(k as u16)?;
                w.u64(n.total)?;
                w.u64(n.g_total)?;
                w.u8(u8::from(n.bridges_dirty))?;
                w.u32(n.g_inserts)?;
                for &b in &n.boundaries {
                    w.i64(b)?;
                }
                for &c in &n.children {
                    w.u32(c)?;
                }
                for &s in &n.child_sizes {
                    w.u64(s)?;
                }
                for s in &n.c {
                    s.encode(&mut w)?;
                }
                for s in &n.l {
                    s.encode(&mut w)?;
                }
                for s in &n.r {
                    s.encode(&mut w)?;
                }
                for s in &n.g {
                    s.encode(&mut w)?;
                }
                Ok(())
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let mut r = ByteReader::new(buf);
        match r.u8()? {
            TAG_LEAF => Ok(Node::Leaf {
                head: r.u32()?,
                count: r.u64()?,
            }),
            TAG_INTERNAL => {
                let k = r.u16()? as usize;
                let total = r.u64()?;
                let g_total = r.u64()?;
                let bridges_dirty = r.u8()? != 0;
                let g_inserts = r.u32()?;
                let mut boundaries = Vec::with_capacity(k);
                for _ in 0..k {
                    boundaries.push(r.i64()?);
                }
                let mut children = Vec::with_capacity(k + 1);
                for _ in 0..=k {
                    children.push(r.u32()?);
                }
                let mut child_sizes = Vec::with_capacity(k + 1);
                for _ in 0..=k {
                    child_sizes.push(r.u64()?);
                }
                let mut c = Vec::with_capacity(k);
                for _ in 0..k {
                    c.push(IntervalSetState::decode(&mut r)?);
                }
                let mut l = Vec::with_capacity(k);
                for _ in 0..k {
                    l.push(PstState::decode(&mut r)?);
                }
                let mut rr = Vec::with_capacity(k);
                for _ in 0..k {
                    rr.push(PstState::decode(&mut r)?);
                }
                let glen = skeleton(k).len();
                let mut g = Vec::with_capacity(glen);
                for _ in 0..glen {
                    g.push(TreeState::decode(&mut r)?);
                }
                Ok(Node::Internal(Box::new(Internal {
                    boundaries,
                    children,
                    child_sizes,
                    total,
                    c,
                    l,
                    r: rr,
                    g,
                    g_total,
                    bridges_dirty,
                    g_inserts,
                })))
            }
            _ => Err(PagerError::Corrupt("unknown interval2l node tag")),
        }
    }
}

/// Where a segment lands relative to a node's boundaries.
enum Placement {
    /// Vertical, lying on boundary `i`.
    OnLine(usize),
    /// Crosses boundaries `f..=l`.
    Crossing { f: usize, l: usize },
    /// Strictly inside slab `j`.
    Child(usize),
}

fn place(boundaries: &[i64], s: &Segment) -> Placement {
    let k = boundaries.len();
    if s.is_vertical() {
        let f = boundaries.partition_point(|&b| b < s.a.x);
        if f < k && boundaries[f] == s.a.x {
            return Placement::OnLine(f);
        }
        return Placement::Child(f);
    }
    let f = boundaries.partition_point(|&b| b < s.a.x);
    if f < k && boundaries[f] <= s.b.x {
        let l = boundaries.partition_point(|&b| b <= s.b.x) - 1;
        Placement::Crossing { f, l }
    } else {
        Placement::Child(f)
    }
}

/// The Section-4 two-level structure. See module docs.
///
/// ```
/// use segdb_pager::{Pager, PagerConfig};
/// use segdb_core::interval2l::{Interval2LConfig, TwoLevelInterval};
/// use segdb_geom::{Segment, VerticalQuery};
///
/// let pager = Pager::new(PagerConfig::default());
/// let set: Vec<Segment> = (0..100)
///     .map(|i| Segment::new(i, (0, 10 * i as i64), (1000, 10 * i as i64 + 1)).unwrap())
///     .collect();
/// let t = TwoLevelInterval::build(&pager, Interval2LConfig::default(), set).unwrap();
/// let (hits, _) = t.query(&pager, &VerticalQuery::segment(500, 0, 95)).unwrap();
/// assert_eq!(hits.len(), 10);
/// ```
#[derive(Debug)]
pub struct TwoLevelInterval {
    root: PageId,
    /// Live (non-tombstoned) segment count.
    len: u64,
    /// Lazily-deleted segments (chain head). v3 databases store the
    /// full segment ([`crate::chain`]) so Count-mode queries can
    /// subtract overlapping tombstones; pre-v3 chains hold bare ids
    /// (`segdb_pst::tombs`) and keep the old materializing filter.
    tomb_head: PageId,
    tomb_count: u64,
    /// Tombstone chain format (see `tomb_head`). The first mutation of
    /// a legacy structure upgrades it via a live rebuild.
    tombs_are_segments: bool,
    cfg: Interval2LConfig,
    k_max: usize,
}

impl TwoLevelInterval {
    /// Build from an NCT segment set.
    pub fn build(pager: &Pager, cfg: Interval2LConfig, segs: Vec<Segment>) -> Result<Self> {
        let k_max = cfg
            .fanout
            .map_or(max_fanout(pager.page_size()), |f| {
                f.min(max_fanout(pager.page_size()))
            })
            .max(1);
        let len = segs.len() as u64;
        let this = TwoLevelInterval {
            root: NULL_PAGE,
            len,
            tomb_head: NULL_PAGE,
            tomb_count: 0,
            tombs_are_segments: true,
            cfg,
            k_max,
        };
        let root = this.build_rec(pager, segs)?;
        Ok(TwoLevelInterval { root, ..this })
    }

    /// Serializable identity: `(root page, live count, tombstone chain,
    /// tombstone count)`. The config is context the owner persists
    /// alongside.
    pub fn state(&self) -> (PageId, u64, PageId, u64) {
        (self.root, self.len, self.tomb_head, self.tomb_count)
    }

    /// Reconstruct from a serialized identity. `tombs_are_segments`
    /// comes from the superblock version: v3+ chains store segments,
    /// older ones bare ids.
    pub fn attach(
        pager: &Pager,
        cfg: Interval2LConfig,
        root: PageId,
        len: u64,
        tomb_head: PageId,
        tomb_count: u64,
        tombs_are_segments: bool,
    ) -> Self {
        let k_max = cfg
            .fanout
            .map_or(max_fanout(pager.page_size()), |f| {
                f.min(max_fanout(pager.page_size()))
            })
            .max(1);
        TwoLevelInterval {
            root,
            len,
            tomb_head,
            tomb_count,
            // An empty chain has no legacy format to preserve.
            tombs_are_segments: tombs_are_segments || tomb_count == 0,
            cfg,
            k_max,
        }
    }

    /// Tombstones currently recorded (live deletes awaiting rebuild).
    pub fn tomb_count(&self) -> u64 {
        self.tomb_count
    }

    /// Tombstone chain format (segments for v3+, ids for legacy).
    pub fn tombs_are_segments(&self) -> bool {
        self.tombs_are_segments
    }

    /// Fold every tombstone away now (rebuild from the live set) instead
    /// of waiting for the `tomb_count >= len` trigger — the background
    /// compaction entry point. Returns whether a rebuild ran.
    pub fn compact(&mut self, pager: &Pager) -> Result<bool> {
        if self.tomb_count == 0 {
            return Ok(false);
        }
        self.rebuild_live(pager)?;
        Ok(true)
    }

    /// Lazily-deleted ids, whatever the chain format.
    fn tomb_ids(&self, pager: &Pager) -> Result<Vec<u64>> {
        if self.tomb_count == 0 {
            return Ok(Vec::new());
        }
        if self.tombs_are_segments {
            Ok(chain::collect(pager, self.tomb_head)?
                .into_iter()
                .map(|s| s.id)
                .collect())
        } else {
            segdb_pst::tombs::load(pager, self.tomb_head)
        }
    }

    fn destroy_tombs(&self, pager: &Pager) -> Result<()> {
        if self.tombs_are_segments {
            chain::destroy(pager, self.tomb_head)
        } else {
            segdb_pst::tombs::destroy(pager, self.tomb_head)
        }
    }

    /// Stored segment count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Answer a VS query.
    pub fn query(&self, pager: &Pager, q: &VerticalQuery) -> Result<(Vec<Segment>, QueryTrace)> {
        let mut out = Vec::new();
        let trace = self.query_sink(pager, q, &mut out)?;
        Ok((out, trace))
    }

    /// Streaming form of [`TwoLevelInterval::query`]: hits push into
    /// `sink` in traversal order (per level: C_j, the boundary PSTs,
    /// then the G runs). A `Break` stops the walk where it stands. A
    /// count-only sink (and no live tombstones) flips the structure into
    /// count mode: C_j answers from the interval set's stored counts and
    /// each G run is measured by two B⁺-tree rank descents over the
    /// stored subtree counts — the run's pages are never read.
    pub fn query_sink(
        &self,
        pager: &Pager,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let mut counting = CountingSink::new(sink);
        let mut trace = if self.tomb_count == 0 {
            self.walk_query(pager, q, &mut counting)?
        } else if !counting.want_segments() && self.tombs_are_segments {
            // Count-shaped sink: keep the count-from-headers fast paths
            // on. The walk counts every *stored* segment (tombstoned
            // included); the tombstone chain carries full geometry, so
            // the overlap count of the lazily-deleted set is computed
            // directly and subtracted — no materialization.
            let mut stored = segdb_geom::CountSink::new();
            let mut inner = CountingSink::new(&mut stored);
            let trace = self.walk_query(pager, q, &mut inner)?;
            let mut tomb_hits = 0u64;
            chain::scan(pager, self.tomb_head, |s| {
                if q.hits(&s) {
                    tomb_hits += 1;
                }
            })?;
            let net = stored.count.saturating_sub(tomb_hits);
            let _ = counting.report_count(net);
            counting.hits = net;
            trace
        } else {
            // Segment-shaped sink (or a legacy id-format chain): the
            // tombstones must be filtered inline, and the filter forces
            // want_segments = true, so count fast paths stay off.
            let tombs = self.tomb_ids(pager)?.into_iter().collect();
            let mut filter = TombFilterSink {
                inner: &mut counting,
                tombs,
            };
            self.walk_query(pager, q, &mut filter)?
        };
        trace.hits = counting.hits.min(u32::MAX as u64) as u32;
        trace.io = scope.finish();
        Ok(trace)
    }

    fn walk_query(
        &self,
        pager: &Pager,
        q: &VerticalQuery,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryTrace> {
        let mut trace = QueryTrace::default();
        let mut sink = FusedSink::new(sink);
        let (x0, lo, hi) = (q.x(), q.lo(), q.hi());
        let mut page = self.root;
        while page != NULL_PAGE && !sink.broke() {
            obs_emit(
                EventKind::FirstLevelVisit,
                u64::from(page),
                trace.first_level_nodes as u64,
            );
            trace.first_level_nodes += 1;
            match read_node(pager, page)? {
                Node::Leaf { head, .. } => {
                    let _ = chain::scan_ctl(pager, head, |s| {
                        if q.hits(&s) {
                            sink.report(&s)
                        } else {
                            ControlFlow::Continue(())
                        }
                    })?;
                    break;
                }
                Node::Internal(n) => {
                    let k = n.boundaries.len();
                    let j = n.boundaries.partition_point(|&b| b < x0);
                    let boundary_hit = j < k && n.boundaries[j] == x0;
                    if boundary_hit {
                        // C_j: on-line verticals.
                        if !set_is_absent(&n.c[j]) {
                            let c =
                                IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c[j])?;
                            obs_emit(EventKind::SecondLevelProbe, probe::C_SET, 0);
                            trace.second_level_probes += 1;
                            if !sink.want_segments() {
                                let cnt = c.overlap_count(pager, lo, hi)?;
                                let _ = sink.report_count(cnt);
                            } else {
                                let mut bad = false;
                                let _ = c.overlap_ctl(
                                    pager,
                                    lo,
                                    hi,
                                    &mut |iv| match Segment::new(iv.id, (x0, iv.lo), (x0, iv.hi)) {
                                        Ok(s) => sink.report(&s),
                                        Err(_) => {
                                            bad = true;
                                            ControlFlow::Break(())
                                        }
                                    },
                                )?;
                                if bad {
                                    return Err(PagerError::Corrupt("bad C_i interval"));
                                }
                            }
                            if sink.broke() {
                                break;
                            }
                        }
                        // L_j: every segment whose first crossed boundary
                        // is s_j meets the query line at its base point.
                        let l =
                            Pst::attach(pager, n.boundaries[j], Side::Left, self.cfg.pst, n.l[j])?;
                        obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                        l.query_sink(pager, x0, lo, hi, &mut sink)?;
                        trace.second_level_probes += 1;
                        if sink.broke() {
                            break;
                        }
                        // Long fragments spanning slab j (f < j ≤ l).
                        self.g_query(pager, &n, j, x0, lo, hi, &mut sink, &mut trace)?;
                        break;
                    }
                    // Strictly inside slab j: R_{j−1}, L_j, G, descend.
                    if j >= 1 {
                        let r = Pst::attach(
                            pager,
                            n.boundaries[j - 1],
                            Side::Right,
                            self.cfg.pst,
                            n.r[j - 1],
                        )?;
                        obs_emit(EventKind::SecondLevelProbe, probe::R_PST, 0);
                        r.query_sink(pager, x0, lo, hi, &mut sink)?;
                        trace.second_level_probes += 1;
                        if sink.broke() {
                            break;
                        }
                    }
                    if j < k {
                        let l =
                            Pst::attach(pager, n.boundaries[j], Side::Left, self.cfg.pst, n.l[j])?;
                        obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                        l.query_sink(pager, x0, lo, hi, &mut sink)?;
                        trace.second_level_probes += 1;
                        if sink.broke() {
                            break;
                        }
                    }
                    self.g_query(pager, &n, j, x0, lo, hi, &mut sink, &mut trace)?;
                    page = n.children[j];
                }
            }
        }
        Ok(trace)
    }

    /// Batched form of [`TwoLevelInterval::query_sink`]: the batch
    /// descends the first level together (each node page read once per
    /// batch), boundary PSTs are walked once for every slot probing them
    /// (see [`Pst::query_batch_sink`]), and `C_j` sets are attached once
    /// per node. `G` runs stay per-slot (their anchor depends on each
    /// query's ordinate window) but still reuse the shared node read.
    /// Live tombstones are filtered inline per delivery, which also
    /// turns the count-from-headers fast paths off — exactly the
    /// sequential path's semantics, reached without its count
    /// arithmetic. Per-slot `Break` retires only that slot.
    pub fn query_batch_sink(&self, pager: &Pager, multi: &mut MultiSink<'_>) -> Result<QueryTrace> {
        let scope = StatScope::begin(pager);
        let tombs: std::collections::HashSet<u64> = if self.tomb_count > 0 {
            self.tomb_ids(pager)?.into_iter().collect()
        } else {
            Default::default()
        };
        let mut trace = QueryTrace::default();
        let mut frontier: Vec<(PageId, Vec<usize>)> = if self.root == NULL_PAGE {
            Vec::new()
        } else {
            vec![(self.root, (0..multi.len()).collect())]
        };
        while !frontier.is_empty() {
            let mut next: Vec<(PageId, Vec<usize>)> = Vec::new();
            for (page, group) in frontier.drain(..) {
                let group: Vec<usize> = group.into_iter().filter(|&i| multi.is_active(i)).collect();
                if group.is_empty() {
                    continue;
                }
                obs_emit(
                    EventKind::FirstLevelVisit,
                    u64::from(page),
                    trace.first_level_nodes as u64,
                );
                trace.first_level_nodes += 1;
                match read_node(pager, page)? {
                    Node::Leaf { head, .. } => {
                        let _ = chain::scan_ctl(pager, head, |s| {
                            if !tombs.contains(&s.id) {
                                for &i in &group {
                                    if multi.is_active(i) && multi.query(i).hits(&s) {
                                        let _ = multi.report(i, &s);
                                    }
                                }
                            }
                            if group.iter().any(|&i| multi.is_active(i)) {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        })?;
                    }
                    Node::Internal(n) => {
                        let k = n.boundaries.len();
                        // Classify each slot: boundary-exact stop here,
                        // in-slab slots probe and descend.
                        let mut c_groups: std::collections::BTreeMap<usize, Vec<usize>> =
                            Default::default();
                        let mut lqs: std::collections::BTreeMap<usize, Vec<segdb_pst::BatchQuery>> =
                            Default::default();
                        let mut rqs: std::collections::BTreeMap<usize, Vec<segdb_pst::BatchQuery>> =
                            Default::default();
                        let mut g_slots: Vec<(usize, usize)> = Vec::new();
                        let mut kids: std::collections::BTreeMap<usize, Vec<usize>> =
                            Default::default();
                        for &i in &group {
                            let q = *multi.query(i);
                            let (x0, lo, hi) = (q.x(), q.lo(), q.hi());
                            let j = n.boundaries.partition_point(|&b| b < x0);
                            let bq = segdb_pst::BatchQuery {
                                qx: x0,
                                lo,
                                hi,
                                tag: i,
                            };
                            if j < k && n.boundaries[j] == x0 {
                                c_groups.entry(j).or_default().push(i);
                                lqs.entry(j).or_default().push(bq);
                            } else {
                                if j >= 1 {
                                    rqs.entry(j - 1).or_default().push(bq);
                                }
                                if j < k {
                                    lqs.entry(j).or_default().push(bq);
                                }
                                kids.entry(j).or_default().push(i);
                            }
                            g_slots.push((i, j));
                        }
                        // C_j: on-line verticals, set attached once per j.
                        for (&j, qis) in &c_groups {
                            if set_is_absent(&n.c[j]) {
                                continue;
                            }
                            let c =
                                IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c[j])?;
                            obs_emit(EventKind::SecondLevelProbe, probe::C_SET, 0);
                            trace.second_level_probes += 1;
                            let x0 = n.boundaries[j];
                            for &i in qis {
                                if !multi.is_active(i) {
                                    continue;
                                }
                                let q = *multi.query(i);
                                let (lo, hi) = (q.lo(), q.hi());
                                if tombs.is_empty() && !multi.want_segments(i) {
                                    let cnt = c.overlap_count(pager, lo, hi)?;
                                    let _ = multi.report_count(i, cnt);
                                } else {
                                    let mut bad = false;
                                    let _ = c.overlap_ctl(pager, lo, hi, &mut |iv| {
                                        if tombs.contains(&iv.id) {
                                            return ControlFlow::Continue(());
                                        }
                                        match Segment::new(iv.id, (x0, iv.lo), (x0, iv.hi)) {
                                            Ok(s) => multi.report(i, &s),
                                            Err(_) => {
                                                bad = true;
                                                ControlFlow::Break(())
                                            }
                                        }
                                    })?;
                                    if bad {
                                        return Err(PagerError::Corrupt("bad C_i interval"));
                                    }
                                }
                            }
                        }
                        // Boundary PSTs, one shared walk per structure.
                        // R_{j−1} before L_j, matching the sequential
                        // per-query order.
                        for (&jj, qs) in &rqs {
                            let r = Pst::attach(
                                pager,
                                n.boundaries[jj],
                                Side::Right,
                                self.cfg.pst,
                                n.r[jj],
                            )?;
                            obs_emit(EventKind::SecondLevelProbe, probe::R_PST, 0);
                            trace.second_level_probes += 1;
                            r.query_batch_sink(pager, qs, &mut |i, s| {
                                if tombs.contains(&s.id) {
                                    ControlFlow::Continue(())
                                } else {
                                    multi.report(i, s)
                                }
                            })?;
                        }
                        for (&jj, qs) in &lqs {
                            let l = Pst::attach(
                                pager,
                                n.boundaries[jj],
                                Side::Left,
                                self.cfg.pst,
                                n.l[jj],
                            )?;
                            obs_emit(EventKind::SecondLevelProbe, probe::L_PST, 0);
                            trace.second_level_probes += 1;
                            l.query_batch_sink(pager, qs, &mut |i, s| {
                                if tombs.contains(&s.id) {
                                    ControlFlow::Continue(())
                                } else {
                                    multi.report(i, s)
                                }
                            })?;
                        }
                        // G runs: per slot (each run's anchor depends on
                        // the slot's own ordinate window).
                        for &(i, j) in &g_slots {
                            if !multi.is_active(i) {
                                continue;
                            }
                            let q = *multi.query(i);
                            let (x0, lo, hi) = (q.x(), q.lo(), q.hi());
                            if tombs.is_empty() {
                                let mut fused = FusedSink::new(multi.sink_mut(i));
                                self.g_query(pager, &n, j, x0, lo, hi, &mut fused, &mut trace)?;
                                if fused.broke() {
                                    multi.retire(i);
                                }
                            } else {
                                let mut filt = TombFilterSink {
                                    inner: multi.sink_mut(i),
                                    tombs: tombs.clone(),
                                };
                                let mut fused = FusedSink::new(&mut filt);
                                self.g_query(pager, &n, j, x0, lo, hi, &mut fused, &mut trace)?;
                                if fused.broke() {
                                    multi.retire(i);
                                }
                            }
                        }
                        // Descend: in-slab slots still active drop into
                        // their slab child.
                        for (&j, qis) in &kids {
                            let live: Vec<usize> = qis
                                .iter()
                                .copied()
                                .filter(|&i| multi.is_active(i))
                                .collect();
                            if n.children[j] != NULL_PAGE && !live.is_empty() {
                                next.push((n.children[j], live));
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        trace.io = scope.finish();
        Ok(trace)
    }

    /// Pages of the first-level slab nodes, breadth-first from the
    /// root, at most `budget` — the levels every query descends through
    /// and therefore worth pinning resident (see [`Pager::pin_pages`]).
    pub fn hot_pages(&self, pager: &Pager, budget: usize) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut frontier = std::collections::VecDeque::new();
        if self.root != NULL_PAGE {
            frontier.push_back(self.root);
        }
        while let Some(page) = frontier.pop_front() {
            if out.len() >= budget {
                break;
            }
            if let Node::Internal(n) = read_node(pager, page)? {
                out.push(page);
                for &c in &n.children {
                    if c != NULL_PAGE {
                        frontier.push_back(c);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Insert a segment (semi-dynamic, Theorem 2(iii)).
    pub fn insert(&mut self, pager: &Pager, seg: Segment) -> Result<()> {
        if self.tomb_count > 0 {
            // Re-inserting a tombstoned id would stay hidden: purge first.
            let tombs = self.tomb_ids(pager)?;
            if tombs.contains(&seg.id) {
                self.rebuild_live(pager)?;
            }
        }
        self.len += 1;
        if self.root == NULL_PAGE {
            self.root = self.leaf_from(pager, &[seg])?;
            return Ok(());
        }
        let mut path: Vec<PageId> = Vec::new();
        let mut page = self.root;
        loop {
            match read_node(pager, page)? {
                Node::Leaf { head, count } => {
                    let new_head = chain::push(pager, head, &seg)?;
                    let count = count + 1;
                    if count as usize > 2 * chain::cap(pager.page_size()) {
                        let segs = chain::collect(pager, new_head)?;
                        chain::destroy(pager, new_head)?;
                        self.build_rec_at(pager, segs, page)?;
                    } else {
                        write_node(
                            pager,
                            page,
                            &Node::Leaf {
                                head: new_head,
                                count,
                            },
                        )?;
                    }
                    break;
                }
                Node::Internal(mut n) => {
                    n.total += 1;
                    path.push(page);
                    match place(&n.boundaries, &seg) {
                        Placement::OnLine(i) => {
                            let mut c = if set_is_absent(&n.c[i]) {
                                IntervalSet::new(pager, IntervalTreeConfig::default())?
                            } else {
                                IntervalSet::attach(pager, IntervalTreeConfig::default(), n.c[i])?
                            };
                            c.insert(pager, Interval::new(seg.id, seg.a.y, seg.b.y))?;
                            n.c[i] = c.state();
                            write_node(pager, page, &Node::Internal(n))?;
                            break;
                        }
                        Placement::Crossing { f, l } => {
                            let mut lp = Pst::attach(
                                pager,
                                n.boundaries[f],
                                Side::Left,
                                self.cfg.pst,
                                n.l[f],
                            )?;
                            lp.insert(pager, seg)?;
                            n.l[f] = lp.state();
                            let mut rp = Pst::attach(
                                pager,
                                n.boundaries[l],
                                Side::Right,
                                self.cfg.pst,
                                n.r[l],
                            )?;
                            rp.insert(pager, seg)?;
                            n.r[l] = rp.state();
                            if l > f {
                                self.g_insert(pager, &mut n, f + 1, l, seg)?;
                            }
                            write_node(pager, page, &Node::Internal(n))?;
                            break;
                        }
                        Placement::Child(j) => {
                            n.child_sizes[j] += 1;
                            if n.children[j] == NULL_PAGE {
                                n.children[j] = self.leaf_from(pager, &[seg])?;
                                write_node(pager, page, &Node::Internal(n))?;
                                break;
                            }
                            let next = n.children[j];
                            write_node(pager, page, &Node::Internal(n))?;
                            page = next;
                        }
                    }
                }
            }
        }
        self.rebalance_path(pager, &path)
    }

    /// Structural summary — how the §4 construction split the segments
    /// (used by the paper-figure fidelity tests and examples).
    pub fn describe(&self, pager: &Pager) -> Result<GStats> {
        let mut st = GStats::default();
        if self.root != NULL_PAGE {
            self.describe_rec(pager, self.root, 1, &mut st)?;
        }
        Ok(st)
    }

    fn describe_rec(&self, pager: &Pager, page: PageId, depth: u32, st: &mut GStats) -> Result<()> {
        st.height = st.height.max(depth);
        match read_node(pager, page)? {
            Node::Leaf { count, .. } => {
                st.leaves += 1;
                st.in_leaves += count;
            }
            Node::Internal(n) => {
                st.internal_nodes += 1;
                st.boundaries += n.boundaries.len() as u64;
                for state in &n.c {
                    if !set_is_absent(state) {
                        let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), *state)?;
                        st.on_line += c.len();
                    }
                }
                for (i, state) in n.l.iter().enumerate() {
                    let l = Pst::attach(pager, n.boundaries[i], Side::Left, self.cfg.pst, *state)?;
                    st.crossing += l.len();
                }
                st.long_fragment_records += n.g_total;
                st.g_lists_nonempty += n.g.iter().filter(|s| !list_is_absent(s)).count() as u64;
                // Bridge pointer density on each parent list: the
                // measurable form of the d-property.
                let k = n.boundaries.len();
                let skel = skeleton(k);
                for (gi, state) in n.g.iter().enumerate() {
                    if list_is_absent(state) || skel[gi].is_leaf() {
                        continue;
                    }
                    let line = n.boundaries[skel[gi].a - 1];
                    let tree = BPlusTree::attach(pager, MsOrder { line }, *state)?;
                    for (child, left) in [(skel[gi].left, true), (skel[gi].right, false)] {
                        if list_is_absent(&n.g[child]) {
                            continue;
                        }
                        let mut gap = 0u64;
                        for rec in tree.scan_all(pager)? {
                            let p = if left {
                                rec.bridge_left
                            } else {
                                rec.bridge_right
                            };
                            if p != NULL_PAGE {
                                st.max_bridge_gap = st.max_bridge_gap.max(gap);
                                gap = 0;
                                st.bridge_pointers += 1;
                            } else {
                                gap += 1;
                            }
                        }
                        st.max_bridge_gap = st.max_bridge_gap.max(gap);
                    }
                }
                for &c in &n.children {
                    if c != NULL_PAGE {
                        self.describe_rec(pager, c, depth + 1, st)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Delete a stored segment — an extension beyond the paper's
    /// semi-dynamic Theorem 2, implemented with lazy tombstones: the id
    /// is filtered from every answer and the whole structure is rebuilt
    /// once tombstones reach the live count (amortized `O((n/B)·log)` per
    /// the standard argument). Returns whether the segment was present.
    pub fn remove(&mut self, pager: &Pager, seg: &Segment) -> Result<bool> {
        // Membership probe: a stored segment always appears on the line
        // query through its left endpoint.
        let (hits, _) = self.query(pager, &VerticalQuery::Line { x: seg.a.x })?;
        if !hits.iter().any(|h| h == seg) {
            return Ok(false);
        }
        if !self.tombs_are_segments {
            // Legacy id-format chain: fold it away once (rebuild drops
            // every tombstone) and switch to the segment format.
            self.rebuild_live(pager)?;
        }
        self.tomb_head = chain::push(pager, self.tomb_head, seg)?;
        self.tomb_count += 1;
        self.len -= 1;
        if self.tomb_count >= self.len.max(1) {
            self.rebuild_live(pager)?;
        }
        Ok(true)
    }

    /// Rebuild from the live set, dropping tombstones.
    fn rebuild_live(&mut self, pager: &Pager) -> Result<()> {
        let live = self.scan_all(pager)?;
        if self.root != NULL_PAGE {
            self.destroy_rec(pager, self.root)?;
        }
        self.destroy_tombs(pager)?;
        self.tomb_head = NULL_PAGE;
        self.tomb_count = 0;
        self.tombs_are_segments = true;
        self.len = live.len() as u64;
        self.root = self.build_rec(pager, live)?;
        Ok(())
    }

    /// Every stored (live) segment.
    pub fn scan_all(&self, pager: &Pager) -> Result<Vec<Segment>> {
        let mut out = Vec::with_capacity(self.len as usize);
        if self.root != NULL_PAGE {
            self.collect_rec(pager, self.root, &mut out)?;
        }
        if self.tomb_count > 0 {
            let tombs: std::collections::HashSet<u64> = self.tomb_ids(pager)?.into_iter().collect();
            out.retain(|s| !tombs.contains(&s.id));
        }
        Ok(out)
    }

    /// Free every page.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        if self.root != NULL_PAGE {
            self.destroy_rec(pager, self.root)?;
        }
        self.destroy_tombs(pager)?;
        Ok(())
    }

    /// Deep validation.
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        if self.root == NULL_PAGE {
            if self.len != 0 {
                return Err(PagerError::Corrupt("interval2l empty root, nonzero len"));
            }
            return Ok(());
        }
        let total = self.validate_rec(pager, self.root, None, None)?;
        if total != self.len + self.tomb_count {
            return Err(PagerError::Corrupt("interval2l len mismatch"));
        }
        let tombs = self.tomb_ids(pager)?;
        if tombs.len() as u64 != self.tomb_count {
            return Err(PagerError::Corrupt("interval2l tombstone count stale"));
        }
        Ok(())
    }

    // ---- queries over G ------------------------------------------------

    /// Report long fragments intersected at `x0` (in slab or boundary
    /// position `j`), walking the G path with bridge navigation. With a
    /// count-only sink each run is measured by rank descents over the
    /// stored subtree counts instead of being read; a fully-open query
    /// (`lo` and `hi` both `None`) costs zero reads — the run is the
    /// whole list and its length sits in the serialized tree state.
    #[allow(clippy::too_many_arguments)]
    fn g_query(
        &self,
        pager: &Pager,
        n: &Internal,
        j: usize,
        x0: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        sink: &mut FusedSink<'_>,
        trace: &mut QueryTrace,
    ) -> Result<()> {
        let k = n.boundaries.len();
        if k < 2 || j < 1 || j > k - 1 {
            return Ok(());
        }
        let skel = skeleton(k);
        let path = g_path(&skel, j);
        let counting = !sink.want_segments();
        // Bridge pointer carried into the next level, if usable.
        let mut carried: Option<PageId> = None;
        for &gi in &path {
            if sink.broke() {
                return Ok(());
            }
            let state = n.g[gi];
            let next_is_left = !skel[gi].is_leaf() && j <= skel[gi].mid();
            if list_is_absent(&state) {
                carried = None;
                continue;
            }
            obs_emit(EventKind::SecondLevelProbe, probe::G_LIST, gi as u64);
            trace.second_level_probes += 1;
            let line = n.boundaries[skel[gi].a - 1];
            if counting {
                let cnt = if lo.is_none() && hi.is_none() {
                    state.len
                } else {
                    let tree = BPlusTree::attach(pager, MsOrder { line }, state)?;
                    match (lo, hi) {
                        (Some(lo_v), Some(hi_v)) => tree.count_range(
                            pager,
                            &run_start_probe(x0, lo_v),
                            &run_end_probe(x0, hi_v),
                        )?,
                        (Some(lo_v), None) => tree.count_from(pager, &run_start_probe(x0, lo_v))?,
                        (None, Some(hi_v)) => tree.rank(pager, &run_end_probe(x0, hi_v))?,
                        (None, None) => unreachable!(),
                    }
                };
                let _ = sink.report_count(cnt);
                carried = None;
                continue;
            }
            let tree = BPlusTree::attach(pager, MsOrder { line }, state)?;
            // Position at the first record with y(x0) ≥ lo.
            let cur = match (carried, lo) {
                (Some(leaf), Some(lo_v)) if !n.bridges_dirty => {
                    obs_emit(EventKind::BridgeJump, u64::from(leaf), 0);
                    trace.bridge_jumps += 1;
                    match self.anchor_by_jump(pager, leaf, x0, lo_v)? {
                        Some(cur) => cur,
                        None => self.anchor_by_descent(pager, &tree, x0, lo)?,
                    }
                }
                _ => self.anchor_by_descent(pager, &tree, x0, lo)?,
            };
            let mut cur = cur;
            // Nearest bridge strictly before the run start (its child
            // counterpart precedes the child's run start).
            carried = if self.cfg.bridges && !n.bridges_dirty && !skel[gi].is_leaf() {
                let (records, idx) = cur.buffered();
                records[..idx.min(records.len())]
                    .iter()
                    .rev()
                    .map(|r| {
                        if next_is_left {
                            r.bridge_left
                        } else {
                            r.bridge_right
                        }
                    })
                    .find(|&p| p != NULL_PAGE)
            } else {
                None
            };
            // Report the run.
            let _ = cur.for_each_while_ctl(
                pager,
                |r| hi.is_none_or(|h| y_at_x_cmp(&r.seg, x0, h) != Ordering::Greater),
                |r| sink.report(&r.seg),
            )?;
        }
        Ok(())
    }

    /// Full B⁺-tree descent to the run start (the root of G always pays
    /// this; lower levels pay it only when bridges are unusable).
    fn anchor_by_descent(
        &self,
        pager: &Pager,
        tree: &BPlusTree<MsRec, MsOrder>,
        x0: i64,
        lo: Option<i64>,
    ) -> Result<Cursor<MsRec>> {
        match lo {
            None => tree.cursor_first(pager),
            Some(lo_v) => tree.lower_bound(pager, &move |r: &MsRec| {
                // Monotone predicate along the list order.
                if y_at_x_cmp(&r.seg, x0, lo_v) == Ordering::Less {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }),
        }
    }

    /// Land on a bridged child leaf and scan forward to the run start.
    /// Returns `None` (→ fallback) if the scan exceeds the cap — a stale
    /// pointer or a density violation, impossible right after a bridge
    /// rebuild but guarded against defensively.
    fn anchor_by_jump(
        &self,
        pager: &Pager,
        leaf: PageId,
        x0: i64,
        lo: i64,
    ) -> Result<Option<Cursor<MsRec>>> {
        let mut cur = match Cursor::<MsRec>::jump(pager, leaf) {
            Ok(c) => c,
            Err(_) => return Ok(None), // stale pointer
        };
        let mut scanned = 0usize;
        while let Some(r) = cur.peek() {
            if y_at_x_cmp(&r.seg, x0, lo) != Ordering::Less {
                return Ok(Some(cur));
            }
            scanned += 1;
            if scanned > JUMP_SCAN_CAP {
                return Ok(None);
            }
            cur.next(pager)?;
        }
        Ok(Some(cur)) // exhausted: empty run
    }

    // ---- G maintenance -------------------------------------------------

    /// Insert a long fragment spanning slabs `[fa, fb]` into G,
    /// invalidating bridges and scheduling their amortized rebuild.
    fn g_insert(
        &self,
        pager: &Pager,
        n: &mut Internal,
        fa: usize,
        fb: usize,
        seg: Segment,
    ) -> Result<()> {
        let k = n.boundaries.len();
        let skel = skeleton(k);
        let mut nodes = Vec::new();
        allocation(&skel, fa, fb, &mut nodes);
        for gi in nodes {
            let line = n.boundaries[skel[gi].a - 1];
            let mut tree = if list_is_absent(&n.g[gi]) {
                BPlusTree::create(pager, MsOrder { line })?
            } else {
                BPlusTree::attach(pager, MsOrder { line }, n.g[gi])?
            };
            tree.insert(pager, MsRec::real(seg))?;
            n.g[gi] = tree.state();
            n.g_total += 1;
        }
        if self.cfg.bridges {
            n.bridges_dirty = true;
            n.g_inserts += 1;
            // Amortized: rebuilding costs O(g_total · log); charge it to
            // Θ(g_total / (d+1)) inserts.
            let threshold = (n.g_total / (self.cfg.bridge_d as u64 + 2)).max(8) as u32;
            if n.g_inserts >= threshold {
                self.rebuild_bridges(pager, n)?;
            }
        }
        Ok(())
    }

    /// Strip augmented elements, re-select bridges from the real lists,
    /// rebuild the B⁺-trees and materialize pointers.
    fn rebuild_bridges(&self, pager: &Pager, n: &mut Internal) -> Result<()> {
        let k = n.boundaries.len();
        let skel = skeleton(k);
        // 1. Collect real fragments per skeleton node.
        let mut real: Vec<Vec<MsRec>> = vec![Vec::new(); skel.len()];
        for gi in 0..n.g.len() {
            let state = n.g[gi];
            if list_is_absent(&state) {
                continue;
            }
            let line = n.boundaries[skel[gi].a - 1];
            let tree = BPlusTree::attach(pager, MsOrder { line }, state)?;
            real[gi] = tree
                .scan_all(pager)?
                .into_iter()
                .map(|r| MsRec::real(r.seg)) // drop stale bridge pointers
                .collect();
            tree.destroy(pager)?;
            n.g[gi] = absent_list();
        }
        build_g_lists(pager, self.cfg, &n.boundaries, &skel, real, &mut n.g)?;
        n.bridges_dirty = false;
        n.g_inserts = 0;
        Ok(())
    }

    // ---- build / teardown ----------------------------------------------

    fn leaf_from(&self, pager: &Pager, segs: &[Segment]) -> Result<PageId> {
        let page = pager.allocate()?;
        let head = chain::write(pager, segs)?;
        write_node(
            pager,
            page,
            &Node::Leaf {
                head,
                count: segs.len() as u64,
            },
        )?;
        Ok(page)
    }

    fn build_rec(&self, pager: &Pager, segs: Vec<Segment>) -> Result<PageId> {
        let page = pager.allocate()?;
        self.build_rec_at(pager, segs, page)?;
        Ok(page)
    }

    fn build_rec_at(&self, pager: &Pager, segs: Vec<Segment>, page: PageId) -> Result<()> {
        if segs.len() <= chain::cap(pager.page_size()) {
            let head = chain::write(pager, &segs)?;
            return write_node(
                pager,
                page,
                &Node::Leaf {
                    head,
                    count: segs.len() as u64,
                },
            );
        }
        // Boundaries: endpoint quantiles (like the external interval
        // tree's slab selection).
        let mut xs: Vec<i64> = segs.iter().flat_map(|s| [s.a.x, s.b.x]).collect();
        xs.sort_unstable();
        let want = self.k_max.min(xs.len());
        let mut boundaries: Vec<i64> = (1..=want)
            .map(|i| xs[(i * xs.len() / (want + 1)).min(xs.len() - 1)])
            .collect();
        boundaries.dedup();
        let k = boundaries.len();
        let total = segs.len() as u64;

        let mut on_line: Vec<Vec<Interval>> = vec![Vec::new(); k];
        let mut lefts: Vec<Vec<Segment>> = vec![Vec::new(); k];
        let mut rights: Vec<Vec<Segment>> = vec![Vec::new(); k];
        let skel = skeleton(k);
        let mut g_real: Vec<Vec<MsRec>> = vec![Vec::new(); skel.len()];
        let mut kids: Vec<Vec<Segment>> = vec![Vec::new(); k + 1];
        let mut g_total = 0u64;
        for s in segs {
            match place(&boundaries, &s) {
                Placement::OnLine(i) => on_line[i].push(Interval::new(s.id, s.a.y, s.b.y)),
                Placement::Crossing { f, l } => {
                    lefts[f].push(s);
                    rights[l].push(s);
                    if l > f {
                        let mut nodes = Vec::new();
                        allocation(&skel, f + 1, l, &mut nodes);
                        for gi in nodes {
                            g_real[gi].push(MsRec::real(s));
                            g_total += 1;
                        }
                    }
                }
                Placement::Child(j) => kids[j].push(s),
            }
        }

        let mut c_states = Vec::with_capacity(k);
        let mut l_states = Vec::with_capacity(k);
        let mut r_states = Vec::with_capacity(k);
        for i in 0..k {
            c_states.push(if on_line[i].is_empty() {
                absent_set()
            } else {
                IntervalSet::build(
                    pager,
                    IntervalTreeConfig::default(),
                    std::mem::take(&mut on_line[i]),
                )?
                .state()
            });
            l_states.push(
                Pst::build(
                    pager,
                    boundaries[i],
                    Side::Left,
                    self.cfg.pst,
                    std::mem::take(&mut lefts[i]),
                )?
                .state(),
            );
            r_states.push(
                Pst::build(
                    pager,
                    boundaries[i],
                    Side::Right,
                    self.cfg.pst,
                    std::mem::take(&mut rights[i]),
                )?
                .state(),
            );
        }
        let mut g_states = vec![absent_list(); skel.len()];
        build_g_lists(pager, self.cfg, &boundaries, &skel, g_real, &mut g_states)?;

        let mut children = Vec::with_capacity(k + 1);
        let mut child_sizes = Vec::with_capacity(k + 1);
        for kid in kids {
            child_sizes.push(kid.len() as u64);
            children.push(if kid.is_empty() {
                NULL_PAGE
            } else {
                self.build_rec(pager, kid)?
            });
        }
        write_node(
            pager,
            page,
            &Node::Internal(Box::new(Internal {
                boundaries,
                children,
                child_sizes,
                total,
                c: c_states,
                l: l_states,
                r: r_states,
                g: g_states,
                g_total,
                bridges_dirty: false,
                g_inserts: 0,
            })),
        )
    }

    fn collect_rec(&self, pager: &Pager, page: PageId, out: &mut Vec<Segment>) -> Result<()> {
        match read_node(pager, page)? {
            Node::Leaf { head, .. } => chain::scan(pager, head, |s| out.push(s))?,
            Node::Internal(n) => {
                for (i, state) in n.c.iter().enumerate() {
                    if set_is_absent(state) {
                        continue;
                    }
                    let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), *state)?;
                    for iv in c.scan_all(pager)? {
                        out.push(
                            Segment::new(iv.id, (n.boundaries[i], iv.lo), (n.boundaries[i], iv.hi))
                                .map_err(|_| PagerError::Corrupt("bad C_i interval"))?,
                        );
                    }
                }
                // Each crossing segment appears in exactly one L_f.
                for (i, state) in n.l.iter().enumerate() {
                    let l = Pst::attach(pager, n.boundaries[i], Side::Left, self.cfg.pst, *state)?;
                    out.extend(l.scan_all(pager)?);
                }
                for &c in &n.children {
                    if c != NULL_PAGE {
                        self.collect_rec(pager, c, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn destroy_rec(&self, pager: &Pager, page: PageId) -> Result<()> {
        self.destroy_children_of(pager, page)?;
        pager.free(page)
    }

    fn destroy_children_of(&self, pager: &Pager, page: PageId) -> Result<()> {
        match read_node(pager, page)? {
            Node::Leaf { head, .. } => chain::destroy(pager, head)?,
            Node::Internal(n) => {
                let k = n.boundaries.len();
                let skel = skeleton(k);
                for (i, state) in n.c.iter().enumerate() {
                    let _ = i;
                    if !set_is_absent(state) {
                        IntervalSet::attach(pager, IntervalTreeConfig::default(), *state)?
                            .destroy(pager)?;
                    }
                }
                for (i, state) in n.l.iter().enumerate() {
                    Pst::attach(pager, n.boundaries[i], Side::Left, self.cfg.pst, *state)?
                        .destroy(pager)?;
                }
                for (i, state) in n.r.iter().enumerate() {
                    Pst::attach(pager, n.boundaries[i], Side::Right, self.cfg.pst, *state)?
                        .destroy(pager)?;
                }
                for (gi, state) in n.g.iter().enumerate() {
                    if !list_is_absent(state) {
                        let line = n.boundaries[skel[gi].a - 1];
                        BPlusTree::<MsRec, _>::attach(pager, MsOrder { line }, *state)?
                            .destroy(pager)?;
                    }
                }
                for &c in &n.children {
                    if c != NULL_PAGE {
                        self.destroy_rec(pager, c)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn rebalance_path(&mut self, pager: &Pager, path: &[PageId]) -> Result<()> {
        for &page in path {
            if let Node::Internal(n) = read_node(pager, page)? {
                if n.total < self.cfg.rebuild_min {
                    break;
                }
                let threshold = n.total * 3 / 4;
                if n.child_sizes.iter().any(|&s| s > threshold) {
                    let mut segs = Vec::with_capacity(n.total as usize);
                    self.collect_rec(pager, page, &mut segs)?;
                    self.destroy_children_of(pager, page)?;
                    self.build_rec_at(pager, segs, page)?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        pager: &Pager,
        page: PageId,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Result<u64> {
        match read_node(pager, page)? {
            Node::Leaf { head, count } => {
                let mut m = 0u64;
                let mut ok = true;
                chain::scan(pager, head, |s| {
                    m += 1;
                    ok &= lo.is_none_or(|l| s.a.x > l) && hi.is_none_or(|h| s.b.x < h);
                })?;
                if !ok {
                    return Err(PagerError::Corrupt("leaf segment escapes slab"));
                }
                if m != count {
                    return Err(PagerError::Corrupt("leaf count stale"));
                }
                Ok(m)
            }
            Node::Internal(n) => {
                let k = n.boundaries.len();
                if k == 0 || !n.boundaries.windows(2).all(|w| w[0] < w[1]) {
                    return Err(PagerError::Corrupt("bad boundary set"));
                }
                if lo.is_some_and(|l| n.boundaries[0] <= l)
                    || hi.is_some_and(|h| n.boundaries[k - 1] >= h)
                {
                    return Err(PagerError::Corrupt("boundaries escape ancestor slab"));
                }
                let mut here = 0u64;
                for (i, state) in n.c.iter().enumerate() {
                    let _ = i;
                    if !set_is_absent(state) {
                        let c = IntervalSet::attach(pager, IntervalTreeConfig::default(), *state)?;
                        c.validate(pager)?;
                        here += c.len();
                    }
                }
                let mut crossing = 0u64;
                for i in 0..k {
                    let l = Pst::attach(pager, n.boundaries[i], Side::Left, self.cfg.pst, n.l[i])?;
                    l.validate(pager)?;
                    crossing += l.len();
                    let r = Pst::attach(pager, n.boundaries[i], Side::Right, self.cfg.pst, n.r[i])?;
                    r.validate(pager)?;
                }
                let rsum: u64 = (0..k)
                    .map(|i| {
                        Pst::attach(pager, n.boundaries[i], Side::Right, self.cfg.pst, n.r[i])
                            .map(|p| p.len())
                    })
                    .sum::<Result<u64>>()?;
                if crossing != rsum {
                    return Err(PagerError::Corrupt("L/R fragment counts disagree"));
                }
                here += crossing;
                // G lists: validate trees and fragment placement.
                let skel = skeleton(k);
                let mut g_real = 0u64;
                for (gi, state) in n.g.iter().enumerate() {
                    if list_is_absent(state) {
                        continue;
                    }
                    let line = n.boundaries[skel[gi].a - 1];
                    let tree = BPlusTree::attach(pager, MsOrder { line }, *state)?;
                    tree.validate(pager)?;
                    let (ga, gb) = (skel[gi].a, skel[gi].b);
                    for rec in tree.scan_all(pager)? {
                        // Every fragment spans the node's multislab.
                        if rec.seg.a.x > n.boundaries[ga - 1] || rec.seg.b.x < n.boundaries[gb] {
                            return Err(PagerError::Corrupt("G fragment does not span its node"));
                        }
                        g_real += 1;
                    }
                }
                if g_real != n.g_total {
                    return Err(PagerError::Corrupt("g_total stale"));
                }
                let mut below = 0u64;
                for (i, &c) in n.children.iter().enumerate() {
                    let clo = if i == 0 {
                        lo
                    } else {
                        Some(n.boundaries[i - 1])
                    };
                    let chi = if i == k { hi } else { Some(n.boundaries[i]) };
                    let sz = if c == NULL_PAGE {
                        0
                    } else {
                        self.validate_rec(pager, c, clo, chi)?
                    };
                    if sz != n.child_sizes[i] {
                        return Err(PagerError::Corrupt("child size stale"));
                    }
                    below += sz;
                }
                if here + below != n.total {
                    return Err(PagerError::Corrupt("interval2l total stale"));
                }
                Ok(n.total)
            }
        }
    }
}

/// What [`TwoLevelInterval::describe`] reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GStats {
    /// First-level internal (slab) nodes.
    pub internal_nodes: u64,
    /// First-level leaves.
    pub leaves: u64,
    /// Segments stored in leaves.
    pub in_leaves: u64,
    /// Tree height (levels).
    pub height: u32,
    /// Total boundaries across internal nodes.
    pub boundaries: u64,
    /// Segments lying on boundaries (Σ |Cᵢ|).
    pub on_line: u64,
    /// Segments crossing ≥ 1 boundary (Σ |L_f|).
    pub crossing: u64,
    /// Long-fragment records across all multislab lists (a segment can
    /// contribute `O(log₂ B)` records — its allocation nodes).
    pub long_fragment_records: u64,
    /// Non-empty multislab lists.
    pub g_lists_nonempty: u64,
    /// Bridge pointers materialized.
    pub bridge_pointers: u64,
    /// Longest run of parent-list elements without a bridge pointer —
    /// the measured d-property (must stay ≲ d+2 after a bridge build).
    pub max_bridge_gap: u64,
}

/// Probe placing a cursor at the run start: sorts before every record
/// with `y(x0) ≥ lo` (the monotone predicate of `anchor_by_descent`).
fn run_start_probe(x0: i64, lo: i64) -> impl Fn(&MsRec) -> Ordering {
    move |r: &MsRec| {
        if y_at_x_cmp(&r.seg, x0, lo) == Ordering::Less {
            Ordering::Greater
        } else {
            Ordering::Less
        }
    }
}

/// Probe placing a cursor just past the run end: sorts after every
/// record with `y(x0) ≤ hi`.
fn run_end_probe(x0: i64, hi: i64) -> impl Fn(&MsRec) -> Ordering {
    move |r: &MsRec| {
        if y_at_x_cmp(&r.seg, x0, hi) == Ordering::Greater {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }
}

fn read_node(pager: &Pager, id: PageId) -> Result<Node> {
    pager.with_page(id, Node::decode)?
}

fn write_node(pager: &Pager, id: PageId, node: &Node) -> Result<()> {
    pager.overwrite_page(id, |buf| node.encode(buf))?
}

/// Build the final multislab B⁺-trees for a node's G, then materialize
/// fractional-cascading bridge pointers.
///
/// Bridge selection follows §4.3's `d`-property: per (parent, child)
/// pair, merge the two lists at the parent's split line and mark every
/// `(d+1)`-th merged element. Instead of inserting *augmented bridge
/// fragments* (whose cut geometry is not exactly comparable at arbitrary
/// query lines), the mark is materialized as a pointer on the **nearest
/// preceding real parent element** in merged order, aimed at the child
/// leaf that a downward position search for the marked element lands on.
/// Density is preserved (any `d+1` consecutive parent elements contain a
/// merged selection, so pointer gaps in the parent are ≤ `d+2`), and a
/// pointer always lands at or before the child counterpart's position,
/// which is what the forward-scan re-anchor in [`TwoLevelInterval::query`]
/// needs.
fn build_g_lists(
    pager: &Pager,
    cfg: Interval2LConfig,
    boundaries: &[i64],
    skel: &[GNode],
    mut real: Vec<Vec<MsRec>>,
    states: &mut [TreeState],
) -> Result<()> {
    // Sort geometrically and bulk-load the pure lists.
    for (gi, list) in real.iter_mut().enumerate() {
        if list.is_empty() {
            states[gi] = absent_list();
            continue;
        }
        let line = boundaries[skel[gi].a - 1];
        list.sort_by(|a, b| MsOrder::cmp_at(line, a, b));
        let tree = BPlusTree::bulk_load(pager, MsOrder { line }, list)?;
        states[gi] = tree.state();
    }
    if !cfg.bridges {
        return Ok(());
    }

    // Bridge pass.
    for (gi, node) in skel.iter().enumerate() {
        if node.is_leaf() || real[gi].is_empty() {
            continue;
        }
        let pline = boundaries[skel[gi].a - 1];
        let ptree = BPlusTree::attach(pager, MsOrder { line: pline }, states[gi])?;
        let mid_line = boundaries[node.mid()];
        for (child, is_left) in [(node.left, true), (node.right, false)] {
            if real[child].is_empty() {
                continue;
            }
            let cline = boundaries[skel[child].a - 1];
            let ctree = BPlusTree::attach(pager, MsOrder { line: cline }, states[child])?;
            // Merge-walk both real lists at the parent's split line.
            let (pl, cl) = (&real[gi], &real[child]);
            let (mut i, mut j) = (0usize, 0usize);
            let mut count = 0usize;
            let mut last_parent: Option<MsRec> = None;
            let mut pending: Option<(MsRec, MsRec)> = None; // (carrier, marked)
            while i < pl.len() || j < cl.len() {
                let take_parent = match (pl.get(i), cl.get(j)) {
                    (Some(a), Some(b)) => MsOrder::cmp_at(mid_line, a, b) != Ordering::Greater,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                let elem = if take_parent {
                    let e = pl[i];
                    i += 1;
                    last_parent = Some(e);
                    e
                } else {
                    let e = cl[j];
                    j += 1;
                    e
                };
                count += 1;
                if count.is_multiple_of(cfg.bridge_d + 1) {
                    if let Some(carrier) = last_parent {
                        // Earliest mark per carrier wins (it points
                        // furthest left in the child).
                        if pending
                            .as_ref()
                            .is_none_or(|(c, _)| c.seg.id != carrier.seg.id)
                        {
                            if let Some((c, m)) = pending.take() {
                                patch_bridge(pager, &ptree, &ctree, cline, c, m, is_left)?;
                            }
                            pending = Some((carrier, elem));
                        }
                    }
                }
            }
            if let Some((c, m)) = pending.take() {
                patch_bridge(pager, &ptree, &ctree, cline, c, m, is_left)?;
            }
        }
    }
    Ok(())
}

/// Point `carrier` (a real parent element) at the child leaf containing
/// the position of `marked`.
fn patch_bridge(
    pager: &Pager,
    ptree: &BPlusTree<MsRec, MsOrder>,
    ctree: &BPlusTree<MsRec, MsOrder>,
    cline: i64,
    carrier: MsRec,
    marked: MsRec,
    is_left: bool,
) -> Result<()> {
    let probe = move |r: &MsRec| MsOrder::cmp_at(cline, &marked, r);
    let leaf = ctree.leaf_page_of(pager, &probe)?;
    let patched = ptree.modify(pager, &carrier, |r| {
        if is_left {
            r.bridge_left = leaf;
        } else {
            r.bridge_right = leaf;
        }
    })?;
    if !patched {
        return Err(PagerError::Corrupt("bridge carrier element vanished"));
    }
    Ok(())
}
