//! The paper's §5 *future work*: query segments of **arbitrary** angular
//! coefficient.
//!
//! No optimal external structure for this is known (that is why the
//! paper leaves it open); what a practitioner can do is the candidate
//! filtering this module implements:
//!
//! 1. an [`IntervalSet`] over the stored segments' x-projections yields
//!    every segment whose x-range overlaps the query segment's x-range —
//!    a superset of the answer (`t_any ≥ t`);
//! 2. a B⁺-tree keyed by id resolves each candidate to its geometry
//!    (honestly costed I/O, no in-memory side tables);
//! 3. the exact [`segments_intersect`] predicate keeps the true hits.
//!
//! Cost: `O(log_B n + t_any·log_B n)` I/Os — output-sensitive in the
//! *candidate* count, not the answer. The gap `t_any − t` is exactly the
//! slack the paper's fixed-direction machinery eliminates; E10's
//! stab-then-filter row shows how large it gets.

use segdb_bptree::{BPlusTree, Record, RecordOrd, TreeState};
use segdb_geom::predicates::segments_intersect;
use segdb_geom::{Point, ReportSink, Segment};
use segdb_itree::overlap::{IntervalSet, IntervalSetState};
use segdb_itree::{Interval, IntervalTreeConfig};
use segdb_pager::{ByteReader, ByteWriter, Pager, PagerError, Result};
use std::cmp::Ordering;
use std::ops::ControlFlow;

/// A bare segment record keyed by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRec(pub Segment);

impl Record for SegRec {
    const ENCODED_SIZE: usize = 40;
    fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.u64(self.0.id)?;
        w.i64(self.0.a.x)?;
        w.i64(self.0.a.y)?;
        w.i64(self.0.b.x)?;
        w.i64(self.0.b.y)
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let id = r.u64()?;
        let a = Point::new(r.i64()?, r.i64()?);
        let b = Point::new(r.i64()?, r.i64()?);
        Ok(SegRec(Segment::new(id, a, b).map_err(|_| {
            PagerError::Corrupt("invalid segment record")
        })?))
    }
}

/// Order by id.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdOrder;

impl RecordOrd<SegRec> for IdOrder {
    fn cmp_records(&self, a: &SegRec, b: &SegRec) -> Ordering {
        a.0.id.cmp(&b.0.id)
    }
}

/// Serialized identity (44 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnyQueryState {
    /// x-projection interval set.
    pub xset: IntervalSetState,
    /// id → segment tree.
    pub byid: TreeState,
}

impl AnyQueryState {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = IntervalSetState::ENCODED_SIZE + TreeState::ENCODED_SIZE;

    /// Serialize.
    pub fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        self.xset.encode(w)?;
        self.byid.encode(w)
    }

    /// Deserialize.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(AnyQueryState {
            xset: IntervalSetState::decode(r)?,
            byid: TreeState::decode(r)?,
        })
    }
}

/// Candidate-filtering index for arbitrary-direction query segments.
#[derive(Debug)]
pub struct AnyQueryIndex {
    xset: IntervalSet,
    byid: BPlusTree<SegRec, IdOrder>,
}

impl AnyQueryIndex {
    /// Build over a segment set.
    pub fn build(pager: &Pager, segs: &[Segment]) -> Result<Self> {
        let intervals: Vec<Interval> = segs
            .iter()
            .map(|s| Interval::new(s.id, s.a.x, s.b.x))
            .collect();
        let xset = IntervalSet::build(pager, IntervalTreeConfig::default(), intervals)?;
        let mut recs: Vec<SegRec> = segs.iter().map(|s| SegRec(*s)).collect();
        recs.sort_by_key(|r| r.0.id);
        let byid = BPlusTree::bulk_load(pager, IdOrder, &recs)?;
        Ok(AnyQueryIndex { xset, byid })
    }

    /// Reconstruct from serialized state.
    pub fn attach(pager: &Pager, state: AnyQueryState) -> Result<Self> {
        Ok(AnyQueryIndex {
            xset: IntervalSet::attach(pager, IntervalTreeConfig::default(), state.xset)?,
            byid: BPlusTree::attach(pager, IdOrder, state.byid)?,
        })
    }

    /// Serialized identity.
    pub fn state(&self) -> AnyQueryState {
        AnyQueryState {
            xset: self.xset.state(),
            byid: self.byid.state(),
        }
    }

    /// Stored segment count.
    pub fn len(&self) -> u64 {
        self.byid.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.byid.is_empty()
    }

    /// Report every stored segment intersecting the arbitrary query
    /// segment `q` (same coordinate frame as the stored segments).
    /// Returns `(hits, candidate_count)`.
    pub fn query(&self, pager: &Pager, q: &Segment) -> Result<(Vec<Segment>, u32)> {
        let mut out = Vec::new();
        let candidates = self.query_sink(pager, q, &mut out)?;
        Ok((out, candidates))
    }

    /// Streaming form of [`AnyQueryIndex::query`]: candidates stream
    /// out of the x-projection overlap walk one at a time (no candidate
    /// `Vec`), each is resolved against `byid` and exact-filtered, and
    /// hits push into `sink`. Returns the candidate count; a sink
    /// `Break` stops the overlap walk immediately.
    pub fn query_sink(&self, pager: &Pager, q: &Segment, sink: &mut dyn ReportSink) -> Result<u32> {
        let mut candidates = 0u32;
        let mut err: Option<PagerError> = None;
        let _ = self
            .xset
            .overlap_ctl(pager, Some(q.a.x), Some(q.b.x), &mut |c| {
                candidates += 1;
                let id = c.id;
                let rec = (|| {
                    let mut cur = self
                        .byid
                        .lower_bound(pager, &move |r: &SegRec| id.cmp(&r.0.id))?;
                    cur.next(pager)?
                        .filter(|r| r.0.id == id)
                        .ok_or(PagerError::Corrupt("candidate id missing from byid tree"))
                })();
                match rec {
                    Ok(rec) if segments_intersect(&rec.0, q) => sink.report(&rec.0),
                    Ok(_) => ControlFlow::Continue(()),
                    Err(e) => {
                        err = Some(e);
                        ControlFlow::Break(())
                    }
                }
            })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(candidates)
    }

    /// Batched form of [`AnyQueryIndex::query`]: one overlap walk over
    /// the queries' joint x-envelope feeds every query, and each
    /// candidate id is resolved against `byid` **once** per batch
    /// instead of once per query. Per-query candidate counts keep the
    /// sequential meaning (candidates whose x-range overlaps *that*
    /// query's x-range), so the `t_any ≥ t` accounting is unchanged.
    pub fn query_batch(&self, pager: &Pager, qs: &[Segment]) -> Result<Vec<(Vec<Segment>, u32)>> {
        if qs.is_empty() {
            return Ok(Vec::new());
        }
        let lo = qs.iter().map(|q| q.a.x.min(q.b.x)).min().unwrap();
        let hi = qs.iter().map(|q| q.a.x.max(q.b.x)).max().unwrap();
        let mut out: Vec<(Vec<Segment>, u32)> = qs.iter().map(|_| (Vec::new(), 0)).collect();
        let mut err: Option<PagerError> = None;
        let _ = self.xset.overlap_ctl(pager, Some(lo), Some(hi), &mut |c| {
            let id = c.id;
            let interested: Vec<usize> = qs
                .iter()
                .enumerate()
                .filter(|(_, q)| c.lo <= q.a.x.max(q.b.x) && c.hi >= q.a.x.min(q.b.x))
                .map(|(i, _)| i)
                .collect();
            if interested.is_empty() {
                return ControlFlow::Continue(());
            }
            let rec = (|| {
                let mut cur = self
                    .byid
                    .lower_bound(pager, &move |r: &SegRec| id.cmp(&r.0.id))?;
                cur.next(pager)?
                    .filter(|r| r.0.id == id)
                    .ok_or(PagerError::Corrupt("candidate id missing from byid tree"))
            })();
            match rec {
                Ok(rec) => {
                    for i in interested {
                        out[i].1 += 1;
                        if segments_intersect(&rec.0, &qs[i]) {
                            out[i].0.push(rec.0);
                        }
                    }
                    ControlFlow::Continue(())
                }
                Err(e) => {
                    err = Some(e);
                    ControlFlow::Break(())
                }
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(out)
    }

    /// Insert a segment.
    pub fn insert(&mut self, pager: &Pager, seg: Segment) -> Result<()> {
        self.xset
            .insert(pager, Interval::new(seg.id, seg.a.x, seg.b.x))?;
        self.byid.insert(pager, SegRec(seg))?;
        Ok(())
    }

    /// Remove a segment. Returns whether it was found.
    pub fn remove(&mut self, pager: &Pager, seg: &Segment) -> Result<bool> {
        let found = self
            .xset
            .remove(pager, &Interval::new(seg.id, seg.a.x, seg.b.x))?;
        if found {
            self.byid.remove(pager, &SegRec(*seg))?;
        }
        Ok(found)
    }

    /// Free all pages.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        self.xset.destroy(pager)?;
        self.byid.destroy(pager)
    }

    /// Validate both component structures.
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        self.xset.validate(pager)?;
        self.byid.validate(pager)?;
        if self.xset.len() != self.byid.len() {
            return Err(PagerError::Corrupt("anyquery component length mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ids;
    use crate::testutil::oracle_intersect as oracle;
    use segdb_geom::gen::mixed_map;
    use segdb_pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new(PagerConfig {
            page_size: 1024,
            cache_pages: 0,
        })
    }

    #[test]
    fn arbitrary_slopes_match_oracle() {
        let p = pager();
        let set = mixed_map(600, 0xA11);
        let idx = AnyQueryIndex::build(&p, &set).unwrap();
        idx.validate(&p).unwrap();
        // Query segments of assorted slopes, including steep and shallow.
        let queries = [
            Segment::new(9000, (0, 0), (500, 700)).unwrap(),
            Segment::new(9001, (100, 800), (600, 100)).unwrap(),
            Segment::new(9002, (50, 0), (51, 1000)).unwrap(),
            Segment::new(9003, (0, 300), (900, 310)).unwrap(),
        ];
        for q in &queries {
            let (hits, cands) = idx.query(&p, q).unwrap();
            assert_eq!(ids(&hits), oracle(&set, q), "{q}");
            assert!(cands as usize >= hits.len());
        }
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let p = pager();
        let set = mixed_map(500, 0xD44);
        let idx = AnyQueryIndex::build(&p, &set).unwrap();
        let queries = [
            Segment::new(9000, (0, 0), (500, 700)).unwrap(),
            Segment::new(9001, (100, 800), (600, 100)).unwrap(),
            Segment::new(9002, (50, 0), (51, 1000)).unwrap(),
            Segment::new(9003, (0, 300), (900, 310)).unwrap(),
        ];
        p.reset_stats();
        let seq: Vec<_> = queries.iter().map(|q| idx.query(&p, q).unwrap()).collect();
        let seq_reads = p.stats().reads;
        p.reset_stats();
        let batched = idx.query_batch(&p, &queries).unwrap();
        let batch_reads = p.stats().reads;
        for ((sh, sc), (bh, bc)) in seq.iter().zip(&batched) {
            assert_eq!(ids(sh), ids(bh));
            assert_eq!(sc, bc, "candidate accounting must match");
        }
        assert!(
            batch_reads <= seq_reads,
            "batch {batch_reads} !<= seq {seq_reads}"
        );
    }

    #[test]
    fn insert_remove_roundtrip() {
        let p = pager();
        let set = mixed_map(200, 0xB22);
        let mut idx = AnyQueryIndex::build(&p, &[]).unwrap();
        for s in &set {
            idx.insert(&p, *s).unwrap();
        }
        idx.validate(&p).unwrap();
        assert_eq!(idx.len(), set.len() as u64);
        let q = Segment::new(9000, (0, 0), (400, 500)).unwrap();
        let (h1, _) = idx.query(&p, &q).unwrap();
        assert_eq!(ids(&h1), oracle(&set, &q));
        assert!(idx.remove(&p, &set[0]).unwrap());
        assert!(!idx.remove(&p, &set[0]).unwrap());
        let (h2, _) = idx.query(&p, &q).unwrap();
        let mut want = oracle(&set[1..], &q);
        want.retain(|&i| i != set[0].id);
        assert_eq!(ids(&h2), want);
    }

    #[test]
    fn state_roundtrip() {
        let p = pager();
        let set = mixed_map(100, 0xC33);
        let idx = AnyQueryIndex::build(&p, &set).unwrap();
        let st = idx.state();
        let mut buf = vec![0u8; AnyQueryState::ENCODED_SIZE];
        st.encode(&mut ByteWriter::new(&mut buf)).unwrap();
        let st2 = AnyQueryState::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(st, st2);
        let idx2 = AnyQueryIndex::attach(&p, st2).unwrap();
        let q = Segment::new(9000, (0, 0), (300, 400)).unwrap();
        assert_eq!(
            ids(&idx2.query(&p, &q).unwrap().0),
            ids(&idx.query(&p, &q).unwrap().0)
        );
    }
}
