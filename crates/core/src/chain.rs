//! Raw segment page chains: leaf storage for the first-level trees and
//! the [`crate::FullScan`] baseline.
//!
//! Layout per page: `[count: u16][next: u32][segments: count × 40]`.

use segdb_geom::{Point, Segment};
use segdb_pager::{ByteReader, ByteWriter, PageId, Pager, PagerError, Result, NULL_PAGE};
use std::ops::ControlFlow;

const HEADER: usize = 6;
/// Encoded segment size.
pub const SEG_BYTES: usize = 40;

/// Segments per chain page.
pub fn cap(page_size: usize) -> usize {
    (page_size - HEADER) / SEG_BYTES
}

fn encode_seg(s: &Segment, w: &mut ByteWriter<'_>) -> Result<()> {
    w.u64(s.id)?;
    w.i64(s.a.x)?;
    w.i64(s.a.y)?;
    w.i64(s.b.x)?;
    w.i64(s.b.y)
}

fn decode_seg(r: &mut ByteReader<'_>) -> Result<Segment> {
    let id = r.u64()?;
    let a = Point::new(r.i64()?, r.i64()?);
    let b = Point::new(r.i64()?, r.i64()?);
    Segment::new(id, a, b).map_err(|_| PagerError::Corrupt("invalid chain segment"))
}

/// Write `segs` as a fresh chain; returns the head ([`NULL_PAGE`] when
/// empty).
pub fn write(pager: &Pager, segs: &[Segment]) -> Result<PageId> {
    let cap = cap(pager.page_size());
    let mut head = NULL_PAGE;
    for chunk in segs.chunks(cap).rev() {
        let page = pager.allocate()?;
        let next = head;
        pager.overwrite_page(page, |buf| {
            let mut w = ByteWriter::new(buf);
            w.u16(chunk.len() as u16)?;
            w.u32(next)?;
            for s in chunk {
                encode_seg(s, &mut w)?;
            }
            Ok::<(), PagerError>(())
        })??;
        head = page;
    }
    Ok(head)
}

/// Visit every segment of the chain.
pub fn scan(pager: &Pager, head: PageId, mut f: impl FnMut(Segment)) -> Result<()> {
    let _ = scan_ctl(pager, head, |s| {
        f(s);
        ControlFlow::Continue(())
    })?;
    Ok(())
}

/// Visit segments until `f` breaks; unread tail pages are never fetched
/// (the early-exit half of the streaming read path). Returns how the
/// walk ended.
pub fn scan_ctl(
    pager: &Pager,
    head: PageId,
    mut f: impl FnMut(Segment) -> ControlFlow<()>,
) -> Result<ControlFlow<()>> {
    let mut page = head;
    while page != NULL_PAGE {
        let (next, flow) = pager.with_page(page, |buf| {
            let mut r = ByteReader::new(buf);
            let count = r.u16()? as usize;
            let next = r.u32()?;
            for _ in 0..count {
                if f(decode_seg(&mut r)?).is_break() {
                    return Ok((next, ControlFlow::Break(())));
                }
            }
            Ok::<(PageId, ControlFlow<()>), PagerError>((next, ControlFlow::Continue(())))
        })??;
        if flow.is_break() {
            return Ok(ControlFlow::Break(()));
        }
        page = next;
    }
    Ok(ControlFlow::Continue(()))
}

/// Collect the chain into a vector.
pub fn collect(pager: &Pager, head: PageId) -> Result<Vec<Segment>> {
    let mut out = Vec::new();
    scan(pager, head, |s| out.push(s))?;
    Ok(out)
}

/// Prepend one segment, filling the head page or growing a new head.
/// Returns the (possibly new) head.
pub fn push(pager: &Pager, head: PageId, seg: &Segment) -> Result<PageId> {
    if head != NULL_PAGE {
        let appended = pager.with_page_mut(head, |buf| {
            let capn = cap(buf.len());
            let mut r = ByteReader::new(buf);
            let count = r.u16()? as usize;
            if count >= capn {
                return Ok(false);
            }
            let mut w = ByteWriter::new(buf);
            w.u16(count as u16 + 1)?;
            w.skip(4 + count * SEG_BYTES)?;
            encode_seg(seg, &mut w)?;
            Ok(true)
        })??;
        if appended {
            return Ok(head);
        }
    }
    let page = pager.allocate()?;
    pager.overwrite_page(page, |buf| {
        let mut w = ByteWriter::new(buf);
        w.u16(1)?;
        w.u32(head)?;
        encode_seg(seg, &mut w)
    })??;
    Ok(page)
}

/// Remove the segment with `id` from the chain (rewrites the page it
/// lives in). Returns whether it was found.
pub fn remove(pager: &Pager, head: PageId, id: u64) -> Result<bool> {
    let mut page = head;
    while page != NULL_PAGE {
        let (found, next) = pager.with_page_mut(page, |buf| {
            let mut r = ByteReader::new(buf);
            let count = r.u16()? as usize;
            let next = r.u32()?;
            let mut segs = Vec::with_capacity(count);
            for _ in 0..count {
                segs.push(decode_seg(&mut r)?);
            }
            let before = segs.len();
            segs.retain(|s| s.id != id);
            if segs.len() == before {
                return Ok((false, next));
            }
            // Rewrite in place (page stays in the chain even if empty;
            // rebuilds compact).
            buf.fill(0);
            let mut w = ByteWriter::new(buf);
            w.u16(segs.len() as u16)?;
            w.u32(next)?;
            for s in &segs {
                encode_seg(s, &mut w)?;
            }
            Ok((true, next))
        })??;
        if found {
            return Ok(true);
        }
        page = next;
    }
    Ok(false)
}

/// Number of segments in the chain.
pub fn count(pager: &Pager, head: PageId) -> Result<u64> {
    let mut n = 0u64;
    scan(pager, head, |_| n += 1)?;
    Ok(n)
}

/// Free every page of the chain.
pub fn destroy(pager: &Pager, head: PageId) -> Result<()> {
    let mut page = head;
    while page != NULL_PAGE {
        let next = pager.with_page(page, |buf| {
            let mut r = ByteReader::new(buf);
            r.u16()?;
            r.u32()
        })??;
        pager.free(page)?;
        page = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use segdb_pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new(PagerConfig {
            page_size: 128,
            cache_pages: 0,
        })
    }

    fn seg(id: u64) -> Segment {
        Segment::new(id, (0, id as i64), (10, id as i64 + 1)).unwrap()
    }

    #[test]
    fn write_scan_roundtrip() {
        let p = pager();
        let segs: Vec<Segment> = (0..10).map(seg).collect();
        let head = write(&p, &segs).unwrap();
        assert_eq!(collect(&p, head).unwrap(), segs);
        assert_eq!(count(&p, head).unwrap(), 10);
        destroy(&p, head).unwrap();
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn empty_chain() {
        let p = pager();
        let head = write(&p, &[]).unwrap();
        assert_eq!(head, NULL_PAGE);
        assert!(collect(&p, head).unwrap().is_empty());
    }

    #[test]
    fn push_grows_and_remove_shrinks() {
        let p = pager();
        let mut head = NULL_PAGE;
        for i in 0..8 {
            head = push(&p, head, &seg(i)).unwrap();
        }
        assert_eq!(count(&p, head).unwrap(), 8);
        assert!(remove(&p, head, 3).unwrap());
        assert!(!remove(&p, head, 3).unwrap());
        assert_eq!(count(&p, head).unwrap(), 7);
        let mut got: Vec<u64> = collect(&p, head).unwrap().iter().map(|s| s.id).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 4, 5, 6, 7]);
    }
}
