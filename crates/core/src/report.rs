//! Query result handling and per-query instrumentation.

use segdb_geom::{CountSink, ExistsSink, LimitSink, ReportSink, Segment};
use segdb_obs::cost::CostVerdict;
use segdb_obs::Json;
use segdb_pager::IoStats;

/// What a query should produce — the streaming read path serves all
/// four from the same sink-driven traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryMode {
    /// Materialize every hit (the classic `Vec<Segment>` answer).
    #[default]
    Collect,
    /// Only the number of hits; index layers answer whole subtrees from
    /// stored counts without reading their pages.
    Count,
    /// Only whether any segment matches; the traversal aborts at the
    /// first hit.
    Exists,
    /// The first `k` hits in traversal order; the traversal aborts once
    /// `k` are in hand.
    Limit(u32),
}

impl QueryMode {
    /// Short stable name (wire protocol & JSON).
    pub fn name(&self) -> &'static str {
        match self {
            QueryMode::Collect => "collect",
            QueryMode::Count => "count",
            QueryMode::Exists => "exists",
            QueryMode::Limit(_) => "limit",
        }
    }

    /// Build the sink implementing this mode. `Collect` callers usually
    /// take the dedicated `Vec` path instead.
    pub fn make_sink(&self) -> Box<dyn ReportSink> {
        match self {
            QueryMode::Collect => Box::new(Vec::new()),
            QueryMode::Count => Box::new(CountSink::new()),
            QueryMode::Exists => Box::new(ExistsSink::new()),
            QueryMode::Limit(k) => Box::new(LimitSink::new(*k as usize)),
        }
    }
}

/// A mode-shaped query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// `Collect` / `Limit` answers.
    Segments(Vec<Segment>),
    /// `Count` answer.
    Count(u64),
    /// `Exists` answer.
    Exists(bool),
}

impl QueryAnswer {
    /// Number of hits this answer witnesses (for `Exists` only 0/1 —
    /// the traversal stopped as soon as the bit was decided).
    pub fn count(&self) -> u64 {
        match self {
            QueryAnswer::Segments(v) => v.len() as u64,
            QueryAnswer::Count(n) => *n,
            QueryAnswer::Exists(b) => u64::from(*b),
        }
    }

    /// The segments, when this answer carries them.
    pub fn segments(&self) -> Option<&[Segment]> {
        match self {
            QueryAnswer::Segments(v) => Some(v),
            _ => None,
        }
    }
}

/// Instrumentation of one VS query against any of the structures — the
/// measurable form of the paper's cost claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTrace {
    /// First-level nodes visited.
    pub first_level_nodes: u32,
    /// Second-level structures probed (PSTs, interval sets, G lists).
    pub second_level_probes: u32,
    /// Fractional-cascading bridge jumps taken (Solution 2 only).
    pub bridge_jumps: u32,
    /// Segments reported.
    pub hits: u32,
    /// Mode the query ran under.
    pub mode: QueryMode,
    /// Pages the traversal provably avoided reading (early exit /
    /// count-from-headers), where the structure can compute the figure
    /// exactly; 0 when unknown.
    pub pages_saved: u64,
    /// I/O performed by the query (reads/writes against the pager).
    pub io: IoStats,
    /// Verdict against the fitted paper bound, when the database was
    /// built with observability on and the cost fitter is warmed up.
    pub cost: Option<CostVerdict>,
    /// Shared-walk batch this query was executed in (0 = ran alone).
    /// Slowlog consumers correlate batchmates through this id when
    /// diagnosing tail latency.
    pub batch_id: u64,
    /// Number of queries in that batch (0 = ran alone).
    pub batch_size: u32,
}

impl QueryTrace {
    /// JSON form (schema documented in README "Observability").
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "first_level_nodes",
                Json::U64(self.first_level_nodes as u64),
            ),
            (
                "second_level_probes",
                Json::U64(self.second_level_probes as u64),
            ),
            ("bridge_jumps", Json::U64(self.bridge_jumps as u64)),
            ("hits", Json::U64(self.hits as u64)),
            ("mode", Json::Str(self.mode.name().to_string())),
            ("pages_saved", Json::U64(self.pages_saved)),
            (
                "io",
                Json::obj([
                    ("reads", Json::U64(self.io.reads)),
                    ("writes", Json::U64(self.io.writes)),
                    ("cache_hits", Json::U64(self.io.cache_hits)),
                    ("allocations", Json::U64(self.io.allocations)),
                    ("frees", Json::U64(self.io.frees)),
                    ("total", Json::U64(self.io.total_io())),
                ]),
            ),
            ("cost", self.cost.map_or(Json::Null, |c| c.to_json())),
            ("batch_id", Json::U64(self.batch_id)),
            ("batch_size", Json::U64(self.batch_size as u64)),
        ])
    }
}

/// Pass-through sink that counts deliveries — multi-structure walks use
/// it to fill `QueryTrace::hits` without each sub-structure reporting
/// its own tally.
pub struct CountingSink<'a> {
    /// The wrapped sink.
    pub inner: &'a mut dyn ReportSink,
    /// Segments (or bulk counts) delivered so far.
    pub hits: u64,
}

impl<'a> CountingSink<'a> {
    /// Wrap `inner` with a zeroed tally.
    pub fn new(inner: &'a mut dyn ReportSink) -> Self {
        CountingSink { inner, hits: 0 }
    }
}

impl ReportSink for CountingSink<'_> {
    fn report(&mut self, seg: &Segment) -> std::ops::ControlFlow<()> {
        self.hits += 1;
        self.inner.report(seg)
    }

    fn want_segments(&self) -> bool {
        self.inner.want_segments()
    }

    fn report_count(&mut self, n: u64) -> std::ops::ControlFlow<()> {
        self.hits += n;
        self.inner.report_count(n)
    }
}

/// Drops tombstoned ids before they reach the inner sink. Deliberately
/// leaves `want_segments` at the default `true`: filtering needs the
/// ids, so count-from-header fast paths stay off while tombstones
/// exist.
pub struct TombFilterSink<'a> {
    /// The wrapped sink.
    pub inner: &'a mut dyn ReportSink,
    /// Lazily-deleted segment ids to suppress.
    pub tombs: std::collections::HashSet<u64>,
}

impl ReportSink for TombFilterSink<'_> {
    fn report(&mut self, seg: &Segment) -> std::ops::ControlFlow<()> {
        if self.tombs.contains(&seg.id) {
            std::ops::ControlFlow::Continue(())
        } else {
            self.inner.report(seg)
        }
    }
}

/// Normalize an answer for comparison: sort by id and assert uniqueness.
///
/// The structures guarantee each segment is reported exactly once (the
/// paper's "each segment is reported only once"); tests call this to keep
/// that promise honest.
pub fn normalize(mut hits: Vec<Segment>) -> Vec<Segment> {
    hits.sort_by_key(|s| s.id);
    for w in hits.windows(2) {
        debug_assert_ne!(w[0].id, w[1].id, "segment {} reported twice", w[0].id);
    }
    hits
}

/// Ids of an answer, sorted (test helper used across the workspace).
pub fn ids(hits: &[Segment]) -> Vec<u64> {
    let mut v: Vec<u64> = hits.iter().map(|s| s.id).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts() {
        let s1 = Segment::new(5, (0, 0), (1, 1)).unwrap();
        let s2 = Segment::new(2, (0, 0), (1, 2)).unwrap();
        let out = normalize(vec![s1, s2]);
        assert_eq!(ids(&out), vec![2, 5]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn normalize_rejects_duplicates() {
        let s1 = Segment::new(5, (0, 0), (1, 1)).unwrap();
        let _ = normalize(vec![s1, s1]);
    }
}
