//! Query result handling and per-query instrumentation.

use segdb_geom::Segment;
use segdb_obs::cost::CostVerdict;
use segdb_obs::Json;
use segdb_pager::IoStats;

/// Instrumentation of one VS query against any of the structures — the
/// measurable form of the paper's cost claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTrace {
    /// First-level nodes visited.
    pub first_level_nodes: u32,
    /// Second-level structures probed (PSTs, interval sets, G lists).
    pub second_level_probes: u32,
    /// Fractional-cascading bridge jumps taken (Solution 2 only).
    pub bridge_jumps: u32,
    /// Segments reported.
    pub hits: u32,
    /// I/O performed by the query (reads/writes against the pager).
    pub io: IoStats,
    /// Verdict against the fitted paper bound, when the database was
    /// built with observability on and the cost fitter is warmed up.
    pub cost: Option<CostVerdict>,
}

impl QueryTrace {
    /// JSON form (schema documented in README "Observability").
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "first_level_nodes",
                Json::U64(self.first_level_nodes as u64),
            ),
            (
                "second_level_probes",
                Json::U64(self.second_level_probes as u64),
            ),
            ("bridge_jumps", Json::U64(self.bridge_jumps as u64)),
            ("hits", Json::U64(self.hits as u64)),
            (
                "io",
                Json::obj([
                    ("reads", Json::U64(self.io.reads)),
                    ("writes", Json::U64(self.io.writes)),
                    ("cache_hits", Json::U64(self.io.cache_hits)),
                    ("allocations", Json::U64(self.io.allocations)),
                    ("frees", Json::U64(self.io.frees)),
                    ("total", Json::U64(self.io.total_io())),
                ]),
            ),
            ("cost", self.cost.map_or(Json::Null, |c| c.to_json())),
        ])
    }
}

/// Normalize an answer for comparison: sort by id and assert uniqueness.
///
/// The structures guarantee each segment is reported exactly once (the
/// paper's "each segment is reported only once"); tests call this to keep
/// that promise honest.
pub fn normalize(mut hits: Vec<Segment>) -> Vec<Segment> {
    hits.sort_by_key(|s| s.id);
    for w in hits.windows(2) {
        debug_assert_ne!(w[0].id, w[1].id, "segment {} reported twice", w[0].id);
    }
    hits
}

/// Ids of an answer, sorted (test helper used across the workspace).
pub fn ids(hits: &[Segment]) -> Vec<u64> {
    let mut v: Vec<u64> = hits.iter().map(|s| s.id).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts() {
        let s1 = Segment::new(5, (0, 0), (1, 1)).unwrap();
        let s2 = Segment::new(2, (0, 0), (1, 2)).unwrap();
        let out = normalize(vec![s1, s2]);
        assert_eq!(ids(&out), vec![2, 5]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn normalize_rejects_duplicates() {
        let s1 = Segment::new(5, (0, 0), (1, 1)).unwrap();
        let _ = normalize(vec![s1, s1]);
    }
}
