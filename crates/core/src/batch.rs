//! Batched query execution: one shared index walk answers a whole
//! group of queries.
//!
//! Sequential execution pays the `O(log_B n)` descent once *per query*;
//! under concurrency the same internal pages are re-read over and over.
//! [`SegmentDatabase::query_batch_canonical_mode`] instead pushes every
//! query of a batch down the index together — each page on the shared
//! frontier is read **once per batch**, and hits are fanned out to
//! per-query sinks through [`MultiSink`]. Early-exit modes (`Exists`,
//! `Limit`) retire their slot without disturbing batchmates; the walk
//! stops early only once every slot has retired.
//!
//! Semantics relative to sequential execution:
//!
//! * `Collect` / `Count` / `Exists` answers are bit-identical to running
//!   each query alone.
//! * `Limit(k)` answers have the same *size* and every element is a true
//!   hit, but which `k` of the hits are returned may differ — the shared
//!   walk delivers hits in a different (still deterministic) order.
//! * Count-from-header fast paths are taken per-slot where the walk can
//!   still serve them (subtree counts); batching never changes a count.
//!
//! Fault isolation: if the shared walk fails (e.g. a transient device
//! error), the batch falls back to running each query alone, so one
//! poisoned page affects only the queries that actually need it.

use crate::facade::{DbError, SegmentDatabase};
use crate::report::{CountingSink, QueryAnswer, QueryMode, QueryTrace};
use segdb_geom::{CountSink, ExistsSink, LimitSink, MultiSink, ReportSink, Segment, VerticalQuery};
use segdb_pager::{IoStats, StatScope};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide batch id source. Ids are only for correlation (slowlog,
/// traces); 0 is reserved to mean "ran alone".
static NEXT_BATCH_ID: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh nonzero batch id.
pub fn next_batch_id() -> u64 {
    NEXT_BATCH_ID.fetch_add(1, Ordering::Relaxed)
}

/// Per-slot sink implementing that slot's [`QueryMode`], with the answer
/// extractable afterwards without downcasting.
enum ModeSink {
    Collect(Vec<Segment>),
    Count(CountSink),
    Exists(ExistsSink),
    Limit(LimitSink),
}

impl ModeSink {
    fn new(mode: QueryMode) -> ModeSink {
        match mode {
            QueryMode::Collect => ModeSink::Collect(Vec::new()),
            QueryMode::Count => ModeSink::Count(CountSink::new()),
            QueryMode::Exists => ModeSink::Exists(ExistsSink::new()),
            QueryMode::Limit(k) => ModeSink::Limit(LimitSink::new(k as usize)),
        }
    }

    /// Shear segment-carrying answers back to user coordinates (the
    /// same normalization `run_mode` applies sequentially).
    fn into_answer(self, db: &SegmentDatabase) -> Result<QueryAnswer, DbError> {
        Ok(match self {
            ModeSink::Collect(v) => QueryAnswer::Segments(db.unshear(v)?),
            ModeSink::Count(c) => QueryAnswer::Count(c.count),
            ModeSink::Exists(e) => QueryAnswer::Exists(e.found),
            ModeSink::Limit(l) => QueryAnswer::Segments(db.unshear(l.into_vec())?),
        })
    }
}

impl ReportSink for ModeSink {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        match self {
            ModeSink::Collect(v) => v.report(seg),
            ModeSink::Count(c) => c.report(seg),
            ModeSink::Exists(e) => e.report(seg),
            ModeSink::Limit(l) => l.report(seg),
        }
    }

    fn want_segments(&self) -> bool {
        match self {
            ModeSink::Collect(v) => v.want_segments(),
            ModeSink::Count(c) => c.want_segments(),
            ModeSink::Exists(e) => e.want_segments(),
            ModeSink::Limit(l) => l.want_segments(),
        }
    }

    fn report_count(&mut self, n: u64) -> ControlFlow<()> {
        match self {
            ModeSink::Collect(v) => v.report_count(n),
            ModeSink::Count(c) => c.report_count(n),
            ModeSink::Exists(e) => e.report_count(n),
            ModeSink::Limit(l) => l.report_count(n),
        }
    }
}

/// Split the shared walk's I/O across `n` slots, remainder to the
/// earliest slots, so per-query traces still sum to the batch total.
fn split_io(total: IoStats, n: usize) -> Vec<IoStats> {
    let nn = n as u64;
    let part = |v: u64, i: usize| v / nn + u64::from((i as u64) < v % nn);
    (0..n)
        .map(|i| IoStats {
            reads: part(total.reads, i),
            writes: part(total.writes, i),
            allocations: part(total.allocations, i),
            frees: part(total.frees, i),
            cache_hits: part(total.cache_hits, i),
            pin_hits: part(total.pin_hits, i),
        })
        .collect()
}

impl SegmentDatabase {
    /// Execute a batch of canonical-frame queries with **one** shared
    /// index walk. Returns one result per item, in order.
    ///
    /// Single-item batches (and empty ones) take the sequential path —
    /// their traces carry `batch_id == 0`. If the shared walk errors,
    /// every query is retried alone so batchmates of a failing query
    /// still succeed; the per-query retries also report `batch_id == 0`.
    pub fn query_batch_canonical_mode(
        &self,
        items: &[(VerticalQuery, QueryMode)],
    ) -> Vec<Result<(QueryAnswer, QueryTrace), DbError>> {
        if items.len() <= 1 {
            return items
                .iter()
                .map(|(q, mode)| self.run_mode(q, *mode))
                .collect();
        }
        let batch_id = next_batch_id();
        let scope = StatScope::begin(self.pager());

        let mut sinks: Vec<ModeSink> = items.iter().map(|&(_, mode)| ModeSink::new(mode)).collect();
        let mut counters: Vec<CountingSink<'_>> = sinks
            .iter_mut()
            .map(|s| CountingSink::new(s as &mut dyn ReportSink))
            .collect();
        let mut multi = MultiSink::new();
        for (&(q, _), c) in items.iter().zip(counters.iter_mut()) {
            multi.push(q, c as &mut dyn ReportSink);
        }

        let walk = self.run_batch_sinks(&mut multi);
        drop(multi);

        let shared = match walk {
            Ok(t) => t,
            Err(_) => {
                // Fault isolation: re-run each query alone so one bad
                // page only fails the queries that truly need it.
                return items
                    .iter()
                    .map(|(q, mode)| self.run_mode(q, *mode))
                    .collect();
            }
        };

        let hits: Vec<u64> = counters.iter().map(|c| c.hits).collect();
        drop(counters);
        let io = scope.finish();
        let shares = split_io(io, items.len());

        sinks
            .into_iter()
            .zip(items.iter())
            .zip(hits)
            .zip(shares)
            .map(|(((sink, &(_, mode)), slot_hits), io)| {
                let answer = sink.into_answer(self)?;
                let mut trace = QueryTrace {
                    first_level_nodes: shared.first_level_nodes,
                    second_level_probes: shared.second_level_probes,
                    bridge_jumps: shared.bridge_jumps,
                    hits: slot_hits.min(u32::MAX as u64) as u32,
                    mode,
                    pages_saved: shared.pages_saved,
                    io,
                    batch_id,
                    batch_size: items.len() as u32,
                    ..QueryTrace::default()
                };
                self.observe_trace(&mut trace);
                Ok((answer, trace))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::IndexKind;
    use crate::report::ids;
    use segdb_geom::gen::{mixed_map, vertical_queries};

    const KINDS: [IndexKind; 4] = [
        IndexKind::TwoLevelBinary,
        IndexKind::TwoLevelInterval,
        IndexKind::FullScan,
        IndexKind::StabThenFilter,
    ];

    fn build(kind: IndexKind, segs: &[Segment]) -> SegmentDatabase {
        SegmentDatabase::builder()
            .page_size(512)
            .index(kind)
            .build(segs.to_vec())
            .unwrap()
    }

    #[test]
    fn batch_matches_sequential_all_kinds() {
        let set = mixed_map(700, 31);
        let queries = vertical_queries(&set, 24, 60, 17);
        for kind in KINDS {
            let db = build(kind, &set);
            let items: Vec<(VerticalQuery, QueryMode)> =
                queries.iter().map(|q| (*q, QueryMode::Collect)).collect();
            let batched = db.query_batch_canonical_mode(&items);
            for ((q, _), res) in items.iter().zip(batched) {
                let (ans, trace) = res.unwrap();
                let (seq, _) = db.query_canonical(q).unwrap();
                assert_eq!(
                    ids(ans.segments().unwrap()),
                    ids(&seq),
                    "{kind:?} batch/seq mismatch"
                );
                assert_eq!(trace.batch_size as usize, items.len());
                assert_ne!(trace.batch_id, 0);
            }
        }
    }

    #[test]
    fn batch_reads_fewer_pages_than_sequential() {
        let set = mixed_map(1500, 5);
        let queries = vertical_queries(&set, 16, 40, 23);
        for kind in [IndexKind::TwoLevelBinary, IndexKind::TwoLevelInterval] {
            let db = build(kind, &set);
            let items: Vec<(VerticalQuery, QueryMode)> =
                queries.iter().map(|q| (*q, QueryMode::Collect)).collect();
            let seq_pages: u64 = queries
                .iter()
                .map(|q| {
                    let (_, t) = db.query_canonical(q).unwrap();
                    t.io.reads + t.io.cache_hits
                })
                .sum();
            let batch_pages: u64 = db
                .query_batch_canonical_mode(&items)
                .into_iter()
                .map(|r| {
                    let (_, t) = r.unwrap();
                    t.io.reads + t.io.cache_hits
                })
                .sum();
            assert!(
                batch_pages < seq_pages,
                "{kind:?}: batch {batch_pages} !< seq {seq_pages}"
            );
        }
    }

    #[test]
    fn mixed_mode_batch_answers_each_mode() {
        let set = mixed_map(400, 9);
        let q = vertical_queries(&set, 1, 50, 3)[0];
        for kind in KINDS {
            let db = build(kind, &set);
            let (seq, _) = db.query_canonical(&q).unwrap();
            let items = vec![
                (q, QueryMode::Collect),
                (q, QueryMode::Count),
                (q, QueryMode::Exists),
                (q, QueryMode::Limit(2)),
            ];
            let out = db.query_batch_canonical_mode(&items);
            let collect = out[0].as_ref().unwrap().0.segments().unwrap().to_vec();
            assert_eq!(ids(&collect), ids(&seq), "{kind:?} collect");
            assert_eq!(out[1].as_ref().unwrap().0.count(), seq.len() as u64);
            match out[2].as_ref().unwrap().0 {
                QueryAnswer::Exists(b) => assert_eq!(b, !seq.is_empty()),
                _ => panic!("exists answer shape"),
            }
            let limited = out[3].as_ref().unwrap().0.segments().unwrap().to_vec();
            assert_eq!(limited.len(), seq.len().min(2), "{kind:?} limit size");
            let truth: std::collections::HashSet<u64> = ids(&seq).into_iter().collect();
            for s in &limited {
                assert!(truth.contains(&s.id), "{kind:?} limit returned non-hit");
            }
        }
    }

    #[test]
    fn single_item_batch_runs_alone() {
        let set = mixed_map(100, 2);
        let db = build(IndexKind::TwoLevelBinary, &set);
        let q = vertical_queries(&set, 1, 10, 4)[0];
        let out = db.query_batch_canonical_mode(&[(q, QueryMode::Count)]);
        let (_, trace) = out[0].as_ref().unwrap();
        assert_eq!(trace.batch_id, 0);
        assert_eq!(trace.batch_size, 0);
    }
}
