//! Seeded crash-recovery torture scenarios over the whole storage stack.
//!
//! One scenario ([`run_scenario`]) is fully determined by a
//! [`TortureConfig`] — in particular its `seed`:
//!
//! 1. build a database fault-free on a disarmed
//!    [`segdb_pager::FaultDevice`] (the build ends in a `save`, so the
//!    durable image starts consistent);
//! 2. arm a seed-derived [`FaultPlan`] (pure crash, transient-error, or
//!    torn-heavy mode) and run a seeded workload of inserts / removes
//!    (dynamic kinds only), oracle-verified queries, and occasional
//!    `save`s, keeping an in-memory oracle of the segment set as of the
//!    last *successful* save;
//! 3. at the first storage fault (or the scheduled power cut), stop,
//!    [`recover`](segdb_pager::FaultHandle::recover) the
//!    last-sync-consistent image, reopen it with
//!    [`SegmentDatabase::open_device`], and verify a battery covering
//!    all four query shapes **bit-identically** against the oracle, then
//!    deep-validate the recovered index.
//!
//! Everything — the segment set, the fault schedule, the workload, the
//! query batteries — derives from `seed` through salted
//! [`segdb_rng::SmallRng`] streams, so a scenario replays its exact
//! fault trace ([`TortureOutcome::fault_trace`], compare via
//! [`trace_digest`]). The workspace suite `tests/faults.rs` sweeps this
//! over ≥50 seeds per index kind; `segdb-cli torture` exposes the same
//! harness for the `check.sh` smoke.

use crate::facade::{DbError, IndexKind, SegmentDatabase};
use crate::report::ids;
use segdb_geom::gen::mixed_map;
use segdb_geom::query::scan_oracle;
use segdb_geom::{Segment, VerticalQuery};
use segdb_pager::{FaultDevice, FaultEvent, FaultKind, FaultPlan, FaultStats, PagerError};
use segdb_rng::SmallRng;

/// Salt for the segment-set RNG stream.
const SET_SALT: u64 = 0x5e65_e751_c0ff_ee01;
/// Salt for the fault-plan RNG stream.
const PLAN_SALT: u64 = 0x91a4_7afe_c0ff_ee02;
/// Salt for the workload RNG stream.
const WORK_SALT: u64 = 0x3c3c_10ad_c0ff_ee03;
/// Salt for the query-battery RNG stream.
const QUERY_SALT: u64 = 0x4b1d_9e37_c0ff_ee04;

/// One torture scenario, fully determined by these parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TortureConfig {
    /// Master seed; every random stream of the scenario derives from it.
    pub seed: u64,
    /// Index structure under torture.
    pub kind: IndexKind,
    /// Initial segment count (the set is NCT by construction).
    pub n: usize,
    /// Workload rounds between arming and the (possible) crash.
    pub rounds: usize,
    /// Page (block) size in bytes.
    pub page_size: usize,
    /// Buffer-pool capacity in pages (small, so evictions — and their
    /// writebacks — happen on the query path too).
    pub cache_pages: usize,
}

impl TortureConfig {
    /// The standard small-but-hostile scenario for `kind` and `seed`.
    pub fn new(kind: IndexKind, seed: u64) -> TortureConfig {
        TortureConfig {
            seed,
            kind,
            n: 80,
            rounds: 5,
            page_size: 512,
            cache_pages: 6,
        }
    }
}

/// What one scenario did and proved. Deterministic per config: replaying
/// the same [`TortureConfig`] yields an equal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TortureOutcome {
    /// Did the scenario end in a storage fault (power cut or the first
    /// injected error) rather than running its workload to completion?
    pub crashed: bool,
    /// The first storage error observed by the workload, if any.
    pub first_error: Option<String>,
    /// Every injected fault, in order.
    pub fault_trace: Vec<FaultEvent>,
    /// Per-device injection counters.
    pub injected: FaultStats,
    /// Queries answered by the live database and verified against the
    /// oracle before the fault.
    pub live_queries_verified: u64,
    /// Queries answered by the recovered database and verified
    /// bit-identically against the last-save oracle.
    pub recovery_queries_verified: u64,
    /// Successful `save`s during the workload (each advances the
    /// durable oracle).
    pub saves: u64,
    /// Segment count of the recovered database.
    pub recovered_len: u64,
}

/// Derive the scenario's fault schedule from its master seed: one of
/// three modes (pure crash / transient errors plus a late cut /
/// torn-write-heavy plus a cut), all parameters seeded.
pub fn derive_plan(seed: u64) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed ^ PLAN_SALT);
    match rng.gen_range(0u32..3) {
        0 => FaultPlan::crash_at(seed, rng.gen_range(1u64..400)),
        1 => FaultPlan {
            read_error: 0.01,
            write_error: 0.01,
            sync_error: 0.02,
            power_cut_at: Some(rng.gen_range(200u64..1500)),
            ..FaultPlan::none(seed)
        },
        _ => FaultPlan {
            torn_write: 0.05,
            power_cut_at: Some(rng.gen_range(100u64..800)),
            ..FaultPlan::none(seed)
        },
    }
}

/// A seeded query battery covering all four generalized-segment shapes
/// (line, both rays, bounded segment) over the bounding box of `set`.
pub fn query_battery(set: &[Segment], count: usize, seed: u64) -> Vec<VerticalQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (0i64, 1i64, 0i64, 1i64);
    for (i, s) in set.iter().enumerate() {
        let (l, h) = s.y_span();
        if i == 0 {
            (xmin, xmax, ymin, ymax) = (s.a.x, s.b.x, l, h);
        } else {
            xmin = xmin.min(s.a.x);
            xmax = xmax.max(s.b.x);
            ymin = ymin.min(l);
            ymax = ymax.max(h);
        }
    }
    (0..count)
        .map(|i| {
            let x = rng.gen_range(xmin..=xmax);
            let y1 = rng.gen_range(ymin..=ymax);
            let y2 = rng.gen_range(ymin..=ymax);
            match i % 4 {
                0 => VerticalQuery::Line { x },
                1 => VerticalQuery::RayUp { x, y0: y1 },
                2 => VerticalQuery::RayDown { x, y0: y1 },
                _ => VerticalQuery::segment(x, y1, y2),
            }
        })
        .collect()
}

/// FNV-1a digest of a fault trace — a compact fingerprint for
/// determinism assertions (two replays of one seed must agree).
pub fn trace_digest(trace: &[FaultEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for ev in trace {
        eat(ev.op);
        let (code, arg) = match ev.kind {
            FaultKind::ReadError => (1, 0),
            FaultKind::WriteError => (2, 0),
            FaultKind::SyncError => (3, 0),
            FaultKind::TornWrite { kept } => (4, kept as u64),
            FaultKind::PowerCut => (5, 0),
        };
        eat(code);
        eat(arg);
    }
    h
}

/// Check one live/recovered answer against the exhaustive oracle.
fn verify(
    hits: &[Segment],
    oracle_set: &[Segment],
    q: &VerticalQuery,
    what: &'static str,
) -> Result<(), DbError> {
    if ids(hits) != ids(&scan_oracle(oracle_set, q)) {
        return Err(DbError::Pager(PagerError::Corrupt(what)));
    }
    Ok(())
}

/// Run one scenario. Returns `Err` only on a **correctness** failure
/// (an answer diverging from the oracle, recovery failing to reopen, or
/// the recovered index failing deep validation) — injected storage
/// faults are the expected mechanism, not an error.
pub fn run_scenario(cfg: &TortureConfig) -> Result<TortureOutcome, DbError> {
    // The whole set is NCT by construction; any subset of an NCT set is
    // NCT, so inserts drawn from `pending` keep the invariant.
    let extra = cfg.rounds * 8;
    let all = mixed_map(cfg.n + extra, cfg.seed ^ SET_SALT);
    let split = all.len().saturating_sub(extra).max(1);
    let mut current: Vec<Segment> = all[..split].to_vec();
    let mut pending: Vec<Segment> = all[split..].to_vec();

    let (device, handle) = FaultDevice::over_memory(cfg.page_size, FaultPlan::none(cfg.seed));
    let mut db = SegmentDatabase::builder()
        .cache_pages(cfg.cache_pages)
        .cache_shards(1)
        .index(cfg.kind)
        .on_device(Box::new(device))
        .build(current.clone())?;
    // `build` on an explicit device ends in save(): the durable image now
    // matches `current`.
    let mut durable_oracle = current.clone();

    let mut outcome = TortureOutcome {
        crashed: false,
        first_error: None,
        fault_trace: Vec::new(),
        injected: FaultStats::default(),
        live_queries_verified: 0,
        recovery_queries_verified: 0,
        saves: 0,
        recovered_len: 0,
    };

    handle.arm(derive_plan(cfg.seed));
    let mut wrng = SmallRng::seed_from_u64(cfg.seed ^ WORK_SALT);
    let dynamic = matches!(
        cfg.kind,
        IndexKind::TwoLevelBinary | IndexKind::TwoLevelInterval
    );
    let fault = |e: DbError, outcome: &mut TortureOutcome| {
        outcome.crashed = true;
        outcome.first_error = Some(e.to_string());
    };
    'work: for round in 0..cfg.rounds as u64 {
        if dynamic {
            for _ in 0..4 {
                let insert = wrng.gen_bool(0.7);
                if (insert || current.len() <= cfg.n / 2) && !pending.is_empty() {
                    let s = pending[pending.len() - 1];
                    match db.insert(s) {
                        Ok(()) => {
                            pending.pop();
                            current.push(s);
                        }
                        Err(e) => {
                            fault(e, &mut outcome);
                            break 'work;
                        }
                    }
                } else if current.len() > 1 {
                    let i = wrng.gen_range(0..current.len());
                    let s = current[i];
                    match db.remove(&s) {
                        Ok(_) => {
                            current.swap_remove(i);
                        }
                        Err(e) => {
                            fault(e, &mut outcome);
                            break 'work;
                        }
                    }
                }
            }
        }
        for q in query_battery(&current, 3, cfg.seed ^ QUERY_SALT ^ (round + 1)) {
            match db.query_canonical(&q) {
                Ok((hits, _)) => {
                    verify(
                        &hits,
                        &current,
                        &q,
                        "torture: live query diverged from oracle",
                    )?;
                    outcome.live_queries_verified += 1;
                }
                Err(e) => {
                    fault(e, &mut outcome);
                    break 'work;
                }
            }
        }
        if wrng.gen_bool(0.5) {
            match db.save() {
                Ok(()) => {
                    durable_oracle = current.clone();
                    outcome.saves += 1;
                }
                Err(e) => {
                    fault(e, &mut outcome);
                    break 'work;
                }
            }
        }
    }
    drop(db);

    // Post-crash restart: reopen whatever the last successful sync left.
    let durable = handle.recover()?;
    let rdb = SegmentDatabase::open_device(durable, cfg.cache_pages, 1)?;
    for q in query_battery(&durable_oracle, 20, cfg.seed ^ QUERY_SALT) {
        let (hits, _) = rdb.query_canonical(&q)?;
        verify(
            &hits,
            &durable_oracle,
            &q,
            "torture: recovered query diverged from oracle",
        )?;
        outcome.recovery_queries_verified += 1;
    }
    rdb.validate()?;

    outcome.fault_trace = handle.trace();
    outcome.injected = handle.stats();
    outcome.recovered_len = rdb.len();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_scenario_recovers_and_replays() {
        let cfg = TortureConfig::new(IndexKind::TwoLevelBinary, 1);
        let a = run_scenario(&cfg).unwrap();
        let b = run_scenario(&cfg).unwrap();
        assert_eq!(a, b, "same config must replay the identical outcome");
        assert!(a.recovery_queries_verified >= 20);
        assert_eq!(trace_digest(&a.fault_trace), trace_digest(&b.fault_trace));
    }

    #[test]
    fn static_kinds_survive_pure_crash_plans() {
        for kind in [IndexKind::FullScan, IndexKind::StabThenFilter] {
            let out = run_scenario(&TortureConfig::new(kind, 3)).unwrap();
            assert!(out.recovery_queries_verified >= 20, "{kind:?}");
        }
    }
}
