//! Dedicated Solution-2 (Theorem 2) tests: oracle agreement on every
//! workload family, boundary-exact probes, the bridges on/off ablation,
//! insert storms with validation, and complexity-shape checks.

use segdb_core::interval2l::{Interval2LConfig, TwoLevelInterval};
use segdb_core::report::ids;
use segdb_core::FullScan;
use segdb_geom::gen::{self, vertical_queries, Family};
use segdb_geom::query::scan_oracle;
use segdb_geom::{Segment, VerticalQuery};
use segdb_pager::{Pager, PagerConfig};

fn pager(page: usize) -> Pager {
    Pager::new(PagerConfig {
        page_size: page,
        cache_pages: 0,
    })
}

fn check(set: &[Segment], t: &TwoLevelInterval, p: &Pager, queries: &[VerticalQuery], tag: &str) {
    for q in queries {
        let (hits, trace) = t.query(p, q).unwrap();
        let expect = ids(&scan_oracle(set, q));
        let got = ids(&segdb_core::report::normalize(hits));
        assert_eq!(got, expect, "{tag} {q:?}");
        assert_eq!(trace.hits as usize, expect.len(), "{tag}");
    }
}

fn boundary_queries(set: &[Segment]) -> Vec<VerticalQuery> {
    let mut qs = Vec::new();
    for s in set.iter().take(15) {
        qs.push(VerticalQuery::Line { x: s.a.x });
        qs.push(VerticalQuery::Line { x: s.b.x });
        qs.push(VerticalQuery::segment(s.a.x, s.a.y - 3, s.a.y + 3));
        qs.push(VerticalQuery::RayUp {
            x: s.b.x,
            y0: s.b.y,
        });
        qs.push(VerticalQuery::RayDown {
            x: s.b.x,
            y0: s.b.y,
        });
    }
    qs
}

#[test]
fn matches_oracle_on_all_families_and_pages() {
    for family in Family::ALL {
        let set = family.generate(600, 11);
        for page in [512usize, 1024, 4096] {
            let p = pager(page);
            let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap();
            t.validate(&p).unwrap();
            assert_eq!(t.len(), set.len() as u64);
            let mut queries = vertical_queries(&set, 25, 100, 31);
            queries.extend(boundary_queries(&set));
            check(&set, &t, &p, &queries, family.name());
        }
    }
}

#[test]
fn bridges_off_matches_bridges_on() {
    let set = gen::strips(3000, 1 << 15, 16, 500, 7); // long-heavy: big G lists
    let queries = vertical_queries(&set, 40, 60, 3);
    let p1 = pager(1024);
    let on = TwoLevelInterval::build(&p1, Interval2LConfig::default(), set.clone()).unwrap();
    let p2 = pager(1024);
    let off_cfg = Interval2LConfig {
        bridges: false,
        ..Interval2LConfig::default()
    };
    let off = TwoLevelInterval::build(&p2, off_cfg, set.clone()).unwrap();
    let (mut on_io, mut off_io, mut jumps) = (0u64, 0u64, 0u32);
    for q in &queries {
        let (h1, t1) = on.query(&p1, q).unwrap();
        let (h2, t2) = off.query(&p2, q).unwrap();
        assert_eq!(ids(&h1), ids(&h2));
        assert_eq!(ids(&h1), ids(&scan_oracle(&set, q)));
        on_io += t1.io.reads;
        off_io += t2.io.reads;
        jumps += t1.bridge_jumps;
    }
    assert!(jumps > 0, "bridged queries actually took bridge jumps");
    // Bridged navigation must not be slower overall.
    assert!(
        on_io <= off_io + off_io / 8,
        "bridges on {on_io} vs off {off_io}"
    );
    // Space: augment-free bridges cost nothing; the bridged build may
    // still differ slightly from tree shape — allow 5%.
    let (s1, s2) = (p1.live_pages(), p2.live_pages());
    assert!(s1 <= s2 + s2 / 20 + 4, "space on {s1} vs off {s2}");
}

#[test]
fn incremental_insert_matches_oracle_and_validates() {
    let set = gen::mixed_map(500, 41);
    let p = pager(512);
    let mut t = TwoLevelInterval::build(&p, Interval2LConfig::default(), vec![]).unwrap();
    for (i, s) in set.iter().enumerate() {
        t.insert(&p, *s).unwrap();
        if i % 120 == 0 {
            t.validate(&p).unwrap();
        }
    }
    t.validate(&p).unwrap();
    assert_eq!(t.len(), set.len() as u64);
    let mut queries = vertical_queries(&set, 25, 120, 43);
    queries.extend(boundary_queries(&set));
    check(&set, &t, &p, &queries, "incremental");
    // Everything is retrievable.
    let mut all = ids(&t.scan_all(&p).unwrap());
    all.dedup();
    assert_eq!(all.len(), set.len());
}

#[test]
fn mixed_build_then_insert_long_segments() {
    // Inserting long segments exercises G insertion + bridge rebuilds.
    let base = gen::strips(800, 1 << 14, 16, 600, 3);
    let p = pager(1024);
    let mut t = TwoLevelInterval::build(&p, Interval2LConfig::default(), base.clone()).unwrap();
    let mut all = base.clone();
    for i in 0..200u64 {
        let y = (900 + i as i64) * 16;
        let s = Segment::new(10_000 + i, (i as i64 * 7, y), (1 << 14, y + 1)).unwrap();
        t.insert(&p, s).unwrap();
        all.push(s);
    }
    t.validate(&p).unwrap();
    check(
        &all,
        &t,
        &p,
        &vertical_queries(&all, 30, 80, 17),
        "long-inserts",
    );
}

#[test]
fn query_io_beats_full_scan_and_first_level_is_shallow() {
    let p = pager(4096);
    let set = gen::strips(40_000, 1 << 18, 16, 250, 13);
    let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap();
    let fs = FullScan::build(&p, &set).unwrap();
    let queries = vertical_queries(&set, 20, 10, 19);
    let (mut t_io, mut fs_io, mut max_depth) = (0u64, 0u64, 0u32);
    for q in &queries {
        let (h1, tr1) = t.query(&p, q).unwrap();
        let (h2, tr2) = fs.query(&p, q).unwrap();
        assert_eq!(ids(&h1), ids(&h2));
        t_io += tr1.io.reads;
        fs_io += tr2.io.reads;
        max_depth = max_depth.max(tr1.first_level_nodes);
    }
    assert!(t_io * 10 < fs_io, "index {t_io} vs scan {fs_io}");
    // With k ≈ 33 at 4 KiB pages and 40k segments, the first level is
    // 2–3 levels deep (log_k n), far below log₂ n ≈ 15.
    assert!(max_depth <= 5, "first-level depth {max_depth}");
}

#[test]
fn space_is_n_log_b_ish() {
    let p = pager(1024);
    let set = gen::strips(20_000, 1 << 16, 16, 300, 23);
    let before = p.live_pages();
    let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap();
    let used = p.live_pages() - before;
    let b = segdb_core::chain::cap(1024);
    let n_blocks = set.len() / b + 1;
    let log_b = (b as f64).log2().ceil() as usize;
    assert!(
        used < 14 * n_blocks * log_b,
        "used {used}, n/B·log₂B = {}",
        n_blocks * log_b
    );
    t.destroy(&p).unwrap();
    assert_eq!(p.live_pages(), before);
}

#[test]
fn empty_and_degenerate() {
    let p = pager(512);
    let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), vec![]).unwrap();
    t.validate(&p).unwrap();
    let (hits, _) = t.query(&p, &VerticalQuery::Line { x: 0 }).unwrap();
    assert!(hits.is_empty());
    // A single vertical segment (exercises C_i paths).
    let v = vec![Segment::new(1, (5, 0), (5, 10)).unwrap()];
    let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), v.clone()).unwrap();
    check(
        &v,
        &t,
        &p,
        &[
            VerticalQuery::Line { x: 5 },
            VerticalQuery::segment(5, 10, 20),
            VerticalQuery::segment(5, 11, 20),
            VerticalQuery::Line { x: 4 },
        ],
        "single-vertical",
    );
}

#[test]
fn tiny_fanout_forced() {
    // Force k = 2 to stress boundary/edge-slab logic on deep trees.
    let set = gen::mixed_map(400, 51);
    let p = pager(4096);
    let cfg = Interval2LConfig {
        fanout: Some(2),
        ..Interval2LConfig::default()
    };
    let t = TwoLevelInterval::build(&p, cfg, set.clone()).unwrap();
    t.validate(&p).unwrap();
    let mut queries = vertical_queries(&set, 30, 100, 3);
    queries.extend(boundary_queries(&set));
    check(&set, &t, &p, &queries, "k=2");
}

#[test]
fn lazy_deletion_extension() {
    let set = gen::mixed_map(400, 0xDE1);
    let p = pager(512);
    let mut t = TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap();
    // Remove a third; query correctness against the survivor oracle.
    let (gone, kept): (Vec<Segment>, Vec<Segment>) = set.iter().partition(|s| s.id % 3 == 0);
    for s in &gone {
        assert!(t.remove(&p, s).unwrap(), "missing {s}");
        assert!(!t.remove(&p, s).unwrap(), "double remove {s}");
    }
    t.validate(&p).unwrap();
    assert_eq!(t.len() as usize, kept.len());
    check(
        &kept,
        &t,
        &p,
        &vertical_queries(&kept, 30, 120, 0xDE1),
        "post-delete",
    );
    // Deleting enough triggers the rebuild that purges tombstones.
    let (gone2, kept2): (Vec<Segment>, Vec<Segment>) = kept.iter().partition(|s| s.id % 2 == 0);
    for s in &gone2 {
        assert!(t.remove(&p, s).unwrap());
    }
    t.validate(&p).unwrap();
    assert_eq!(t.len() as usize, kept2.len());
    check(
        &kept2,
        &t,
        &p,
        &vertical_queries(&kept2, 20, 150, 0xDE2),
        "post-rebuild",
    );
    // Re-inserting a previously tombstoned id must resurface it.
    let back = gone[0];
    t.insert(&p, back).unwrap();
    t.validate(&p).unwrap();
    let mut expect = kept2.clone();
    expect.push(back);
    check(
        &expect,
        &t,
        &p,
        &[VerticalQuery::Line { x: back.a.x }],
        "resurrect",
    );
}

#[test]
fn interleaved_insert_delete_storm() {
    let set = gen::strips(600, 1 << 13, 16, 300, 0xF00);
    let p = pager(512);
    let mut t = TwoLevelInterval::build(&p, Interval2LConfig::default(), vec![]).unwrap();
    let mut live: Vec<Segment> = Vec::new();
    for (i, s) in set.iter().enumerate() {
        t.insert(&p, *s).unwrap();
        live.push(*s);
        if i % 4 == 3 {
            let kill = live.remove((i * 31) % live.len());
            assert!(t.remove(&p, &kill).unwrap());
        }
        if i % 150 == 149 {
            t.validate(&p).unwrap();
            check(
                &live,
                &t,
                &p,
                &vertical_queries(&live, 10, 80, i as u64),
                "storm",
            );
        }
    }
    t.validate(&p).unwrap();
    assert_eq!(t.len() as usize, live.len());
}
