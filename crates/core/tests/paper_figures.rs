//! Fidelity tests against the paper's worked figures.
//!
//! The scanned figures carry no coordinates, so these tests rebuild each
//! figure's *situation* — the construction rules it illustrates — and
//! assert the structural facts the paper states about it.

use segdb_core::binary2l::{Binary2LConfig, TwoLevelBinary};
use segdb_core::interval2l::{Interval2LConfig, TwoLevelInterval};
use segdb_core::report::ids;
use segdb_geom::query::scan_oracle;
use segdb_geom::{Segment, VerticalQuery};
use segdb_pager::{Pager, PagerConfig};

fn pager(page: usize) -> Pager {
    Pager::new(PagerConfig {
        page_size: page,
        cache_pages: 0,
    })
}

fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
    Segment::new(id, a, b).unwrap()
}

/// Figure 4: "(a) A set of 7 NCT segments; (b) the corresponding data
/// structure (B = 2)". Seven segments in the three §3 roles: on the
/// root's base line, crossing it, and strictly to either side.
#[test]
fn figure_4_solution1_decomposition() {
    // x-median of endpoints will be 50 (constructed so).
    let set = vec![
        seg(1, (10, 10), (90, 12)), // crosses bl(root)=50
        seg(2, (40, 30), (60, 34)), // crosses
        seg(3, (50, 40), (50, 55)), // lies ON the base line (vertical)
        seg(4, (0, 70), (30, 72)),  // strictly left
        seg(5, (5, 90), (45, 88)),  // strictly left
        seg(6, (55, 70), (95, 71)), // strictly right
        seg(7, (60, 90), (99, 93)), // strictly right
    ];
    // Tiny page so the leaves keep B = 2-ish capacity like the figure.
    let p = pager(256);
    let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
    t.validate(&p).unwrap();
    let st = t.describe(&p).unwrap();
    // The construction facts of §3 the figure illustrates:
    assert_eq!(st.on_line, 1, "one segment lies on a base line (C)");
    // Segments 1 and 2 cross the root line; the side sets are small
    // enough to be leaves, so no deeper crossings.
    assert_eq!(st.crossing, 2, "two segments split into L(v)/R(v)");
    assert_eq!(st.in_leaves, 4, "the rest fall through to leaves");
    assert_eq!(st.internal_nodes, 1, "a single base-line node suffices");

    // Query along the base line finds exactly C ∪ crossing-at-base.
    let q = VerticalQuery::Line { x: 50 };
    let (hits, _) = t.query(&p, &q).unwrap();
    assert_eq!(ids(&hits), vec![1, 2, 3]);
    // Thin window isolating the on-line segment.
    let q = VerticalQuery::segment(50, 45, 50);
    let (hits, _) = t.query(&p, &q).unwrap();
    assert_eq!(ids(&hits), vec![3]);
}

/// Figure 5 situation (§4.1): segments that intersect no slab boundary
/// are passed to the next level; the rest stay in the node.
#[test]
fn figure_5_slab_assignment() {
    // A wide spanner, a boundary-crosser, and slab-confined fillers.
    // A small page forces the first level to actually decompose.
    let mut set = vec![
        seg(1001, (0, 10_000), (100, 10_001)), // spans everything → long fragment
        seg(1002, (25, 10_030), (65, 10_031)), // crosses ≥ 1 boundary
    ];
    // Three clusters of short segments strictly inside slabs.
    let mut id = 0u64;
    for base in [0i64, 31, 95] {
        for i in 0..12i64 {
            let lo = base + (i % 4);
            set.push(seg(
                id,
                (lo, 100 * id as i64),
                (lo + 2, 100 * id as i64 + 1),
            ));
            id += 1;
        }
    }
    let p = pager(512);
    let t = TwoLevelInterval::build(&p, Interval2LConfig::default(), set.clone()).unwrap();
    t.validate(&p).unwrap();
    let st = t.describe(&p).unwrap();
    assert!(st.internal_nodes >= 1, "the set no longer fits one leaf");
    assert!(
        st.crossing >= 2,
        "the spanner and the crosser stay at slab nodes"
    );
    assert!(
        st.in_leaves >= 1,
        "slab-confined segments are passed to the next level"
    );
    assert_eq!(
        st.on_line + st.crossing + st.in_leaves,
        set.len() as u64,
        "every segment is in exactly one role"
    );
    // Everything still answers correctly.
    for q in [
        VerticalQuery::Line { x: 2 },
        VerticalQuery::Line { x: 32 },
        VerticalQuery::Line { x: 97 },
    ] {
        let (hits, _) = t.query(&p, &q).unwrap();
        assert_eq!(ids(&hits), ids(&scan_oracle(&set, &q)), "{q:?}");
    }
}

/// Figure 6 situation (§4.2): a segment completely spanning slabs is
/// split into one long (central) fragment and at most two short ones;
/// a segment crossing one boundary splits into two short fragments.
#[test]
fn figure_6_fragment_split() {
    let p = pager(1024);
    let cfg = Interval2LConfig {
        fanout: Some(4),
        ..Interval2LConfig::default()
    };
    // A long spanner plus enough filler that the root decomposes with
    // real slabs (1 KiB pages → leaf capacity ~25).
    let mut set = vec![
        seg(1000, (0, 100_000), (200, 100_001)), // spans all slabs
    ];
    for i in 0..40u64 {
        let x = 5 * i as i64;
        set.push(seg(i, (x, 10 * i as i64), (x + 3, 10 * i as i64 + 1)));
    }
    let t = TwoLevelInterval::build(&p, cfg, set.clone()).unwrap();
    t.validate(&p).unwrap();
    let st = t.describe(&p).unwrap();
    assert!(st.internal_nodes >= 1);
    // The spanner contributes ≥ 1 long-fragment record; a long fragment
    // has at most two allocation nodes per level of G (paper §4.2), and
    // G's height here is ≤ log₂(4) + 1.
    assert!(st.long_fragment_records >= 1);
    assert!(
        st.long_fragment_records <= 8,
        "allocation records {} exceed 2 per G level for one spanner",
        st.long_fragment_records
    );
    // And the spanner is found from every slab.
    for x in [1i64, 60, 120, 199] {
        let (hits, _) = t
            .query(&p, &VerticalQuery::segment(x, 99_990, 100_010))
            .unwrap();
        assert!(ids(&hits).contains(&1000), "x={x}");
    }
}

/// Figure 7 situation (§4.3): bridges with the d-property. After a
/// build with bridges, every parent multislab list has a bridge pointer
/// at least every ~d+2 elements (our pointer-based substitution's
/// density guarantee), and bridged queries take jumps.
#[test]
fn figure_7_bridge_density() {
    // Long-heavy workload so multislab lists are deep.
    let set = segdb_geom::gen::strips(4000, 1 << 14, 16, 800, 0xF16);
    let p = pager(2048);
    for d in [2usize, 4] {
        let cfg = Interval2LConfig {
            bridge_d: d,
            ..Interval2LConfig::default()
        };
        let t = TwoLevelInterval::build(&p, cfg, set.clone()).unwrap();
        let st = t.describe(&p).unwrap();
        if st.bridge_pointers == 0 {
            continue; // no parent/child pairs materialized at this size
        }
        assert!(
            st.max_bridge_gap as usize <= 2 * d + 4,
            "d={d}: max gap {} violates the d-property",
            st.max_bridge_gap
        );
        // Navigation actually uses them.
        let queries = segdb_geom::gen::vertical_queries(&set, 30, 10, 3);
        let mut jumps = 0;
        for q in &queries {
            let (_, trace) = t.query(&p, q).unwrap();
            jumps += trace.bridge_jumps;
        }
        assert!(jumps > 0, "d={d}: no bridge jumps taken");
    }
}

/// Footnote 4: "the construction guarantees that each node is contained
/// in exactly one block" — no structure may ever produce a node image
/// larger than a page (the codec errors if so; building large sets on
/// small pages exercises it).
#[test]
fn footnote_4_nodes_fit_blocks() {
    let set = segdb_geom::gen::mixed_map(2000, 0xF4);
    for page in [256usize, 512] {
        let p = pager(page);
        let t = TwoLevelBinary::build(&p, Binary2LConfig::default(), set.clone()).unwrap();
        t.validate(&p).unwrap();
        let p2 = pager(page.max(512));
        let t2 = TwoLevelInterval::build(&p2, Interval2LConfig::default(), set.clone()).unwrap();
        t2.validate(&p2).unwrap();
    }
}
