//! Trace invariants: the observability layer's numbers must match the
//! paper's structural guarantees, and attaching it must not change what
//! it measures.

use segdb_core::{IndexKind, SegmentDatabase};
use segdb_geom::gen::{mixed_map, vertical_queries};
use segdb_geom::{Segment, VerticalQuery};

const KINDS: [IndexKind; 4] = [
    IndexKind::TwoLevelBinary,
    IndexKind::TwoLevelInterval,
    IndexKind::FullScan,
    IndexKind::StabThenFilter,
];

fn workload(n: usize, seed: u64) -> (Vec<Segment>, Vec<VerticalQuery>) {
    let set = mixed_map(n, seed);
    let queries = vertical_queries(&set, 60, 120, seed + 1);
    (set, queries)
}

fn build(kind: IndexKind, set: &[Segment], cache_pages: usize) -> SegmentDatabase {
    SegmentDatabase::builder()
        .page_size(1024)
        .cache_pages(cache_pages)
        .index(kind)
        .build(set.to_vec())
        .unwrap()
}

/// Solution 1's first level is a balanced binary tree over the segment
/// endpoints' x-coordinates, so a query touches at most one root-to-leaf
/// path: `first_level_nodes ≤ ⌈log₂(2N)⌉ + c`.
#[test]
fn solution1_first_level_visits_are_logarithmic() {
    let (set, queries) = workload(2000, 41);
    let db = build(IndexKind::TwoLevelBinary, &set, 0);
    let bound = (2.0 * set.len() as f64).log2().ceil() as u32 + 3;
    for q in &queries {
        let (_, trace) = db.query_canonical(q).unwrap();
        assert!(
            trace.first_level_nodes <= bound,
            "{} first-level nodes > bound {bound} for {q:?}",
            trace.first_level_nodes
        );
    }
}

/// Fractional-cascading bridges exist only in the Theorem-2 structure:
/// every other index must report zero bridge jumps, always.
#[test]
fn bridge_jumps_only_in_two_level_interval() {
    let (set, queries) = workload(1200, 43);
    for kind in KINDS {
        if kind == IndexKind::TwoLevelInterval {
            continue;
        }
        let db = build(kind, &set, 0);
        for q in &queries {
            let (_, trace) = db.query_canonical(q).unwrap();
            assert_eq!(trace.bridge_jumps, 0, "{kind:?} reported a bridge jump");
        }
    }
}

/// `cache_pages = 0` is the paper's pure I/O model: no buffer pool, so a
/// query can never report a cache hit.
#[test]
fn no_cache_hits_without_a_cache() {
    let (set, queries) = workload(1200, 47);
    for kind in KINDS {
        let db = build(kind, &set, 0);
        for q in &queries {
            let (_, trace) = db.query_canonical(q).unwrap();
            assert_eq!(trace.io.cache_hits, 0, "{kind:?} hit a nonexistent cache");
        }
    }
}

/// Both baselines go through `StatScope`, so their traces carry real I/O
/// numbers (regression guard: `trace.io` must never be left defaulted).
#[test]
fn baseline_traces_carry_io() {
    let (set, queries) = workload(1500, 53);
    for kind in [IndexKind::FullScan, IndexKind::StabThenFilter] {
        let db = build(kind, &set, 0);
        let mut total = 0u64;
        for q in &queries {
            let (_, trace) = db.query_canonical(q).unwrap();
            total += trace.io.total_io();
        }
        assert!(total > 0, "{kind:?} queries reported zero I/O");
    }
}

/// Turning tracing and metrics on must not change the measured I/O: the
/// disabled emit path is a branch, the enabled path only copies into a
/// thread-local ring, and neither touches the pager.
#[test]
fn observability_does_not_change_io_counts() {
    let (set, queries) = workload(1500, 59);
    for kind in KINDS {
        let plain = build(kind, &set, 0);
        let mut observed = build(kind, &set, 0);
        observed.set_observability(true);
        for q in &queries {
            let (hits_off, t_off) = plain.query_canonical(q).unwrap();
            let (hits_on, t_on, summary) = observed.traced_query(q).unwrap();
            assert_eq!(hits_off, hits_on, "{kind:?} answers differ");
            assert_eq!(t_off.io, t_on.io, "{kind:?} I/O differs with obs on");
            assert_eq!(
                summary.page_reads, t_on.io.reads,
                "{kind:?} span events disagree with the I/O counters"
            );
            assert_eq!(
                summary.bridge_jumps,
                u64::from(t_on.bridge_jumps),
                "{kind:?} bridge-jump events disagree with the trace counter"
            );
        }
    }
}

/// With observability on, the cost fitter warms up and judges every
/// query; an honest workload stays inside the fitted envelope.
#[test]
fn cost_verifier_warms_up_and_passes_honest_queries() {
    let (set, queries) = workload(1500, 61);
    for kind in KINDS {
        let mut db = build(kind, &set, 0);
        db.set_observability(true);
        let mut verdicts = 0u32;
        for q in &queries {
            let (_, trace) = db.query_canonical(q).unwrap();
            if let Some(v) = trace.cost {
                verdicts += 1;
                assert!(
                    v.within,
                    "{kind:?}: honest query flagged (measured {} > bound {:.1})",
                    v.measured, v.bound
                );
            }
        }
        assert!(verdicts > 0, "{kind:?}: fitter never warmed up");
        let snapshot = db.metrics_json().unwrap();
        let violations = snapshot
            .get("cost_model")
            .and_then(|c| c.get("violations"))
            .and_then(|v| v.as_f64());
        assert_eq!(violations, Some(0.0), "{kind:?}");
    }
}
