//! Interval-tree node layout.
//!
//! ```text
//! leaf:     [tag=1:u8][count:u16][intervals: count × 24]
//! internal: [tag=2:u8][k:u16]
//!           [boundaries: k × i64]
//!           [children: (k+1) × u32]
//!           [left TreeState:16][right TreeState:16][mslab TreeState:16]
//!           [mslab counts: k(k−1)/2 × u16]
//! ```
//!
//! The multislab occupancy directory (`mslab counts`) lives inside the
//! node page, so deciding *which* multislab lists to drain costs no I/O —
//! the property that keeps stabbing output-sensitive (§ lib docs).

use crate::interval::Interval;
use segdb_bptree::{Record, TreeState};
use segdb_pager::{ByteReader, ByteWriter, PageId, PagerError, Result};

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// Decoded interval-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum ItNode {
    /// A bucket of at most [`leaf_capacity`] intervals.
    Leaf {
        /// Unordered intervals.
        intervals: Vec<Interval>,
    },
    /// A slab node.
    Internal(Box<InternalNode>),
}

/// Internal node payload.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalNode {
    /// `k` strictly increasing boundary abscissae.
    pub boundaries: Vec<i64>,
    /// `k + 1` child pages (one per slab).
    pub children: Vec<PageId>,
    /// Left-stub lists, keyed `(slab, lo, id)`.
    pub left: TreeState,
    /// Right-stub lists, keyed `(slab, −hi, id)`.
    pub right: TreeState,
    /// Multislab lists, keyed `(mslab, id)`.
    pub mslab: TreeState,
    /// Occupancy count per linearized multislab.
    pub mslab_counts: Vec<u16>,
}

/// Max intervals in a leaf page.
pub fn leaf_capacity(page_size: usize) -> usize {
    page_size.saturating_sub(3) / Interval::ENCODED_SIZE
}

/// Max boundary count `k` whose internal node fits one page.
pub fn max_fanout(page_size: usize) -> usize {
    // bytes(k) = 3 + 8k + 4(k+1) + 48 + k(k−1)  (counts: k(k−1)/2 × 2)
    let mut k = 1usize;
    while internal_bytes(k + 1) <= page_size {
        k += 1;
    }
    k
}

fn internal_bytes(k: usize) -> usize {
    3 + 8 * k + 4 * (k + 1) + 3 * TreeState::ENCODED_SIZE + k * (k - 1)
}

/// Number of multislab pairs `(a, b)`, `1 ≤ a ≤ b ≤ k−1`.
pub fn mslab_count(k: usize) -> usize {
    if k < 2 {
        0
    } else {
        (k - 1) * k / 2
    }
}

/// Linearized index of multislab `(a, b)` (middle spans slabs `a..=b`),
/// with `1 ≤ a ≤ b ≤ k−1`.
pub fn mslab_index(k: usize, a: usize, b: usize) -> usize {
    debug_assert!(1 <= a && a <= b && b < k, "mslab ({a},{b}) of k={k}");
    // Row a−1 starts after rows of lengths (k−1), (k−2), …
    let row = a - 1;
    let before = row * (k - 1) - row * (row.saturating_sub(1)) / 2;
    before + (b - a)
}

impl ItNode {
    /// Serialize into a zeroed page image.
    pub fn encode(&self, buf: &mut [u8]) -> Result<()> {
        let mut w = ByteWriter::new(buf);
        match self {
            ItNode::Leaf { intervals } => {
                w.u8(TAG_LEAF)?;
                w.u16(intervals.len() as u16)?;
                for iv in intervals {
                    iv.encode(&mut w)?;
                }
            }
            ItNode::Internal(n) => {
                let k = n.boundaries.len();
                if n.children.len() != k + 1 || n.mslab_counts.len() != mslab_count(k) {
                    return Err(PagerError::Corrupt("interval node arity"));
                }
                w.u8(TAG_INTERNAL)?;
                w.u16(k as u16)?;
                for &b in &n.boundaries {
                    w.i64(b)?;
                }
                for &c in &n.children {
                    w.u32(c)?;
                }
                n.left.encode(&mut w)?;
                n.right.encode(&mut w)?;
                n.mslab.encode(&mut w)?;
                for &c in &n.mslab_counts {
                    w.u16(c)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialize from a page image.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(buf);
        match r.u8()? {
            TAG_LEAF => {
                let count = r.u16()? as usize;
                let mut intervals = Vec::with_capacity(count);
                for _ in 0..count {
                    intervals.push(Interval::decode(&mut r)?);
                }
                Ok(ItNode::Leaf { intervals })
            }
            TAG_INTERNAL => {
                let k = r.u16()? as usize;
                let mut boundaries = Vec::with_capacity(k);
                for _ in 0..k {
                    boundaries.push(r.i64()?);
                }
                let mut children = Vec::with_capacity(k + 1);
                for _ in 0..=k {
                    children.push(r.u32()?);
                }
                let left = TreeState::decode(&mut r)?;
                let right = TreeState::decode(&mut r)?;
                let mslab = TreeState::decode(&mut r)?;
                let mut mslab_counts = Vec::with_capacity(mslab_count(k));
                for _ in 0..mslab_count(k) {
                    mslab_counts.push(r.u16()?);
                }
                Ok(ItNode::Internal(Box::new(InternalNode {
                    boundaries,
                    children,
                    left,
                    right,
                    mslab,
                    mslab_counts,
                })))
            }
            _ => Err(PagerError::Corrupt("unknown interval node tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mslab_index_is_a_bijection() {
        for k in 2..20usize {
            let mut seen = vec![false; mslab_count(k)];
            for a in 1..k {
                for b in a..k {
                    let i = mslab_index(k, a, b);
                    assert!(!seen[i], "collision at k={k} ({a},{b})");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "holes at k={k}");
        }
    }

    #[test]
    fn fanout_fits_page() {
        for page in [256usize, 512, 1024, 4096] {
            let k = max_fanout(page);
            assert!(internal_bytes(k) <= page, "page {page}");
            assert!(internal_bytes(k + 1) > page);
            assert!(k >= 2, "page {page} too small for an internal node");
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let n = ItNode::Leaf {
            intervals: vec![Interval::new(1, 0, 5), Interval::new(2, -3, 3)],
        };
        let mut buf = vec![0u8; 256];
        n.encode(&mut buf).unwrap();
        assert_eq!(ItNode::decode(&buf).unwrap(), n);
    }

    #[test]
    fn internal_roundtrip() {
        let k = 3;
        let n = ItNode::Internal(Box::new(InternalNode {
            boundaries: vec![10, 20, 30],
            children: vec![1, 2, 3, 4],
            left: TreeState {
                root: 9,
                height: 1,
                len: 4,
            },
            right: TreeState {
                root: 10,
                height: 0,
                len: 4,
            },
            mslab: TreeState {
                root: 11,
                height: 0,
                len: 1,
            },
            mslab_counts: vec![0; mslab_count(k)],
        }));
        let mut buf = vec![0u8; 256];
        n.encode(&mut buf).unwrap();
        assert_eq!(ItNode::decode(&buf).unwrap(), n);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let n = ItNode::Internal(Box::new(InternalNode {
            boundaries: vec![10],
            children: vec![1], // should be 2
            left: TreeState {
                root: 0,
                height: 0,
                len: 0,
            },
            right: TreeState {
                root: 0,
                height: 0,
                len: 0,
            },
            mslab: TreeState {
                root: 0,
                height: 0,
                len: 0,
            },
            mslab_counts: vec![],
        }));
        let mut buf = vec![0u8; 128];
        assert!(n.encode(&mut buf).is_err());
    }
}
