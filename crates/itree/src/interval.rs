//! Interval records and the orders their lists are kept in.

use segdb_bptree::{Record, RecordOrd};
use segdb_pager::{ByteReader, ByteWriter, Result};
use std::cmp::Ordering;

/// A closed 1-D interval `[lo, hi]` with a payload id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Left endpoint (inclusive). `lo ≤ hi`.
    pub lo: i64,
    /// Right endpoint (inclusive).
    pub hi: i64,
    /// Payload (segment id).
    pub id: u64,
}

impl Interval {
    /// Construct, normalizing endpoint order.
    pub fn new(id: u64, a: i64, b: i64) -> Self {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Interval { lo, hi, id }
    }

    /// Closed stabbing test.
    #[inline]
    pub fn contains(&self, x: i64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Closed overlap test.
    #[inline]
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        self.lo <= hi && lo <= self.hi
    }
}

/// An interval tagged with the slab (or linearized multislab) index it is
/// filed under inside one interval-tree node. The tag is the B⁺-tree's
/// primary sort dimension, so one tree holds all slabs' lists with each
/// list contiguous at the leaf level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedInterval {
    /// Slab index (stub lists) or linearized multislab index.
    pub tag: u16,
    /// The interval.
    pub iv: Interval,
}

impl Record for TaggedInterval {
    const ENCODED_SIZE: usize = 2 + 8 + 8 + 8;
    fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.u16(self.tag)?;
        w.i64(self.iv.lo)?;
        w.i64(self.iv.hi)?;
        w.u64(self.iv.id)
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(TaggedInterval {
            tag: r.u16()?,
            iv: Interval {
                lo: r.i64()?,
                hi: r.i64()?,
                id: r.u64()?,
            },
        })
    }
}

impl Record for Interval {
    const ENCODED_SIZE: usize = 24;
    fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.i64(self.lo)?;
        w.i64(self.hi)?;
        w.u64(self.id)
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Interval {
            lo: r.i64()?,
            hi: r.i64()?,
            id: r.u64()?,
        })
    }
}

/// Left-list order: `(tag, lo, id)` ascending — a stab at `x` scans the
/// slab's prefix while `lo ≤ x`.
#[derive(Debug, Default, Clone, Copy)]
pub struct LeftOrder;

impl RecordOrd<TaggedInterval> for LeftOrder {
    fn cmp_records(&self, a: &TaggedInterval, b: &TaggedInterval) -> Ordering {
        (a.tag, a.iv.lo, a.iv.id).cmp(&(b.tag, b.iv.lo, b.iv.id))
    }
}

/// Right-list order: `(tag, −hi, id)` — a stab at `x` scans the slab's
/// prefix while `hi ≥ x`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RightOrder;

impl RecordOrd<TaggedInterval> for RightOrder {
    fn cmp_records(&self, a: &TaggedInterval, b: &TaggedInterval) -> Ordering {
        (a.tag, std::cmp::Reverse(a.iv.hi), a.iv.id).cmp(&(
            b.tag,
            std::cmp::Reverse(b.iv.hi),
            b.iv.id,
        ))
    }
}

/// Multislab order: `(tag, id)` — every record of a spanning multislab is
/// reported, so only contiguity matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct MslabOrder;

impl RecordOrd<TaggedInterval> for MslabOrder {
    fn cmp_records(&self, a: &TaggedInterval, b: &TaggedInterval) -> Ordering {
        (a.tag, a.iv.id).cmp(&(b.tag, b.iv.id))
    }
}

/// Plain `(lo, id)` order for the [`crate::overlap::IntervalSet`] start
/// index.
#[derive(Debug, Default, Clone, Copy)]
pub struct StartOrder;

impl RecordOrd<Interval> for StartOrder {
    fn cmp_records(&self, a: &Interval, b: &Interval) -> Ordering {
        (a.lo, a.id).cmp(&(b.lo, b.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_normalizes_and_tests() {
        let iv = Interval::new(5, 9, 2);
        assert_eq!((iv.lo, iv.hi), (2, 9));
        assert!(iv.contains(2) && iv.contains(9) && iv.contains(5));
        assert!(!iv.contains(1) && !iv.contains(10));
        assert!(iv.overlaps(9, 20) && iv.overlaps(-5, 2) && iv.overlaps(4, 5));
        assert!(!iv.overlaps(10, 20) && !iv.overlaps(-5, 1));
    }

    #[test]
    fn tagged_roundtrip() {
        let t = TaggedInterval {
            tag: 300,
            iv: Interval::new(1, -5, 5),
        };
        let mut buf = vec![0u8; TaggedInterval::ENCODED_SIZE];
        t.encode(&mut ByteWriter::new(&mut buf)).unwrap();
        assert_eq!(
            TaggedInterval::decode(&mut ByteReader::new(&buf)).unwrap(),
            t
        );
    }

    #[test]
    fn orders() {
        let a = TaggedInterval {
            tag: 1,
            iv: Interval::new(1, 0, 10),
        };
        let b = TaggedInterval {
            tag: 1,
            iv: Interval::new(2, 3, 8),
        };
        assert_eq!(LeftOrder.cmp_records(&a, &b), Ordering::Less); // lo 0 < 3
        assert_eq!(RightOrder.cmp_records(&a, &b), Ordering::Less); // hi 10 > 8 → first
        let c = TaggedInterval {
            tag: 0,
            iv: Interval::new(9, 100, 200),
        };
        assert_eq!(LeftOrder.cmp_records(&c, &a), Ordering::Less); // tag dominates
        assert_eq!(MslabOrder.cmp_records(&a, &b), Ordering::Less); // id 1 < 2
    }
}
