#![warn(missing_docs)]

//! # segdb-itree — an external-memory interval tree (stabbing queries)
//!
//! The paper leans on the external interval tree of Arge & Vitter \[3\] in
//! two places:
//!
//! * the structures `C(v)` / `Cᵢ` storing segments that *lie on* a base
//!   line (§3, §4.2) — 1-dimensional intervals on that line, queried for
//!   overlap with the query segment's ordinate range;
//! * as the **first-level structure** of the improved solution (§4.1),
//!   whose slab decomposition `segdb-core` re-implements directly on its
//!   own nodes.
//!
//! This crate provides the 1-D structure: a balanced `k`-ary tree over
//! endpoint quantiles. Each internal node owns `k` boundary abscissae
//! partitioning its range into `k+1` slabs; an interval is stored at the
//! *topmost* node where it touches a boundary, split into
//!
//! * a **left stub** (left list of the slab holding its left endpoint,
//!   sorted ascending by left endpoint),
//! * a **right stub** (right list of the slab holding its right endpoint,
//!   sorted descending by right endpoint),
//! * a **middle part** spanning complete slabs, recorded in a multislab
//!   list.
//!
//! A stabbing query at `x` descends one root-to-leaf path; at each node it
//! prefix-scans two stub lists (output-sensitive by sort order) and drains
//! every multislab list spanning `x`'s slab, guided by an in-page
//! occupancy directory.
//!
//! ## Deviations from \[3\] (documented per DESIGN.md)
//!
//! * Fanout is `k ≈ √(page bytes / 8)` rather than `Θ(B)`, so the node's
//!   `O(k²)` multislab directory shares the node page — `O(log_B n)`
//!   height is preserved up to a constant factor of 2.
//! * The "corner structure" for under-full multislab lists is omitted: a
//!   stab query pays ≥ 1 I/O per *non-empty* multislab list it drains,
//!   each of which contributes ≥ 1 output, so the reporting term is
//!   `O(t + #lists)` instead of a pure `O(t)`. The benchmark suite
//!   measures this slack directly (E10).
//! * All three per-node lists live in one B⁺-tree each, keyed by
//!   `(slab/multislab, endpoint, id)`.
//!
//! Insertions locate the owning node (`O(log_B n)`) and update the node's
//! B⁺-trees; leaves that overflow are split in place by rebuilding the
//! leaf into a subtree. Deletions update lists and leave the skeleton
//! untouched (weight rebalance happens at rebuild, as in the paper's
//! amortized arguments).

pub mod interval;
pub mod node;
pub mod overlap;
pub mod tree;

pub use interval::Interval;
pub use overlap::IntervalSet;
pub use tree::{IntervalTree, IntervalTreeConfig};
