//! The external interval tree: build, stab, insert, remove, validate.

use crate::interval::{Interval, LeftOrder, MslabOrder, RightOrder, TaggedInterval};
use crate::node::{leaf_capacity, max_fanout, mslab_count, mslab_index, InternalNode, ItNode};
use segdb_bptree::BPlusTree;
use segdb_pager::{ByteReader, ByteWriter, PageId, Pager, PagerError, Result};
use std::cmp::Ordering;
use std::ops::ControlFlow;

/// Construction knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalTreeConfig {
    /// Boundary count per internal node; `None` = the page-size maximum.
    pub fanout: Option<usize>,
}

/// Serializable identity of an interval tree (stored by parent
/// structures; 12 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItState {
    /// Root page.
    pub root: PageId,
    /// Stored interval count.
    pub len: u64,
}

impl ItState {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = 12;

    /// Serialize.
    pub fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.u32(self.root)?;
        w.u64(self.len)
    }

    /// Deserialize.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ItState {
            root: r.u32()?,
            len: r.u64()?,
        })
    }
}

/// External interval tree over closed 1-D intervals. See crate docs.
///
/// ```
/// use segdb_pager::{Pager, PagerConfig};
/// use segdb_itree::{Interval, IntervalTree, IntervalTreeConfig};
///
/// let pager = Pager::new(PagerConfig::default());
/// let tree = IntervalTree::build(&pager, IntervalTreeConfig::default(), vec![
///     Interval::new(1, 0, 10),
///     Interval::new(2, 5, 7),
///     Interval::new(3, 20, 30),
/// ]).unwrap();
/// let mut ids: Vec<u64> = tree.stab(&pager, 6).unwrap().iter().map(|iv| iv.id).collect();
/// ids.sort();
/// assert_eq!(ids, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct IntervalTree {
    root: PageId,
    len: u64,
    leaf_cap: usize,
    fanout: usize,
}

impl IntervalTree {
    /// Build from an arbitrary interval collection.
    pub fn build(pager: &Pager, cfg: IntervalTreeConfig, intervals: Vec<Interval>) -> Result<Self> {
        let leaf_cap = leaf_capacity(pager.page_size());
        let hard_max = max_fanout(pager.page_size());
        let fanout = cfg.fanout.map_or(hard_max, |f| f.min(hard_max)).max(2);
        if leaf_cap < 2 {
            return Err(PagerError::PageOverflow {
                what: "interval tree leaf",
                requested: 2,
                capacity: leaf_cap,
            });
        }
        let len = intervals.len() as u64;
        let root = build_node(pager, leaf_cap, fanout, intervals)?;
        Ok(IntervalTree {
            root,
            len,
            leaf_cap,
            fanout,
        })
    }

    /// Create empty.
    pub fn new(pager: &Pager, cfg: IntervalTreeConfig) -> Result<Self> {
        Self::build(pager, cfg, Vec::new())
    }

    /// Reconstruct from a serialized [`ItState`].
    pub fn attach(pager: &Pager, cfg: IntervalTreeConfig, state: ItState) -> Result<Self> {
        let leaf_cap = leaf_capacity(pager.page_size());
        let hard_max = max_fanout(pager.page_size());
        let fanout = cfg.fanout.map_or(hard_max, |f| f.min(hard_max)).max(2);
        Ok(IntervalTree {
            root: state.root,
            len: state.len,
            leaf_cap,
            fanout,
        })
    }

    /// The serializable identity.
    pub fn state(&self) -> ItState {
        ItState {
            root: self.root,
            len: self.len,
        }
    }

    /// Stored interval count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Report every interval containing `x` (closed), appending to `out`.
    pub fn stab_into(&self, pager: &Pager, x: i64, out: &mut Vec<Interval>) -> Result<()> {
        let _ = self.stab_ctl(pager, x, &mut |iv| {
            out.push(*iv);
            ControlFlow::Continue(())
        })?;
        Ok(())
    }

    /// Stream every interval containing `x` (closed) into `f`. When `f`
    /// breaks the walk stops immediately — no further list pages or
    /// child nodes are read.
    pub fn stab_ctl(
        &self,
        pager: &Pager,
        x: i64,
        f: &mut dyn FnMut(&Interval) -> ControlFlow<()>,
    ) -> Result<ControlFlow<()>> {
        let mut id = self.root;
        loop {
            let node = read_node(pager, id)?;
            match node {
                ItNode::Leaf { intervals } => {
                    for iv in intervals.iter().filter(|iv| iv.contains(x)) {
                        if f(iv).is_break() {
                            return Ok(ControlFlow::Break(()));
                        }
                    }
                    return Ok(ControlFlow::Continue(()));
                }
                ItNode::Internal(n) => {
                    let k = n.boundaries.len();
                    let j = n.boundaries.partition_point(|&s| s < x);
                    // Left stubs of slab j: prefix with lo ≤ x.
                    let left = BPlusTree::attach(pager, LeftOrder, n.left)?;
                    let probe_tag = j as u16;
                    let mut cur = left.lower_bound(pager, &move |r: &TaggedInterval| {
                        (probe_tag, i64::MIN, 0u64).cmp(&(r.tag, r.iv.lo, r.iv.id))
                    })?;
                    if cur
                        .for_each_while_ctl(
                            pager,
                            |r| r.tag == probe_tag && r.iv.lo <= x,
                            |r| f(&r.iv),
                        )?
                        .is_break()
                    {
                        return Ok(ControlFlow::Break(()));
                    }
                    // Right stubs of slab j: prefix with hi ≥ x.
                    let right = BPlusTree::attach(pager, RightOrder, n.right)?;
                    let mut cur = right.lower_bound(pager, &move |r: &TaggedInterval| {
                        (probe_tag, std::cmp::Reverse(i64::MAX), 0u64).cmp(&(
                            r.tag,
                            std::cmp::Reverse(r.iv.hi),
                            r.iv.id,
                        ))
                    })?;
                    if cur
                        .for_each_while_ctl(
                            pager,
                            |r| r.tag == probe_tag && r.iv.hi >= x,
                            |r| f(&r.iv),
                        )?
                        .is_break()
                    {
                        return Ok(ControlFlow::Break(()));
                    }
                    // Multislab lists spanning slab j: report entirely.
                    if k >= 2 && j >= 1 && j < k {
                        let mslab = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
                        for a in 1..=j {
                            for b in j..=k - 1 {
                                let mi = mslab_index(k, a, b);
                                if n.mslab_counts[mi] == 0 {
                                    continue;
                                }
                                let tag = mi as u16;
                                let mut cur = mslab
                                    .lower_bound(pager, &move |r: &TaggedInterval| {
                                        (tag, 0u64).cmp(&(r.tag, r.iv.id))
                                    })?;
                                if cur
                                    .for_each_while_ctl(pager, |r| r.tag == tag, |r| f(&r.iv))?
                                    .is_break()
                                {
                                    return Ok(ControlFlow::Break(()));
                                }
                            }
                        }
                    }
                    // Descend unless x hits a boundary exactly (children
                    // hold only open-slab intervals then).
                    if j < k && n.boundaries[j] == x {
                        return Ok(ControlFlow::Continue(()));
                    }
                    id = n.children[j];
                }
            }
        }
    }

    /// Batched [`IntervalTree::stab_ctl`]: answer every query of the
    /// group with one shared descent. Queries landing in the same slab
    /// share the node page, the stub-list descents (via
    /// [`BPlusTree::lower_bound_batch`]) and the multislab list scans;
    /// `f` receives `(tag, interval)` per hit and a `Break` retires only
    /// that query. Queries are `(x, tag)` pairs.
    pub fn stab_batch_ctl(
        &self,
        pager: &Pager,
        queries: &[(i64, usize)],
        f: &mut dyn FnMut(usize, &Interval) -> ControlFlow<()>,
    ) -> Result<()> {
        if queries.is_empty() {
            return Ok(());
        }
        let mut done = vec![false; queries.len()];
        let group: Vec<usize> = (0..queries.len()).collect();
        self.stab_batch_rec(pager, self.root, &group, queries, &mut done, f)
    }

    fn stab_batch_rec(
        &self,
        pager: &Pager,
        id: PageId,
        group: &[usize],
        queries: &[(i64, usize)],
        done: &mut [bool],
        f: &mut dyn FnMut(usize, &Interval) -> ControlFlow<()>,
    ) -> Result<()> {
        let live: Vec<usize> = group.iter().copied().filter(|&qi| !done[qi]).collect();
        if live.is_empty() {
            return Ok(());
        }
        match read_node(pager, id)? {
            ItNode::Leaf { intervals } => {
                for iv in &intervals {
                    for &qi in &live {
                        if !done[qi]
                            && iv.contains(queries[qi].0)
                            && f(queries[qi].1, iv).is_break()
                        {
                            done[qi] = true;
                        }
                    }
                }
                Ok(())
            }
            ItNode::Internal(n) => {
                let k = n.boundaries.len();
                // Queries grouped by slab; one stub probe per group.
                let mut by_j: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
                for &qi in &live {
                    let j = n.boundaries.partition_point(|&s| s < queries[qi].0);
                    by_j.entry(j).or_default().push(qi);
                }
                let js: Vec<usize> = by_j.keys().copied().collect();

                // Left stubs: one batched descent for every group, then
                // each group's run is scanned once up to its own max x
                // and dispatched per query.
                let left = BPlusTree::attach(pager, LeftOrder, n.left)?;
                let lprobes: Vec<_> = js
                    .iter()
                    .map(|&j| {
                        let t = j as u16;
                        move |r: &TaggedInterval| {
                            (t, i64::MIN, 0u64).cmp(&(r.tag, r.iv.lo, r.iv.id))
                        }
                    })
                    .collect();
                for (gi, mut cur) in left
                    .lower_bound_batch(pager, &lprobes)?
                    .into_iter()
                    .enumerate()
                {
                    let j = js[gi];
                    let tag = j as u16;
                    let qis = &by_j[&j];
                    while let Some(r) = cur.next(pager)? {
                        if r.tag != tag {
                            break;
                        }
                        let max_x = qis
                            .iter()
                            .filter(|&&qi| !done[qi])
                            .map(|&qi| queries[qi].0)
                            .max();
                        let Some(max_x) = max_x else { break };
                        if r.iv.lo > max_x {
                            break;
                        }
                        for &qi in qis {
                            if !done[qi]
                                && r.iv.lo <= queries[qi].0
                                && f(queries[qi].1, &r.iv).is_break()
                            {
                                done[qi] = true;
                            }
                        }
                    }
                }

                // Right stubs, symmetric: scan down to the group's min x.
                let right = BPlusTree::attach(pager, RightOrder, n.right)?;
                let rprobes: Vec<_> = js
                    .iter()
                    .map(|&j| {
                        let t = j as u16;
                        move |r: &TaggedInterval| {
                            (t, std::cmp::Reverse(i64::MAX), 0u64).cmp(&(
                                r.tag,
                                std::cmp::Reverse(r.iv.hi),
                                r.iv.id,
                            ))
                        }
                    })
                    .collect();
                for (gi, mut cur) in right
                    .lower_bound_batch(pager, &rprobes)?
                    .into_iter()
                    .enumerate()
                {
                    let j = js[gi];
                    let tag = j as u16;
                    let qis = &by_j[&j];
                    while let Some(r) = cur.next(pager)? {
                        if r.tag != tag {
                            break;
                        }
                        let min_x = qis
                            .iter()
                            .filter(|&&qi| !done[qi])
                            .map(|&qi| queries[qi].0)
                            .min();
                        let Some(min_x) = min_x else { break };
                        if r.iv.hi < min_x {
                            break;
                        }
                        for &qi in qis {
                            if !done[qi]
                                && r.iv.hi >= queries[qi].0
                                && f(queries[qi].1, &r.iv).is_break()
                            {
                                done[qi] = true;
                            }
                        }
                    }
                }

                // Multislab lists: each list spanning any query's slab is
                // scanned exactly once and dispatched to every query it
                // spans (a ≤ j ≤ b ⇒ full membership, no per-record
                // predicate).
                let mut by_mi: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
                if k >= 2 {
                    for (&j, qis) in &by_j {
                        if j >= 1 && j < k {
                            for a in 1..=j {
                                for b in j..=k - 1 {
                                    let mi = mslab_index(k, a, b);
                                    if n.mslab_counts[mi] != 0 {
                                        by_mi.entry(mi).or_default().extend(qis.iter().copied());
                                    }
                                }
                            }
                        }
                    }
                }
                if !by_mi.is_empty() {
                    let mslab = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
                    let mis: Vec<usize> = by_mi.keys().copied().collect();
                    let mprobes: Vec<_> = mis
                        .iter()
                        .map(|&mi| {
                            let t = mi as u16;
                            move |r: &TaggedInterval| (t, 0u64).cmp(&(r.tag, r.iv.id))
                        })
                        .collect();
                    for (gi, mut cur) in mslab
                        .lower_bound_batch(pager, &mprobes)?
                        .into_iter()
                        .enumerate()
                    {
                        let tag = mis[gi] as u16;
                        let qis = &by_mi[&mis[gi]];
                        while let Some(r) = cur.next(pager)? {
                            if r.tag != tag || qis.iter().all(|&qi| done[qi]) {
                                break;
                            }
                            for &qi in qis {
                                if !done[qi] && f(queries[qi].1, &r.iv).is_break() {
                                    done[qi] = true;
                                }
                            }
                        }
                    }
                }

                // Descend per slab group; a query whose x hits a boundary
                // exactly stops here (children hold only open-slab
                // intervals), without stopping its groupmates.
                for (&j, qis) in &by_j {
                    let descend: Vec<usize> = qis
                        .iter()
                        .copied()
                        .filter(|&qi| !(done[qi] || j < k && n.boundaries[j] == queries[qi].0))
                        .collect();
                    if !descend.is_empty() {
                        self.stab_batch_rec(pager, n.children[j], &descend, queries, done, f)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Number of intervals containing `x`, answered from the stub-list
    /// B⁺-tree ranks and the multislab count directory — none of the
    /// matching lists' own pages are read. A saturated multislab count
    /// (`u16::MAX`) is inexact, so that one list is counted by B⁺-tree
    /// rank instead.
    pub fn stab_count(&self, pager: &Pager, x: i64) -> Result<u64> {
        let mut total = 0u64;
        let mut id = self.root;
        loop {
            match read_node(pager, id)? {
                ItNode::Leaf { intervals } => {
                    total += intervals.iter().filter(|iv| iv.contains(x)).count() as u64;
                    return Ok(total);
                }
                ItNode::Internal(n) => {
                    let k = n.boundaries.len();
                    let j = n.boundaries.partition_point(|&s| s < x);
                    let probe_tag = j as u16;
                    // Left stubs of slab j with lo ≤ x.
                    let left = BPlusTree::attach(pager, LeftOrder, n.left)?;
                    total += left.count_range(
                        pager,
                        &move |r: &TaggedInterval| {
                            (probe_tag, i64::MIN, 0u64).cmp(&(r.tag, r.iv.lo, r.iv.id))
                        },
                        &move |r: &TaggedInterval| {
                            (probe_tag, x, u64::MAX).cmp(&(r.tag, r.iv.lo, r.iv.id))
                        },
                    )?;
                    // Right stubs of slab j with hi ≥ x.
                    let right = BPlusTree::attach(pager, RightOrder, n.right)?;
                    total += right.count_range(
                        pager,
                        &move |r: &TaggedInterval| {
                            (probe_tag, std::cmp::Reverse(i64::MAX), 0u64).cmp(&(
                                r.tag,
                                std::cmp::Reverse(r.iv.hi),
                                r.iv.id,
                            ))
                        },
                        &move |r: &TaggedInterval| {
                            (probe_tag, std::cmp::Reverse(x), u64::MAX).cmp(&(
                                r.tag,
                                std::cmp::Reverse(r.iv.hi),
                                r.iv.id,
                            ))
                        },
                    )?;
                    // Multislab lists spanning slab j: directory counts,
                    // except saturated entries which need an exact rank.
                    if k >= 2 && j >= 1 && j < k {
                        let mslab = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
                        for a in 1..=j {
                            for b in j..=k - 1 {
                                let mi = mslab_index(k, a, b);
                                let c = n.mslab_counts[mi];
                                if c == 0 {
                                    continue;
                                }
                                if c != u16::MAX {
                                    total += c as u64;
                                } else {
                                    let tag = mi as u16;
                                    total += mslab.count_range(
                                        pager,
                                        &move |r: &TaggedInterval| {
                                            (tag, 0u64).cmp(&(r.tag, r.iv.id))
                                        },
                                        &move |r: &TaggedInterval| {
                                            (tag, u64::MAX).cmp(&(r.tag, r.iv.id))
                                        },
                                    )?;
                                }
                            }
                        }
                    }
                    if j < k && n.boundaries[j] == x {
                        return Ok(total);
                    }
                    id = n.children[j];
                }
            }
        }
    }

    /// Convenience wrapper over [`IntervalTree::stab_into`].
    pub fn stab(&self, pager: &Pager, x: i64) -> Result<Vec<Interval>> {
        let mut out = Vec::new();
        self.stab_into(pager, x, &mut out)?;
        Ok(out)
    }

    /// Insert an interval. `O(log_B n)` expected.
    pub fn insert(&mut self, pager: &Pager, iv: Interval) -> Result<()> {
        self.len += 1;
        let mut id = self.root;
        loop {
            match read_node(pager, id)? {
                ItNode::Leaf { mut intervals } => {
                    intervals.push(iv);
                    if intervals.len() <= self.leaf_cap {
                        write_node(pager, id, &ItNode::Leaf { intervals })?;
                    } else {
                        // Rebuild this leaf as a subtree, in place so the
                        // parent's child pointer stays valid.
                        build_node_at(pager, self.leaf_cap, self.fanout, intervals, id)?;
                    }
                    return Ok(());
                }
                ItNode::Internal(mut n) => match locate(&n.boundaries, &iv) {
                    Placement::Node {
                        left_slab,
                        right_slab,
                        mslab,
                    } => {
                        let k = n.boundaries.len();
                        let mut lt = BPlusTree::attach(pager, LeftOrder, n.left)?;
                        lt.insert(
                            pager,
                            TaggedInterval {
                                tag: left_slab as u16,
                                iv,
                            },
                        )?;
                        n.left = lt.state();
                        let mut rt = BPlusTree::attach(pager, RightOrder, n.right)?;
                        rt.insert(
                            pager,
                            TaggedInterval {
                                tag: right_slab as u16,
                                iv,
                            },
                        )?;
                        n.right = rt.state();
                        if let Some((a, b)) = mslab {
                            let mi = mslab_index(k, a, b);
                            let mut mt = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
                            mt.insert(pager, TaggedInterval { tag: mi as u16, iv })?;
                            n.mslab = mt.state();
                            n.mslab_counts[mi] = n.mslab_counts[mi].saturating_add(1);
                        }
                        write_node(pager, id, &ItNode::Internal(n))?;
                        return Ok(());
                    }
                    Placement::Child(slab) => id = n.children[slab],
                },
            }
        }
    }

    /// Remove an exact interval (`lo`, `hi`, `id` all match). Returns
    /// whether it was found.
    pub fn remove(&mut self, pager: &Pager, iv: &Interval) -> Result<bool> {
        let mut id = self.root;
        loop {
            match read_node(pager, id)? {
                ItNode::Leaf { mut intervals } => {
                    let before = intervals.len();
                    intervals.retain(|x| x != iv);
                    let found = intervals.len() < before;
                    if found {
                        self.len -= 1;
                        write_node(pager, id, &ItNode::Leaf { intervals })?;
                    }
                    return Ok(found);
                }
                ItNode::Internal(mut n) => match locate(&n.boundaries, iv) {
                    Placement::Node {
                        left_slab,
                        right_slab,
                        mslab,
                    } => {
                        let k = n.boundaries.len();
                        let mut lt = BPlusTree::attach(pager, LeftOrder, n.left)?;
                        let found = lt.remove(
                            pager,
                            &TaggedInterval {
                                tag: left_slab as u16,
                                iv: *iv,
                            },
                        )?;
                        n.left = lt.state();
                        if !found {
                            return Ok(false);
                        }
                        let mut rt = BPlusTree::attach(pager, RightOrder, n.right)?;
                        rt.remove(
                            pager,
                            &TaggedInterval {
                                tag: right_slab as u16,
                                iv: *iv,
                            },
                        )?;
                        n.right = rt.state();
                        if let Some((a, b)) = mslab {
                            let mi = mslab_index(k, a, b);
                            let mut mt = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
                            mt.remove(
                                pager,
                                &TaggedInterval {
                                    tag: mi as u16,
                                    iv: *iv,
                                },
                            )?;
                            n.mslab = mt.state();
                            // Saturated counts stay pinned (see lib docs).
                            if n.mslab_counts[mi] != u16::MAX || mt.is_empty() {
                                n.mslab_counts[mi] = n.mslab_counts[mi].saturating_sub(1);
                            }
                        }
                        self.len -= 1;
                        write_node(pager, id, &ItNode::Internal(n))?;
                        return Ok(true);
                    }
                    Placement::Child(slab) => id = n.children[slab],
                },
            }
        }
    }

    /// Pages of the internal slab nodes, breadth-first from the root,
    /// at most `budget` — the descent levels worth pinning resident in
    /// the pager's exempt-from-eviction tier.
    pub fn node_pages(&self, pager: &Pager, budget: usize) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back(self.root);
        while let Some(page) = frontier.pop_front() {
            if out.len() >= budget {
                break;
            }
            if let ItNode::Internal(n) = read_node(pager, page)? {
                out.push(page);
                frontier.extend(n.children.iter().copied());
            }
        }
        Ok(out)
    }

    /// Collect every stored interval (test/rebuild helper).
    pub fn scan_all(&self, pager: &Pager) -> Result<Vec<Interval>> {
        let mut out = Vec::with_capacity(self.len as usize);
        collect(pager, self.root, &mut out)?;
        Ok(out)
    }

    /// Free every page of the structure.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        destroy_node(pager, self.root)
    }

    /// Deep structural validation.
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        let mut count = 0u64;
        validate_node(pager, self.root, self.leaf_cap, None, None, &mut count)?;
        if count != self.len {
            return Err(PagerError::Corrupt("interval tree len mismatch"));
        }
        Ok(())
    }
}

/// Where an interval lands relative to a node's boundaries.
enum Placement {
    Node {
        left_slab: usize,
        right_slab: usize,
        mslab: Option<(usize, usize)>,
    },
    Child(usize),
}

fn locate(boundaries: &[i64], iv: &Interval) -> Placement {
    let k = boundaries.len();
    let f = boundaries.partition_point(|&s| s < iv.lo);
    if f < k && boundaries[f] <= iv.hi {
        let l = boundaries.partition_point(|&s| s <= iv.hi) - 1;
        Placement::Node {
            left_slab: f,
            right_slab: l + 1,
            mslab: if l > f { Some((f + 1, l)) } else { None },
        }
    } else {
        Placement::Child(f)
    }
}

fn read_node(pager: &Pager, id: PageId) -> Result<ItNode> {
    segdb_obs::trace::emit(
        segdb_obs::trace::EventKind::ItreeNodeVisit,
        u64::from(id),
        0,
    );
    pager.with_page(id, ItNode::decode)?
}

fn write_node(pager: &Pager, id: PageId, node: &ItNode) -> Result<()> {
    pager.overwrite_page(id, |buf| node.encode(buf))?
}

fn build_node(
    pager: &Pager,
    leaf_cap: usize,
    fanout: usize,
    intervals: Vec<Interval>,
) -> Result<PageId> {
    let id = pager.allocate()?;
    build_node_at(pager, leaf_cap, fanout, intervals, id)?;
    Ok(id)
}

fn build_node_at(
    pager: &Pager,
    leaf_cap: usize,
    fanout: usize,
    intervals: Vec<Interval>,
    id: PageId,
) -> Result<()> {
    if intervals.len() <= leaf_cap {
        return write_node(pager, id, &ItNode::Leaf { intervals });
    }
    // Choose ≤ fanout boundaries as endpoint quantiles.
    let mut endpoints: Vec<i64> = intervals.iter().flat_map(|iv| [iv.lo, iv.hi]).collect();
    endpoints.sort_unstable();
    let want = fanout.min(endpoints.len());
    let mut boundaries: Vec<i64> = (1..=want)
        .map(|i| endpoints[(i * endpoints.len() / (want + 1)).min(endpoints.len() - 1)])
        .collect();
    boundaries.dedup();
    let k = boundaries.len();

    // Partition: (left slab, right slab, multislab, interval).
    let mut here: Vec<Filed> = Vec::new();
    let mut kids: Vec<Vec<Interval>> = vec![Vec::new(); k + 1];
    for iv in intervals {
        match locate(&boundaries, &iv) {
            Placement::Node {
                left_slab,
                right_slab,
                mslab,
            } => here.push((left_slab, right_slab, mslab, iv)),
            Placement::Child(slab) => kids[slab].push(iv),
        }
    }

    // Sorted bulk loads for the three list trees.
    let mut left_recs: Vec<TaggedInterval> = here
        .iter()
        .map(|&(ls, _, _, iv)| TaggedInterval { tag: ls as u16, iv })
        .collect();
    left_recs.sort_by(|a, b| LeftOrder.cmp_records_pub(a, b));
    let mut right_recs: Vec<TaggedInterval> = here
        .iter()
        .map(|&(_, rs, _, iv)| TaggedInterval { tag: rs as u16, iv })
        .collect();
    right_recs.sort_by(|a, b| RightOrder.cmp_records_pub(a, b));
    let mut mslab_counts = vec![0u16; mslab_count(k)];
    let mut mslab_recs: Vec<TaggedInterval> = here
        .iter()
        .filter_map(|&(_, _, ms, iv)| {
            ms.map(|(a, b)| {
                let mi = mslab_index(k, a, b);
                mslab_counts[mi] = mslab_counts[mi].saturating_add(1);
                TaggedInterval { tag: mi as u16, iv }
            })
        })
        .collect();
    mslab_recs.sort_by(|a, b| MslabOrder.cmp_records_pub(a, b));

    let left = BPlusTree::bulk_load(pager, LeftOrder, &left_recs)?.state();
    let right = BPlusTree::bulk_load(pager, RightOrder, &right_recs)?.state();
    let mslab = BPlusTree::bulk_load(pager, MslabOrder, &mslab_recs)?.state();

    let mut children = Vec::with_capacity(k + 1);
    for kid in kids {
        children.push(build_node(pager, leaf_cap, fanout, kid)?);
    }
    write_node(
        pager,
        id,
        &ItNode::Internal(Box::new(InternalNode {
            boundaries,
            children,
            left,
            right,
            mslab,
            mslab_counts,
        })),
    )
}

/// One interval filed at a node: left stub slab, right stub slab, the
/// optional multislab of its middle part, and the interval itself.
type Filed = (usize, usize, Option<(usize, usize)>, Interval);

fn collect(pager: &Pager, id: PageId, out: &mut Vec<Interval>) -> Result<()> {
    match read_node(pager, id)? {
        ItNode::Leaf { intervals } => out.extend(intervals),
        ItNode::Internal(n) => {
            let left = BPlusTree::attach(pager, LeftOrder, n.left)?;
            out.extend(left.scan_all(pager)?.into_iter().map(|t| t.iv));
            for &c in &n.children {
                collect(pager, c, out)?;
            }
        }
    }
    Ok(())
}

fn destroy_node(pager: &Pager, id: PageId) -> Result<()> {
    match read_node(pager, id)? {
        ItNode::Leaf { .. } => {}
        ItNode::Internal(n) => {
            BPlusTree::<TaggedInterval, _>::attach(pager, LeftOrder, n.left)?.destroy(pager)?;
            BPlusTree::<TaggedInterval, _>::attach(pager, RightOrder, n.right)?.destroy(pager)?;
            BPlusTree::<TaggedInterval, _>::attach(pager, MslabOrder, n.mslab)?.destroy(pager)?;
            for &c in &n.children {
                destroy_node(pager, c)?;
            }
        }
    }
    pager.free(id)
}

fn validate_node(
    pager: &Pager,
    id: PageId,
    leaf_cap: usize,
    lo: Option<i64>,
    hi: Option<i64>,
    count: &mut u64,
) -> Result<()> {
    let in_open_range =
        |iv: &Interval| lo.is_none_or(|lo| iv.lo > lo) && hi.is_none_or(|hi| iv.hi < hi);
    match read_node(pager, id)? {
        ItNode::Leaf { intervals } => {
            if intervals.len() > leaf_cap {
                return Err(PagerError::Corrupt("interval leaf overfull"));
            }
            if !intervals.iter().all(in_open_range) {
                return Err(PagerError::Corrupt("leaf interval escapes slab"));
            }
            *count += intervals.len() as u64;
        }
        ItNode::Internal(n) => {
            let k = n.boundaries.len();
            if k == 0 {
                return Err(PagerError::Corrupt("internal node without boundaries"));
            }
            if !n.boundaries.windows(2).all(|w| w[0] < w[1]) {
                return Err(PagerError::Corrupt("boundaries not increasing"));
            }
            let left = BPlusTree::attach(pager, LeftOrder, n.left)?;
            left.validate(pager)?;
            let right = BPlusTree::attach(pager, RightOrder, n.right)?;
            right.validate(pager)?;
            let mslab = BPlusTree::attach(pager, MslabOrder, n.mslab)?;
            mslab.validate(pager)?;
            if left.len() != right.len() {
                return Err(PagerError::Corrupt("stub list length mismatch"));
            }
            let mut mcounts = vec![0u64; mslab_count(k)];
            for rec in mslab.scan_all(pager)? {
                mcounts[rec.tag as usize] += 1;
            }
            for (mi, &c) in n.mslab_counts.iter().enumerate() {
                let actual = mcounts[mi];
                let consistent = if c == u16::MAX {
                    actual >= 1
                } else {
                    actual == c as u64
                };
                if !consistent {
                    return Err(PagerError::Corrupt("mslab directory count wrong"));
                }
            }
            // Every filed interval must really cross a boundary and lie
            // within this node's open range.
            for rec in left.scan_all(pager)? {
                match locate(&n.boundaries, &rec.iv) {
                    Placement::Node { left_slab, .. } if left_slab == rec.tag as usize => {}
                    _ => return Err(PagerError::Corrupt("left stub misfiled")),
                }
                if !in_open_range(&rec.iv) {
                    return Err(PagerError::Corrupt("node interval escapes slab"));
                }
            }
            *count += left.len();
            for (i, &c) in n.children.iter().enumerate() {
                let lo2 = if i == 0 {
                    lo
                } else {
                    Some(n.boundaries[i - 1])
                };
                let hi2 = if i == k { hi } else { Some(n.boundaries[i]) };
                validate_node(pager, c, leaf_cap, lo2, hi2, count)?;
            }
        }
    }
    Ok(())
}

// -- small helper so sort closures can use the comparators -------------

trait CmpPub<R> {
    fn cmp_records_pub(&self, a: &R, b: &R) -> Ordering;
}

impl<R, T: segdb_bptree::RecordOrd<R>> CmpPub<R> for T {
    fn cmp_records_pub(&self, a: &R, b: &R) -> Ordering {
        self.cmp_records(a, b)
    }
}
