//! Interval *overlap* queries: the `C(v)` / `Cᵢ` structures.
//!
//! A VS query hitting segments that lie **on** the base line reduces to:
//! report all stored intervals `[lo, hi]` overlapping the query range
//! `[qlo, qhi]`. Decomposition (disjoint, complete):
//!
//! 1. intervals containing `qlo` — a stabbing query on the interval tree;
//! 2. intervals with left endpoint in `(qlo, qhi]` — a range scan on a
//!    B⁺-tree over left endpoints.
//!
//! Both parts are output-sensitive, so the whole query costs
//! `O(log_B n + t)` I/Os, the bound the paper cites for `C(v)` (§3).

use crate::interval::{Interval, StartOrder};
use crate::tree::{IntervalTree, IntervalTreeConfig, ItState};
use segdb_bptree::{BPlusTree, TreeState};
use segdb_pager::{ByteReader, ByteWriter, Pager, Result};
use std::ops::ControlFlow;

/// Serializable identity of an [`IntervalSet`] (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSetState {
    /// The stabbing tree.
    pub tree: ItState,
    /// The start index.
    pub starts: TreeState,
}

impl IntervalSetState {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = ItState::ENCODED_SIZE + TreeState::ENCODED_SIZE;

    /// Serialize.
    pub fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        self.tree.encode(w)?;
        self.starts.encode(w)
    }

    /// Deserialize.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(IntervalSetState {
            tree: ItState::decode(r)?,
            starts: TreeState::decode(r)?,
        })
    }
}

/// A dynamic set of closed intervals supporting stabbing *and* overlap
/// queries, both output-sensitive.
#[derive(Debug)]
pub struct IntervalSet {
    tree: IntervalTree,
    starts: BPlusTree<Interval, StartOrder>,
}

impl IntervalSet {
    /// Build from a collection.
    pub fn build(pager: &Pager, cfg: IntervalTreeConfig, intervals: Vec<Interval>) -> Result<Self> {
        let mut sorted = intervals.clone();
        sorted.sort_by_key(|iv| (iv.lo, iv.id));
        let starts = BPlusTree::bulk_load(pager, StartOrder, &sorted)?;
        let tree = IntervalTree::build(pager, cfg, intervals)?;
        Ok(IntervalSet { tree, starts })
    }

    /// Create empty.
    pub fn new(pager: &Pager, cfg: IntervalTreeConfig) -> Result<Self> {
        Self::build(pager, cfg, Vec::new())
    }

    /// Reconstruct from serialized state.
    pub fn attach(pager: &Pager, cfg: IntervalTreeConfig, state: IntervalSetState) -> Result<Self> {
        Ok(IntervalSet {
            tree: IntervalTree::attach(pager, cfg, state.tree)?,
            starts: BPlusTree::attach(pager, StartOrder, state.starts)?,
        })
    }

    /// The serializable identity.
    pub fn state(&self) -> IntervalSetState {
        IntervalSetState {
            tree: self.tree.state(),
            starts: self.starts.state(),
        }
    }

    /// Stored interval count.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Report all intervals containing `x`.
    pub fn stab_into(&self, pager: &Pager, x: i64, out: &mut Vec<Interval>) -> Result<()> {
        self.tree.stab_into(pager, x, out)
    }

    /// Report all intervals overlapping `[qlo, qhi]` (inclusive), with
    /// optional open ends (`None` = ±∞) for ray and line queries.
    pub fn overlap_into(
        &self,
        pager: &Pager,
        qlo: Option<i64>,
        qhi: Option<i64>,
        out: &mut Vec<Interval>,
    ) -> Result<()> {
        let _ = self.overlap_ctl(pager, qlo, qhi, &mut |iv| {
            out.push(*iv);
            ControlFlow::Continue(())
        })?;
        Ok(())
    }

    /// Stream all intervals overlapping `[qlo, qhi]` into `f`; a `Break`
    /// from `f` stops the walk without reading further pages.
    pub fn overlap_ctl(
        &self,
        pager: &Pager,
        qlo: Option<i64>,
        qhi: Option<i64>,
        f: &mut dyn FnMut(&Interval) -> ControlFlow<()>,
    ) -> Result<ControlFlow<()>> {
        match qlo {
            Some(qlo) => {
                // Part 1: stab the lower end.
                if self.tree.stab_ctl(pager, qlo, f)?.is_break() {
                    return Ok(ControlFlow::Break(()));
                }
                // Part 2: starts strictly inside (qlo, qhi].
                let mut cur = self.starts.lower_bound(pager, &move |r: &Interval| {
                    // first interval with lo > qlo
                    if qlo < r.lo {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                })?;
                cur.for_each_while_ctl(pager, |r| qhi.is_none_or(|qhi| r.lo <= qhi), |r| f(r))
            }
            None => {
                // No lower bound: every interval with lo ≤ qhi overlaps.
                let mut cur = self.starts.cursor_first(pager)?;
                cur.for_each_while_ctl(pager, |r| qhi.is_none_or(|qhi| r.lo <= qhi), |r| f(r))
            }
        }
    }

    /// Number of intervals overlapping `[qlo, qhi]`, answered from the
    /// interval tree's list ranks and the start index's stored subtree
    /// counts — the matching intervals themselves are never read.
    pub fn overlap_count(&self, pager: &Pager, qlo: Option<i64>, qhi: Option<i64>) -> Result<u64> {
        match qlo {
            Some(qlo) => {
                let stabbed = self.tree.stab_count(pager, qlo)?;
                // Starts strictly inside (qlo, qhi].
                let after_qlo = &move |r: &Interval| {
                    if qlo < r.lo {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                };
                let started = match qhi {
                    Some(qhi) => {
                        self.starts
                            .count_range(pager, after_qlo, &move |r: &Interval| {
                                if qhi < r.lo {
                                    std::cmp::Ordering::Less
                                } else {
                                    std::cmp::Ordering::Greater
                                }
                            })?
                    }
                    None => self.starts.count_from(pager, after_qlo)?,
                };
                Ok(stabbed + started)
            }
            None => match qhi {
                // Intervals with lo ≤ qhi.
                Some(qhi) => self.starts.rank(pager, &move |r: &Interval| {
                    if qhi < r.lo {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }),
                // Fully open: everything overlaps, zero reads.
                None => Ok(self.len()),
            },
        }
    }

    /// Collect every stored interval (rebuild helper).
    pub fn scan_all(&self, pager: &Pager) -> Result<Vec<Interval>> {
        self.tree.scan_all(pager)
    }

    /// Insert an interval.
    pub fn insert(&mut self, pager: &Pager, iv: Interval) -> Result<()> {
        self.tree.insert(pager, iv)?;
        self.starts.insert(pager, iv)?;
        Ok(())
    }

    /// Remove an exact interval. Returns whether it was found.
    pub fn remove(&mut self, pager: &Pager, iv: &Interval) -> Result<bool> {
        let found = self.tree.remove(pager, iv)?;
        if found {
            self.starts.remove(pager, iv)?;
        }
        Ok(found)
    }

    /// Free all pages.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        self.tree.destroy(pager)?;
        self.starts.destroy(pager)
    }

    /// Deep validation of both component structures and their agreement.
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        self.tree.validate(pager)?;
        self.starts.validate(pager)?;
        if self.tree.len() != self.starts.len() {
            return Err(segdb_pager::PagerError::Corrupt(
                "interval set component length mismatch",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segdb_pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new(PagerConfig {
            page_size: 256,
            cache_pages: 0,
        })
    }

    fn ivs(spec: &[(i64, i64)]) -> Vec<Interval> {
        spec.iter()
            .enumerate()
            .map(|(i, &(a, b))| Interval::new(i as u64, a, b))
            .collect()
    }

    use segdb_core::testutil::oracle_ids;

    fn oracle_overlap(set: &[Interval], qlo: Option<i64>, qhi: Option<i64>) -> Vec<u64> {
        oracle_ids(
            set,
            |iv| iv.id,
            |iv| qlo.is_none_or(|q| iv.hi >= q) && qhi.is_none_or(|q| iv.lo <= q),
        )
    }

    fn sorted_ids(v: Vec<Interval>) -> Vec<u64> {
        oracle_ids(&v, |iv| iv.id, |_| true)
    }

    #[test]
    fn overlap_matches_oracle() {
        let p = pager();
        let intervals = ivs(&[(0, 10), (5, 6), (12, 20), (-5, -1), (6, 12), (30, 40)]);
        let set = IntervalSet::build(&p, IntervalTreeConfig::default(), intervals.clone()).unwrap();
        set.validate(&p).unwrap();
        for (qlo, qhi) in [
            (Some(5), Some(13)),
            (Some(-10), Some(-6)),
            (None, Some(0)),
            (Some(21), None),
            (None, None),
            (Some(6), Some(6)),
        ] {
            let mut out = Vec::new();
            set.overlap_into(&p, qlo, qhi, &mut out).unwrap();
            assert_eq!(
                sorted_ids(out),
                oracle_overlap(&intervals, qlo, qhi),
                "q=({qlo:?},{qhi:?})"
            );
        }
    }

    #[test]
    fn overlap_count_matches_oracle() {
        let p = pager();
        let intervals = ivs(&[(0, 10), (5, 6), (12, 20), (-5, -1), (6, 12), (30, 40)]);
        let set = IntervalSet::build(&p, IntervalTreeConfig::default(), intervals.clone()).unwrap();
        for (qlo, qhi) in [
            (Some(5), Some(13)),
            (Some(-10), Some(-6)),
            (None, Some(0)),
            (Some(21), None),
            (None, None),
            (Some(6), Some(6)),
        ] {
            assert_eq!(
                set.overlap_count(&p, qlo, qhi).unwrap(),
                oracle_overlap(&intervals, qlo, qhi).len() as u64,
                "q=({qlo:?},{qhi:?})"
            );
        }
        // The fully-open count comes straight from the stored length.
        p.reset_stats();
        assert_eq!(set.overlap_count(&p, None, None).unwrap(), 6);
        assert_eq!(p.stats().reads, 0);
    }

    #[test]
    fn overlap_ctl_breaks_early() {
        let p = pager();
        let intervals: Vec<Interval> = (0..200).map(|i| Interval::new(i, 0, 1000)).collect();
        let set = IntervalSet::build(&p, IntervalTreeConfig::default(), intervals).unwrap();
        let mut seen = 0u32;
        let flow = set
            .overlap_ctl(&p, Some(500), Some(600), &mut |_| {
                seen += 1;
                if seen >= 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, 3);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let p = pager();
        let mut set = IntervalSet::new(&p, IntervalTreeConfig::default()).unwrap();
        let intervals = ivs(&[(0, 4), (2, 9), (8, 8), (-3, 1)]);
        for &iv in &intervals {
            set.insert(&p, iv).unwrap();
        }
        set.validate(&p).unwrap();
        let mut out = Vec::new();
        set.overlap_into(&p, Some(1), Some(2), &mut out).unwrap();
        assert_eq!(sorted_ids(out), vec![0, 1, 3]);
        assert!(set.remove(&p, &intervals[1]).unwrap());
        assert!(!set.remove(&p, &intervals[1]).unwrap());
        set.validate(&p).unwrap();
        let mut out = Vec::new();
        set.overlap_into(&p, Some(1), Some(2), &mut out).unwrap();
        assert_eq!(sorted_ids(out), vec![0, 3]);
    }

    #[test]
    fn state_roundtrip() {
        let p = pager();
        let set =
            IntervalSet::build(&p, IntervalTreeConfig::default(), ivs(&[(0, 5), (3, 9)])).unwrap();
        let st = set.state();
        let mut buf = vec![0u8; IntervalSetState::ENCODED_SIZE];
        st.encode(&mut ByteWriter::new(&mut buf)).unwrap();
        let st2 = IntervalSetState::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(st, st2);
        let set2 = IntervalSet::attach(&p, IntervalTreeConfig::default(), st2).unwrap();
        let mut out = Vec::new();
        set2.stab_into(&p, 4, &mut out).unwrap();
        assert_eq!(sorted_ids(out), vec![0, 1]);
    }

    #[test]
    fn destroy_frees_pages() {
        let p = pager();
        let before = p.live_pages();
        let set = IntervalSet::build(
            &p,
            IntervalTreeConfig::default(),
            ivs(&[(0, 100); 1]).to_vec(),
        )
        .unwrap();
        set.destroy(&p).unwrap();
        assert_eq!(p.live_pages(), before);
    }
}
