//! Oracle-comparison and complexity-shape tests for the external
//! interval tree.

use segdb_itree::{Interval, IntervalTree, IntervalTreeConfig};
use segdb_pager::{Pager, PagerConfig};
use segdb_rng::SmallRng;

fn pager(page: usize) -> Pager {
    Pager::new(PagerConfig {
        page_size: page,
        cache_pages: 0,
    })
}

fn random_intervals(n: usize, span: i64, seed: u64) -> Vec<Interval> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let a = rng.gen_range(-span..span);
            let len = rng.gen_range(0..span / 4);
            Interval::new(i as u64, a, a + len)
        })
        .collect()
}

use segdb_core::testutil::oracle_ids;

fn oracle_stab(set: &[Interval], x: i64) -> Vec<u64> {
    oracle_ids(set, |iv| iv.id, |iv| iv.contains(x))
}

fn sorted_ids(v: Vec<Interval>) -> Vec<u64> {
    oracle_ids(&v, |iv| iv.id, |_| true)
}

#[test]
fn stab_matches_oracle_random() {
    for page in [256usize, 1024] {
        let p = pager(page);
        let set = random_intervals(2000, 10_000, 7);
        let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
        t.validate(&p).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let x = rng.gen_range(-11_000..11_000i64);
            assert_eq!(
                sorted_ids(t.stab(&p, x).unwrap()),
                oracle_stab(&set, x),
                "x={x} page={page}"
            );
        }
        // Boundary-exact probes: use actual endpoints.
        for iv in set.iter().take(100) {
            for x in [iv.lo, iv.hi] {
                assert_eq!(
                    sorted_ids(t.stab(&p, x).unwrap()),
                    oracle_stab(&set, x),
                    "endpoint {x}"
                );
            }
        }
    }
}

#[test]
fn stab_matches_oracle_adversarial() {
    let p = pager(256);
    // Nested intervals all containing 0, plus point intervals, plus
    // identical duplicates (distinct ids).
    let mut set: Vec<Interval> = (0..300)
        .map(|i| Interval::new(i, -(i as i64) - 1, i as i64 + 1))
        .collect();
    set.extend((0..50).map(|i| Interval::new(300 + i, i as i64, i as i64)));
    set.extend((0..50).map(|i| Interval::new(350 + i, 5, 10)));
    let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
    t.validate(&p).unwrap();
    for x in [-301, -5, 0, 5, 7, 10, 49, 301] {
        assert_eq!(
            sorted_ids(t.stab(&p, x).unwrap()),
            oracle_stab(&set, x),
            "x={x}"
        );
    }
}

#[test]
fn incremental_insert_matches_bulk() {
    let p = pager(256);
    let set = random_intervals(800, 5_000, 21);
    let bulk = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
    let mut inc = IntervalTree::new(&p, IntervalTreeConfig::default()).unwrap();
    for &iv in &set {
        inc.insert(&p, iv).unwrap();
    }
    inc.validate(&p).unwrap();
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..100 {
        let x = rng.gen_range(-6_000..6_000i64);
        assert_eq!(
            sorted_ids(inc.stab(&p, x).unwrap()),
            sorted_ids(bulk.stab(&p, x).unwrap()),
            "x={x}"
        );
    }
    assert_eq!(inc.len(), bulk.len());
}

#[test]
fn remove_random_subset() {
    let p = pager(256);
    let set = random_intervals(500, 4_000, 3);
    let mut t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
    let (gone, kept): (Vec<_>, Vec<_>) = set.iter().partition(|iv| iv.id % 3 == 0);
    for iv in &gone {
        assert!(t.remove(&p, iv).unwrap(), "missing {iv:?}");
        assert!(!t.remove(&p, iv).unwrap(), "double remove {iv:?}");
    }
    t.validate(&p).unwrap();
    assert_eq!(t.len() as usize, kept.len());
    let kept_set: Vec<Interval> = kept;
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..100 {
        let x = rng.gen_range(-5_000..5_000i64);
        assert_eq!(
            sorted_ids(t.stab(&p, x).unwrap()),
            oracle_stab(&kept_set, x)
        );
    }
}

#[test]
fn scan_all_returns_everything() {
    let p = pager(512);
    let set = random_intervals(1000, 10_000, 11);
    let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
    let mut got = sorted_ids(t.scan_all(&p).unwrap());
    got.dedup();
    assert_eq!(got, (0..1000u64).collect::<Vec<_>>());
}

#[test]
fn query_io_scales_sublinearly() {
    // I/O per empty-ish stab should grow ~log N, far below N/B.
    let mut prev_io = 0u64;
    for n in [1_000usize, 8_000, 64_000] {
        let p = pager(1024);
        let set = random_intervals(n, 1_000_000, 13);
        let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set).unwrap();
        p.reset_stats();
        let queries = 50;
        let mut rng = SmallRng::seed_from_u64(29);
        let mut total_t = 0usize;
        for _ in 0..queries {
            let x = rng.gen_range(-1_000_000..1_000_000i64);
            total_t += t.stab(&p, x).unwrap().len();
        }
        let io_per_query = p.stats().reads as f64 / queries as f64;
        let out_per_query = total_t as f64 / queries as f64;
        // Generous cap: levels × (node + 3 small b+tree descents) + output.
        assert!(
            io_per_query < 80.0 + out_per_query,
            "n={n}: io/q={io_per_query:.1} out/q={out_per_query:.1}"
        );
        assert!(p.stats().reads > prev_io / 64, "sanity");
        prev_io = p.stats().reads;
    }
}

#[test]
fn batched_stab_matches_sequential_with_fewer_reads() {
    use std::ops::ControlFlow;
    for page in [256usize, 1024] {
        let p = pager(page);
        let set = random_intervals(2000, 10_000, 7);
        let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut xs: Vec<i64> = (0..14).map(|_| rng.gen_range(-11_000..11_000)).collect();
        // Boundary-exact and far-out-of-range probes ride along.
        xs.push(set[0].lo);
        xs.push(set[1].hi);
        xs.push(i64::MAX);

        p.reset_stats();
        let seq: Vec<Vec<u64>> = xs
            .iter()
            .map(|&x| sorted_ids(t.stab(&p, x).unwrap()))
            .collect();
        let seq_reads = p.stats().reads;

        let queries: Vec<(i64, usize)> = xs.iter().copied().zip(0..).collect();
        let mut got: Vec<Vec<Interval>> = vec![Vec::new(); xs.len()];
        p.reset_stats();
        t.stab_batch_ctl(&p, &queries, &mut |tag, iv| {
            got[tag].push(*iv);
            ControlFlow::Continue(())
        })
        .unwrap();
        let batch_reads = p.stats().reads;

        for (i, g) in got.into_iter().enumerate() {
            assert_eq!(sorted_ids(g), seq[i], "x={} page={page}", xs[i]);
        }
        assert!(
            batch_reads < seq_reads,
            "batch {batch_reads} !< seq {seq_reads} (page={page})"
        );
    }
}

#[test]
fn batched_stab_early_exit_retires_one_query_only() {
    use std::ops::ControlFlow;
    let p = pager(256);
    let set = random_intervals(1200, 8_000, 19);
    let t = IntervalTree::build(&p, IntervalTreeConfig::default(), set.clone()).unwrap();
    // Pick an x with several hits so the capped query genuinely breaks.
    let x = set[10].lo;
    let full = oracle_stab(&set, x);
    assert!(full.len() >= 2, "need a multi-hit probe");
    let queries = [(x, 0usize), (x, 1usize)];
    let mut capped = 0usize;
    let mut rest: Vec<Interval> = Vec::new();
    t.stab_batch_ctl(&p, &queries, &mut |tag, iv| {
        if tag == 0 {
            capped += 1;
            ControlFlow::Break(())
        } else {
            rest.push(*iv);
            ControlFlow::Continue(())
        }
    })
    .unwrap();
    assert_eq!(capped, 1, "capped query stops after its first hit");
    assert_eq!(sorted_ids(rest), full, "batchmate still sees every hit");
}

#[test]
fn fanout_config_is_respected_and_correct() {
    let p = pager(1024);
    let set = random_intervals(2000, 20_000, 31);
    let t = IntervalTree::build(&p, IntervalTreeConfig { fanout: Some(3) }, set.clone()).unwrap();
    t.validate(&p).unwrap();
    let mut rng = SmallRng::seed_from_u64(41);
    for _ in 0..100 {
        let x = rng.gen_range(-21_000..21_000i64);
        assert_eq!(sorted_ids(t.stab(&p, x).unwrap()), oracle_stab(&set, x));
    }
}

#[test]
fn empty_and_tiny_trees() {
    let p = pager(256);
    let t = IntervalTree::new(&p, IntervalTreeConfig::default()).unwrap();
    assert!(t.is_empty());
    assert!(t.stab(&p, 0).unwrap().is_empty());
    let one = IntervalTree::build(
        &p,
        IntervalTreeConfig::default(),
        vec![Interval::new(1, 2, 4)],
    )
    .unwrap();
    assert_eq!(one.stab(&p, 3).unwrap().len(), 1);
    assert!(one.stab(&p, 5).unwrap().is_empty());
}
