//! End-to-end CLI flows: generate → build → info → query → mutate →
//! re-query, all through the public `run` entry point — plus process
//! tests of the binary's structured error output and the `serve`
//! subcommand.

use segdb_cli::{parse_csv, run, CliError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn a(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("segdb-cli-{name}-{}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_workflow() {
    let csv_path = tmp("wf.csv");
    let db_path = tmp("wf.db");

    // 1. Generate a workload.
    let csv = run(&a(&["gen", "temporal", "400", "11"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    let set = parse_csv(&csv).unwrap();

    // 2. Build a persistent database with the any-direction extension.
    let out = run(&a(&[
        "build",
        &db_path,
        &csv_path,
        "--page-size",
        "1024",
        "--index",
        "binary",
        "--arbitrary",
    ]))
    .unwrap();
    assert!(out.contains("built 400 segments"), "{out}");

    // 3. Info reads the superblock.
    let out = run(&a(&["info", &db_path])).unwrap();
    assert!(out.contains("segments: 400"), "{out}");
    assert!(out.contains("1024 bytes"), "{out}");

    // 4. Query: a line through a known segment's left endpoint.
    let s = set[0];
    let out = run(&a(&["query", &db_path, "line", &s.a.x.to_string(), "0"])).unwrap();
    assert!(
        out.lines().any(|l| l.starts_with(&format!("{},", s.id))),
        "{out}"
    );
    assert!(out.contains("block reads"));

    // 5. Free (arbitrary-direction) query works thanks to --arbitrary.
    let out = run(&a(&["query", &db_path, "free", "0", "0", "30000", "900"])).unwrap();
    assert!(out.contains("hits"), "{out}");

    // 6. Mutations persist.
    run(&a(&[
        "insert", &db_path, "99999", "70000", "-50", "70010", "-45",
    ]))
    .unwrap();
    let out = run(&a(&["query", &db_path, "line", "70005", "0"])).unwrap();
    assert!(out.lines().any(|l| l.starts_with("99999,")), "{out}");
    let out = run(&a(&[
        "remove", &db_path, "99999", "70000", "-50", "70010", "-45",
    ]))
    .unwrap();
    assert!(out.starts_with("removed"), "{out}");
    let out = run(&a(&["query", &db_path, "line", "70005", "0"])).unwrap();
    assert!(!out.lines().any(|l| l.starts_with("99999,")), "{out}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn build_rejects_crossing_input() {
    let csv_path = tmp("cross.csv");
    let db_path = tmp("cross.db");
    std::fs::write(&csv_path, "1,0,0,10,10\n2,0,10,10,0\n").unwrap();
    let err = run(&a(&["build", &db_path, &csv_path])).unwrap_err();
    assert!(err.to_string().contains("cross"), "{err}");
    // --trust skips validation (the caller takes responsibility).
    let out = run(&a(&[
        "build", &db_path, &csv_path, "--trust", "--index", "scan",
    ]))
    .unwrap();
    assert!(out.contains("built 2 segments"));
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn sheared_build_and_query() {
    let csv_path = tmp("shear.csv");
    let db_path = tmp("shear.db");
    let csv = run(&a(&["gen", "temporal", "100", "3"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&["build", &db_path, &csv_path, "--direction", "1,4"])).unwrap();
    let out = run(&a(&["info", &db_path])).unwrap();
    assert!(out.contains("direction: (1, 4)"), "{out}");
    // Misaligned segment query fails cleanly.
    let err = run(&a(&["query", &db_path, "segment", "0", "0", "10", "0"])).unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");
    // Aligned one works: (0,0) → (1,4) lies on a (1,4)-line.
    let out = run(&a(&["query", &db_path, "segment", "0", "0", "1", "4"])).unwrap();
    assert!(out.contains("hits"));
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn missing_db_file_is_a_clean_db_error() {
    let err = run(&a(&["info", "/nonexistent/definitely-missing.db"])).unwrap_err();
    assert!(matches!(err, CliError::Db(_)), "{err:?}");
    assert_eq!(err.exit_code(), 1);
    let doc = err.to_json();
    assert_eq!(doc.get("error").and_then(|v| v.as_str()), Some("db"));
    assert!(doc
        .get("message")
        .and_then(|v| v.as_str())
        .is_some_and(|m| !m.is_empty()));
}

#[test]
fn corrupt_superblock_is_a_clean_db_error() {
    let path = tmp("nosb.db");
    // A valid device file whose superblock was never saved…
    segdb_pager::FileDevice::create(&path, 512).unwrap();
    let err = run(&a(&["info", &path])).unwrap_err();
    assert_eq!(err.code(), "db");
    assert!(err.to_string().contains("superblock"), "{err}");
    // …and a file that is not a device at all.
    std::fs::write(&path, b"this is not a segment database").unwrap();
    let err = run(&a(&["query", &path, "line", "0", "0"])).unwrap_err();
    assert_eq!(err.code(), "db");
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_prints_structured_json_errors() {
    // Runtime failure (missing db): exit 1, JSON on stderr.
    let out = Command::new(env!("CARGO_BIN_EXE_segdb-cli"))
        .args(["info", "/nonexistent/definitely-missing.db"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let doc = segdb_obs::json::parse(stderr.lines().next().unwrap())
        .expect("stderr line is structured JSON");
    assert_eq!(doc.get("error").and_then(|v| v.as_str()), Some("db"));

    // Usage mistake: exit 2, JSON first line plus the command hint.
    let out = Command::new(env!("CARGO_BIN_EXE_segdb-cli"))
        .args(["frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let doc = segdb_obs::json::parse(stderr.lines().next().unwrap()).unwrap();
    assert_eq!(doc.get("error").and_then(|v| v.as_str()), Some("usage"));
}

/// Kill the serve child if the test dies before the graceful shutdown.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
    }
}

#[test]
fn serve_binary_round_trip() {
    let csv_path = tmp("serve.csv");
    let db_path = tmp("serve.db");
    let csv = run(&a(&["gen", "mixed", "300", "21"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&["build", &db_path, &csv_path, "--page-size", "1024"])).unwrap();
    let set = parse_csv(&csv).unwrap();

    let mut child = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_segdb-cli"))
            .args(["serve", &db_path, "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    let mut child_out = BufReader::new(child.0.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut send = |line: String| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        segdb_obs::json::parse(resp.trim_end()).expect("valid response JSON")
    };

    // A line through a known segment's left endpoint must report it.
    let s = set[0];
    let v = send(format!(
        r#"{{"id":1,"method":"query_line","params":{{"x":{}}}}}"#,
        s.a.x
    ));
    assert_eq!(
        v.get("ok"),
        Some(&segdb_obs::Json::Bool(true)),
        "{line}: {v:?}"
    );
    let ids = v
        .get("result")
        .and_then(|r| r.get("ids"))
        .and_then(|i| i.as_arr())
        .unwrap();
    assert!(ids.contains(&segdb_obs::Json::U64(s.id)), "{v:?}");

    let v = send(r#"{"id":2,"method":"shutdown"}"#.to_string());
    assert_eq!(v.get("ok"), Some(&segdb_obs::Json::Bool(true)));
    let status = child.0.wait().unwrap();
    assert!(status.success(), "{status:?}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn stats_and_trace_emit_valid_json() {
    let csv_path = tmp("obs.csv");
    let db_path = tmp("obs.db");
    let csv = run(&a(&["gen", "mixed", "500", "5"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&[
        "build",
        &db_path,
        &csv_path,
        "--page-size",
        "1024",
        "--index",
        "interval",
    ]))
    .unwrap();

    // stats: machine output must parse as JSON and carry the core fields.
    let out = run(&a(&[
        "stats", &db_path, &csv_path, "--sample", "40", "--seed", "9",
    ]))
    .unwrap();
    let doc = segdb_obs::json::parse(&out).expect("stats output is valid JSON");
    assert_eq!(doc.get("segments").and_then(|v| v.as_f64()), Some(500.0));
    assert_eq!(
        doc.get("index").and_then(|v| v.as_str()),
        Some("TwoLevelInterval")
    );
    let queries = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("queries"))
        .and_then(|v| v.as_f64());
    assert_eq!(queries, Some(40.0));
    assert!(
        doc.get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("io_per_query"))
            .is_some(),
        "{out}"
    );
    assert!(doc
        .get("cost_model")
        .and_then(|c| c.get("fitted_constant"))
        .is_some());

    // Human mode is prose, not JSON.
    let human = run(&a(&["stats", &db_path, &csv_path, "--human"])).unwrap();
    assert!(human.contains("cache hit ratio"), "{human}");
    assert!(segdb_obs::json::parse(&human).is_err());

    // trace: JSON with per-query trace and span summary.
    let set = parse_csv(&csv).unwrap();
    let x = set[0].a.x.to_string();
    let out = run(&a(&["trace", &db_path, "line", &x, "0"])).unwrap();
    let doc = segdb_obs::json::parse(&out).expect("trace output is valid JSON");
    assert!(
        doc.get("query").and_then(|q| q.get("io")).is_some(),
        "{out}"
    );
    let spans = doc.get("spans").expect("span summary present");
    let reads = spans.get("page_reads").and_then(|v| v.as_f64()).unwrap();
    let q_reads = doc
        .get("query")
        .and_then(|q| q.get("io"))
        .and_then(|io| io.get("reads"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert_eq!(reads, q_reads, "span events agree with I/O counters");
    assert!(
        doc.get("hits")
            .and_then(|h| h.as_arr())
            .is_some_and(|h| !h.is_empty()),
        "{out}"
    );

    let human = run(&a(&["trace", &db_path, "line", &x, "0", "--human"])).unwrap();
    assert!(human.contains("second-level probes"), "{human}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn query_modes_local() {
    let csv_path = tmp("modes.csv");
    let db_path = tmp("modes.db");
    let csv = run(&a(&["gen", "strips", "300", "17"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&[
        "build",
        &db_path,
        &csv_path,
        "--page-size",
        "1024",
        "--index",
        "interval",
    ]))
    .unwrap();
    let set = parse_csv(&csv).unwrap();
    let x = set[0].a.x.to_string();

    // Collect is the baseline: count the CSV hit lines.
    let out = run(&a(&["query", &db_path, "line", &x, "0"])).unwrap();
    let collected = out.lines().filter(|l| !l.starts_with('#')).count();
    assert!(collected > 0, "{out}");

    // --count answers with the same number, without streaming segments.
    let out = run(&a(&["query", &db_path, "line", &x, "0", "--count"])).unwrap();
    assert_eq!(
        out.lines().next().unwrap().parse::<usize>().unwrap(),
        collected,
        "{out}"
    );
    assert!(out.contains("# count"), "{out}");

    // --exists prints a boolean.
    let out = run(&a(&["query", &db_path, "line", &x, "0", "--exists"])).unwrap();
    assert_eq!(out.lines().next(), Some("true"), "{out}");
    let out = run(&a(&[
        "query",
        &db_path,
        "--exists",
        "line",
        "999999999",
        "0",
    ]))
    .unwrap();
    assert_eq!(out.lines().next(), Some("false"), "{out}");

    // --limit truncates to k hits.
    let k = 1.min(collected);
    let out = run(&a(&["query", &db_path, "line", &x, "0", "--limit", "1"])).unwrap();
    assert_eq!(
        out.lines().filter(|l| !l.starts_with('#')).count(),
        k,
        "{out}"
    );

    // Modes do not combine with free-direction queries.
    assert!(matches!(
        run(&a(&[
            "query", &db_path, "free", "0", "0", "1", "1", "--count"
        ])),
        Err(CliError::Usage(_))
    ));
    // A missing limit value is a usage error.
    assert!(matches!(
        run(&a(&["query", &db_path, "line", &x, "0", "--limit"])),
        Err(CliError::Usage(_))
    ));

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn remote_query_and_stats_round_trip() {
    let csv_path = tmp("remote.csv");
    let db_path = tmp("remote.db");
    let csv = run(&a(&["gen", "mixed", "300", "33"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&["build", &db_path, &csv_path, "--page-size", "1024"])).unwrap();
    let set = parse_csv(&csv).unwrap();

    let mut child = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_segdb-cli"))
            .args(["serve", &db_path, "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    let mut child_out = BufReader::new(child.0.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();

    // `query --remote` goes through the resilient client; a line
    // through a known segment's left endpoint must report its id.
    let s = set[0];
    let out = run(&a(&[
        "query",
        "--remote",
        &addr,
        "line",
        &s.a.x.to_string(),
    ]))
    .unwrap();
    assert!(
        out.lines().any(|l| l == s.id.to_string()),
        "remote line query missed id {}: {out}",
        s.id
    );
    assert!(out.contains("hits (remote ids)"), "{out}");

    // The bounded-segment shape works remotely too.
    let out = run(&a(&[
        "query",
        "--remote",
        &addr,
        "segment",
        &s.a.x.to_string(),
        &(s.a.y - 1).to_string(),
        &s.a.x.to_string(),
        &(s.a.y + 1).to_string(),
    ]))
    .unwrap();
    assert!(out.lines().any(|l| l == s.id.to_string()), "{out}");

    // Remote query modes: --count agrees with the collected hit count,
    // --exists answers a boolean, --limit truncates.
    let collect = run(&a(&[
        "query",
        "--remote",
        &addr,
        "line",
        &s.a.x.to_string(),
    ]))
    .unwrap();
    let collected = collect.lines().filter(|l| !l.starts_with('#')).count();
    let out = run(&a(&[
        "query",
        "--remote",
        &addr,
        "line",
        &s.a.x.to_string(),
        "--count",
    ]))
    .unwrap();
    assert_eq!(
        out.lines().next().unwrap().parse::<usize>().unwrap(),
        collected,
        "{out}"
    );
    let out = run(&a(&[
        "query",
        "--remote",
        &addr,
        "line",
        &s.a.x.to_string(),
        "--exists",
    ]))
    .unwrap();
    assert_eq!(out.lines().next(), Some("true"), "{out}");
    let out = run(&a(&[
        "query",
        "--remote",
        &addr,
        "line",
        &s.a.x.to_string(),
        "--limit",
        "1",
    ]))
    .unwrap();
    assert_eq!(
        out.lines().filter(|l| !l.starts_with('#')).count(),
        1.min(collected),
        "{out}"
    );

    // `stats --remote` returns the server's stats document with the
    // hardening counters and the net-fault ledger.
    let out = run(&a(&["stats", "--remote", &addr])).unwrap();
    let doc = segdb_obs::json::parse(out.trim_end()).expect("remote stats is valid JSON");
    let server = doc.get("server").expect("stats carry a server block");
    assert!(server.get("max_connections").is_some(), "{out}");
    assert!(server.get("write_drops").is_some(), "{out}");
    let net = doc.get("net").expect("stats carry a net block");
    assert!(net.get("injected_disruptive").is_some(), "{out}");
    assert!(net.get("observed_faults").is_some(), "{out}");

    // An unknown shape is a usage error, not a wire call.
    assert!(matches!(
        run(&a(&["query", "--remote", &addr, "diagonal", "3"])),
        Err(CliError::Usage(_))
    ));

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"{\"method\":\"shutdown\"}\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let status = child.0.wait().unwrap();
    assert!(status.success(), "{status:?}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}
