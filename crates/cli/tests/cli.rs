//! End-to-end CLI flows: generate → build → info → query → mutate →
//! re-query, all through the public `run` entry point.

use segdb_cli::{parse_csv, run};

fn a(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("segdb-cli-{name}-{}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_workflow() {
    let csv_path = tmp("wf.csv");
    let db_path = tmp("wf.db");

    // 1. Generate a workload.
    let csv = run(&a(&["gen", "temporal", "400", "11"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    let set = parse_csv(&csv).unwrap();

    // 2. Build a persistent database with the any-direction extension.
    let out = run(&a(&["build", &db_path, &csv_path, "--page-size", "1024", "--index", "binary", "--arbitrary"])).unwrap();
    assert!(out.contains("built 400 segments"), "{out}");

    // 3. Info reads the superblock.
    let out = run(&a(&["info", &db_path])).unwrap();
    assert!(out.contains("segments: 400"), "{out}");
    assert!(out.contains("1024 bytes"), "{out}");

    // 4. Query: a line through a known segment's left endpoint.
    let s = set[0];
    let out = run(&a(&["query", &db_path, "line", &s.a.x.to_string(), "0"])).unwrap();
    assert!(out.lines().any(|l| l.starts_with(&format!("{},", s.id))), "{out}");
    assert!(out.contains("block reads"));

    // 5. Free (arbitrary-direction) query works thanks to --arbitrary.
    let out = run(&a(&["query", &db_path, "free", "0", "0", "30000", "900"])).unwrap();
    assert!(out.contains("hits"), "{out}");

    // 6. Mutations persist.
    run(&a(&["insert", &db_path, "99999", "70000", "-50", "70010", "-45"])).unwrap();
    let out = run(&a(&["query", &db_path, "line", "70005", "0"])).unwrap();
    assert!(out.lines().any(|l| l.starts_with("99999,")), "{out}");
    let out = run(&a(&["remove", &db_path, "99999", "70000", "-50", "70010", "-45"])).unwrap();
    assert!(out.starts_with("removed"), "{out}");
    let out = run(&a(&["query", &db_path, "line", "70005", "0"])).unwrap();
    assert!(!out.lines().any(|l| l.starts_with("99999,")), "{out}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn build_rejects_crossing_input() {
    let csv_path = tmp("cross.csv");
    let db_path = tmp("cross.db");
    std::fs::write(&csv_path, "1,0,0,10,10\n2,0,10,10,0\n").unwrap();
    let err = run(&a(&["build", &db_path, &csv_path])).unwrap_err();
    assert!(err.to_string().contains("cross"), "{err}");
    // --trust skips validation (the caller takes responsibility).
    let out = run(&a(&["build", &db_path, &csv_path, "--trust", "--index", "scan"])).unwrap();
    assert!(out.contains("built 2 segments"));
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn sheared_build_and_query() {
    let csv_path = tmp("shear.csv");
    let db_path = tmp("shear.db");
    let csv = run(&a(&["gen", "temporal", "100", "3"])).unwrap();
    std::fs::write(&csv_path, &csv).unwrap();
    run(&a(&["build", &db_path, &csv_path, "--direction", "1,4"])).unwrap();
    let out = run(&a(&["info", &db_path])).unwrap();
    assert!(out.contains("direction: (1, 4)"), "{out}");
    // Misaligned segment query fails cleanly.
    let err = run(&a(&["query", &db_path, "segment", "0", "0", "10", "0"])).unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");
    // Aligned one works: (0,0) → (1,4) lies on a (1,4)-line.
    let out = run(&a(&["query", &db_path, "segment", "0", "0", "1", "4"])).unwrap();
    assert!(out.contains("hits"));
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&db_path).ok();
}
