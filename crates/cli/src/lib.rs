#![warn(missing_docs)]

//! # segdb-cli — the segment database from the command line
//!
//! ```text
//! segdb-cli gen <family> <n> <seed>                      # emit CSV to stdout
//! segdb-cli build <db> <csv> [options]                   # build a persistent DB
//! segdb-cli info <db>                                    # superblock + space summary
//! segdb-cli query <db> line <x> <y>                      # stabbing line through (x,y)
//! segdb-cli query <db> segment <x1> <y1> <x2> <y2>       # VS query (aligned endpoints)
//! segdb-cli query <db> ray-up <x> <y> | ray-down <x> <y>
//! segdb-cli query <db> free <x1> <y1> <x2> <y2>          # any-direction (§5 extension)
//! segdb-cli query --remote <host:port> <shape> <coords…>  # via the resilient client
//!
//! query modes (line / ray-up / ray-down / segment, local or remote):
//!   --count                 answer with the hit count only (no segments
//!                           are streamed; count-capable indexes skip
//!                           second-level page reads entirely)
//!   --exists                answer `true`/`false`, stopping at the
//!                           first hit
//!   --limit <k>             report at most k segments, then stop
//! segdb-cli insert <db> <id> <x1> <y1> <x2> <y2>
//! segdb-cli remove <db> <id> <x1> <y1> <x2> <y2>
//! segdb-cli insert --remote <host:port> <id> <x1> <y1> <x2> <y2>
//! segdb-cli remove --remote <host:port> <id> <x1> <y1> <x2> <y2>
//! segdb-cli stats <db> [csv] [--sample <n>] [--seed <s>] [--human]
//! segdb-cli stats --remote <host:port>                   # a running server's stats
//! segdb-cli slowlog --remote <host:port>                 # its slow-query log
//! segdb-cli trace <db> <shape> <coords…> [--human]
//! segdb-cli serve <db> [serve options]                   # TCP query server
//! segdb-cli partition <csv> <k> <out-dir> [partition options]  # shard a CSV by x-range
//! segdb-cli route <map.json> [route options]             # scatter-gather router
//! segdb-cli health --remote <host:port>                  # server/cluster health probe
//! segdb-cli sync --remote <replica> <peer> [--from <seq>]  # replay missed WAL records
//! segdb-cli torture [torture options]                    # seeded crash-recovery sweep
//!
//! build options:
//!   --page-size <bytes>     block size (default 4096)
//!   --index <kind>          binary | interval | scan | stab (default interval)
//!   --direction <dx,dy>     fixed query direction (default 0,1)
//!   --arbitrary             also build the any-direction extension
//!   --trust                 skip the NCT validation sweep
//!
//! serve options:
//!   --addr <host:port>      bind address (default 127.0.0.1:7878; :0 = any port)
//!   --workers <n>           executor threads (default 4)
//!   --cache-pages <n>       buffer-pool capacity in pages (default 256)
//!   --cache-shards <n>      buffer-pool lock shards (default 8)
//!   --queue-depth <n>       bounded job queue; beyond it requests get
//!                           an `overloaded` error (default 64)
//!   --timeout-ms <n>        per-request deadline (default 5000)
//!   --write-timeout-ms <n>  per-reply write deadline; a stalled peer
//!                           loses the connection (default 2000)
//!   --idle-timeout-ms <n>   reap connections whose next request line
//!                           does not arrive in time (default 30000)
//!   --max-connections <n>   admission gate; one beyond it is answered
//!                           `overloaded` and closed (default 256)
//!   --drain-ms <n>          bound on waiting for live connections to
//!                           finish after shutdown (default 5000)
//!   --slowlog-entries <n>   keep the n worst requests for the `slowlog`
//!                           wire method (default 32; 0 disables)
//!   --slowlog-threshold-us <n>
//!                           only requests at least this slow enter the
//!                           slow-query log (default 0: every request)
//!   --wal <path>            serve writable: open (replaying) or create
//!                           a write-ahead log and accept `insert` /
//!                           `delete` / `flush` wire methods
//!   --group-window <n>      WAL group-commit window in records
//!                           (default 8)
//!   --delta-limit <n>       delta-overlay bound before a partial
//!                           rebuild folds it into the index
//!                           (default 1024)
//!   --compact-min-tombs <n> background-compact once this many
//!                           tombstones accumulate (default 0: off)
//!   --compact-interval-ms <n>
//!                           compactor poll cadence (default 500)
//!   --batch-window-us <n>   batched execution admission window: a
//!                           worker holds a query this long collecting
//!                           batchmates, then runs the group as one
//!                           shared index walk (default 0: off)
//!   --batch-max <n>         most queries one shared walk serves
//!                           (default 16; 1 disables batching)
//!   --pin-pages <n>         pin up to n internal-level index pages
//!                           resident in the cache at startup
//!                           (default 0: fully evictable)
//!
//! partition options:
//!   --replicas <r>          plan an r-way replica set per shard: the
//!                           summary records `replicas` and, with
//!                           `--map-out`, the template lists r
//!                           addresses per shard (default 1)
//!   --map-out <file>        write a ready-to-edit shard-map v2 JSON
//!                           (`{"replicas":[...],"until":...}` entries
//!                           with deterministic local placeholder
//!                           ports) next to the shard CSVs
//!
//! route options:
//!   --addr <host:port>      bind address (default 127.0.0.1:0)
//!   --max-retries <n>       upstream retries per replica call (default
//!                           4; kept small — downstream clients retry
//!                           too)
//!   --attempt-timeout-ms <n>
//!                           per-attempt deadline of one replica call
//!                           (default 2000)
//!   --no-hedge              disable hedged first read attempts (on by
//!                           default when a shard has 2+ live replicas)
//!   --breaker-failures <n>  consecutive infrastructure failures that
//!                           trip a replica's circuit breaker open
//!                           (default 3)
//!   --breaker-cooldown-ms <n>
//!                           how long a tripped breaker stays open
//!                           before admitting one half-open probe
//!                           (default 1000)
//!   --forward-shutdown      relay a wire `shutdown` to every replica
//!                           before the router stops (default: shards
//!                           keep running)
//!
//! torture options:
//!   --seed <s>              first master seed (default 1)
//!   --scenarios <k>         seeds per index kind (default 5)
//!   --n <n>                 initial segment count (default 80)
//!   --rounds <r>            workload rounds per scenario (default 5)
//!   --page-size <bytes>     block size (default 512)
//! ```
//!
//! `torture` runs `scenarios × 4` seeded crash-recovery scenarios (one
//! sweep per index kind) over a deterministic fault-injecting device —
//! see `segdb_core::torture` — and prints one JSON line of aggregate
//! counters plus a fault-trace digest. The output is a pure function of
//! the arguments: running the same invocation twice must print the
//! identical line (the deflake guarantee `check.sh` asserts).
//!
//! `stats` runs a deterministic sample workload of line queries with the
//! observability layer attached and prints the metric registry snapshot
//! plus the cost-model fit (JSON by default, `--human` for a table).
//! When a CSV data file is given, query anchors are sampled from the
//! stored segments so the workload actually reports hits; otherwise
//! anchors sweep a fixed coordinate window. `trace` runs one query
//! (same shapes as `query`) with event tracing on and prints the
//! enriched per-query trace plus the span summary. Schemas are
//! documented in the repo README under "Observability".
//!
//! `serve` opens the database for concurrent serving (sharded buffer
//! pool, observability on), prints `listening on <addr>` and blocks
//! until a wire `shutdown` request arrives (protocol in the repo README
//! under "Serving"; drive load with `segdb-load`). Without `--wal` the
//! database is read-only; with it, writes are WAL-durable and `insert
//! --remote` / `remove --remote` reach the same server through the
//! resilient client (DESIGN.md §13).
//!
//! `partition` splits a segment CSV into `k` x-range shards at
//! endpoint-median cuts (DESIGN.md §14): each shard file holds every
//! segment whose x-span touches its range, so segments crossing a cut
//! are *replicated* into each side — the per-node short/long split of
//! Theorem 2 applied across machines. It writes `shard0.csv` …
//! `shard{k-1}.csv` into the output directory and prints the cut
//! abscissae as JSON; feed those cuts into a shard-map file and `route`
//! serves the cluster behind one address. With `--replicas <r>` the
//! planned topology gives each shard an r-way replica set (every
//! replica serves the *same* fragment CSV behind its own WAL), and
//! `--map-out` writes the shard-map v2 template to edit addresses
//! into. `health --remote` asks a server (or router, which pings every
//! replica and feeds the per-replica circuit breakers) whether it is
//! up and writable. `sync --remote <replica> <peer>` tells a restarted
//! replica to pull the WAL records it missed from a caught-up peer of
//! the same shard (the `sync_from` wire method, DESIGN.md §15) before
//! it rejoins reads.
//!
//! `slowlog --remote` prints a running server's slow-query log — the K
//! worst requests with per-stage timings (queue/exec/write µs), pages
//! touched and the client correlation ids (DESIGN.md §12; see also the
//! `latency`/`pages` blocks of `stats --remote`).
//!
//! The CSV format is `id,x1,y1,x2,y2`, one segment per line; `#` starts
//! a comment. All logic lives in this library crate so the integration
//! tests drive [`run`] directly.

use segdb_core::{
    torture, DbError, IndexKind, QueryAnswer, QueryMode, QueryTrace, SegmentDatabase, XCuts,
};
use segdb_geom::gen::Family;
use segdb_geom::Segment;
use segdb_obs::trace::TraceSummary;
use segdb_obs::Json;
use segdb_rng::SmallRng;
use std::fmt::Write as _;

/// Everything that can go wrong at the CLI surface.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the string is a usage hint.
    Usage(String),
    /// Input file problems.
    Io(String),
    /// Database-level failure.
    Db(DbError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(s) => write!(f, "usage error: {s}"),
            CliError::Io(s) => write!(f, "I/O error: {s}"),
            CliError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Stable machine-readable error class.
    pub fn code(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Io(_) => "io",
            CliError::Db(_) => "db",
        }
    }

    /// Structured form the binary prints to stderr:
    /// `{"error":"io","message":"..."}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("error", Json::Str(self.code().to_string())),
            ("message", Json::Str(self.to_string())),
        ])
    }

    /// Process exit code: 2 for usage mistakes, 1 for runtime failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) | CliError::Db(_) => 1,
        }
    }
}

impl From<DbError> for CliError {
    fn from(e: DbError) -> Self {
        CliError::Db(e)
    }
}

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

/// Parse a CSV body (`id,x1,y1,x2,y2` lines) into segments.
pub fn parse_csv(body: &str) -> Result<Vec<Segment>, CliError> {
    let mut out = Vec::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split(',').map(str::trim);
        let mut next_i64 = |what: &str| -> Result<i64, CliError> {
            it.next()
                .ok_or_else(|| CliError::Io(format!("line {}: missing {what}", ln + 1)))?
                .parse::<i64>()
                .map_err(|e| CliError::Io(format!("line {}: bad {what}: {e}", ln + 1)))
        };
        let id = next_i64("id")? as u64;
        let (x1, y1, x2, y2) = (
            next_i64("x1")?,
            next_i64("y1")?,
            next_i64("x2")?,
            next_i64("y2")?,
        );
        let seg = Segment::new(id, (x1, y1), (x2, y2))
            .map_err(|e| CliError::Io(format!("line {}: {e}", ln + 1)))?;
        out.push(seg);
    }
    Ok(out)
}

/// Render segments as the CSV format `parse_csv` accepts.
pub fn to_csv(segs: &[Segment]) -> String {
    let mut s = String::with_capacity(segs.len() * 24);
    s.push_str("# id,x1,y1,x2,y2\n");
    for seg in segs {
        let _ = writeln!(
            s,
            "{},{},{},{},{}",
            seg.id, seg.a.x, seg.a.y, seg.b.x, seg.b.y
        );
    }
    s
}

fn parse_index(s: &str) -> Result<IndexKind, CliError> {
    Ok(match s {
        "binary" => IndexKind::TwoLevelBinary,
        "interval" => IndexKind::TwoLevelInterval,
        "scan" => IndexKind::FullScan,
        "stab" => IndexKind::StabThenFilter,
        _ => {
            return usage(format!(
                "unknown index kind '{s}' (binary|interval|scan|stab)"
            ))
        }
    })
}

fn parse_family(s: &str) -> Result<Family, CliError> {
    Family::ALL
        .into_iter()
        .find(|f| f.name() == s)
        .map_or_else(|| usage(format!("unknown family '{s}'")), Ok)
}

fn want<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, CliError> {
    args.get(i)
        .map(String::as_str)
        .map_or_else(|| usage(format!("missing {what}")), Ok)
}

fn num(args: &[String], i: usize, what: &str) -> Result<i64, CliError> {
    want(args, i, what)?
        .parse()
        .map_err(|e| CliError::Usage(format!("bad {what}: {e}")))
}

fn render_stats_human(snapshot: &Json) -> String {
    let mut out = String::new();
    let f = |k: &str| snapshot.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let s = |k: &str| {
        snapshot
            .get(k)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let _ = writeln!(out, "index:             {}", s("index"));
    let _ = writeln!(out, "segments:          {}", f("segments"));
    let _ = writeln!(out, "block capacity B:  {}", f("block_segments"));
    let _ = writeln!(out, "space blocks:      {}", f("space_blocks"));
    let _ = writeln!(out, "cache hit ratio:   {:.3}", f("cache_hit_ratio"));
    let _ = writeln!(
        out,
        "fanout util:       {:.1}%",
        f("fanout_utilization_pct")
    );
    if let Some(cm) = snapshot.get("cost_model") {
        let g = |k: &str| cm.get(k).and_then(Json::as_f64);
        let _ = writeln!(
            out,
            "cost model:        {} (bound {})",
            cm.get("kind").and_then(Json::as_str).unwrap_or("?"),
            cm.get("formula").and_then(Json::as_str).unwrap_or("?"),
        );
        match g("fitted_constant") {
            Some(c) => {
                let _ = writeln!(out, "fitted constant:   {c:.3}");
            }
            None => {
                let _ = writeln!(out, "fitted constant:   (warming up)");
            }
        }
        let _ = writeln!(out, "bound violations:  {}", g("violations").unwrap_or(0.0));
    }
    if let Some(metrics) = snapshot.get("metrics") {
        if let Some(Json::Obj(counters)) = metrics.get("counters") {
            let _ = writeln!(out, "counters:");
            for (k, v) in counters {
                let _ = writeln!(out, "  {k:24} {}", v.as_f64().unwrap_or(0.0));
            }
        }
        if let Some(Json::Obj(hists)) = metrics.get("histograms") {
            let _ = writeln!(out, "histograms:");
            for (k, h) in hists {
                let g = |f: &str| h.get(f).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {k:24} n={} mean={:.2} min={} max={}",
                    g("count"),
                    g("mean"),
                    g("min"),
                    g("max"),
                );
            }
        }
    }
    out
}

fn render_trace_human(hits: &[Segment], trace: &QueryTrace, summary: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "hits:                 {}", hits.len());
    let _ = writeln!(out, "first-level nodes:    {}", trace.first_level_nodes);
    let _ = writeln!(out, "second-level probes:  {}", trace.second_level_probes);
    let _ = writeln!(out, "bridge jumps:         {}", trace.bridge_jumps);
    let _ = writeln!(
        out,
        "io:                   {} reads, {} writes, {} cache hits",
        trace.io.reads, trace.io.writes, trace.io.cache_hits
    );
    match trace.cost {
        Some(c) => {
            let _ = writeln!(
                out,
                "cost bound:           measured {} vs bound {:.1} — {}",
                c.measured,
                c.bound,
                if c.within { "within" } else { "VIOLATED" }
            );
        }
        None => {
            let _ = writeln!(out, "cost bound:           (fitter not warmed up)");
        }
    }
    let _ = writeln!(
        out,
        "spans:                {} events ({} dropped), max depth {}",
        summary.events, summary.dropped, summary.max_depth
    );
    let _ = writeln!(
        out,
        "node visits:          pst={} itree={} bptree={}",
        summary.pst_nodes, summary.itree_nodes, summary.bptree_nodes
    );
    out
}

/// A resilient client with CLI-friendly defaults for one-shot commands.
fn remote_client(addr: &str) -> segdb_server::Client {
    // Each CLI invocation is a fresh client session; derive a unique
    // request-id base so write ids never collide with a previous
    // invocation's in the server's idempotence window (retries within
    // *this* invocation still reuse their id, which is the point).
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let id_base = (nanos ^ ((std::process::id() as u64) << 32)) << 16;
    segdb_server::Client::new(segdb_server::ClientConfig {
        addr: addr.to_string(),
        id_base,
        ..segdb_server::ClientConfig::default()
    })
}

/// Strip `--count` / `--exists` / `--limit <k>` out of a `query`
/// argument list, returning the selected mode and the remaining
/// positional arguments.
fn split_query_mode(args: &[String]) -> Result<(QueryMode, Vec<String>), CliError> {
    let mut mode = QueryMode::Collect;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--count" => mode = QueryMode::Count,
            "--exists" => mode = QueryMode::Exists,
            "--limit" => {
                let k = num(args, i + 1, "limit")?;
                if k < 0 {
                    return usage("limit must be non-negative");
                }
                mode = QueryMode::Limit(k as u32);
                i += 1;
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((mode, rest))
}

/// Render a mode-aware query answer: segments as CSV for collect/limit,
/// a bare number for `--count`, `true`/`false` for `--exists`, plus a
/// trailing `#` summary line carrying the I/O counters.
fn render_answer(answer: &QueryAnswer, trace: &QueryTrace) -> String {
    let mut out = String::new();
    match answer {
        QueryAnswer::Segments(hits) => {
            for h in hits {
                let _ = writeln!(out, "{},{},{},{},{}", h.id, h.a.x, h.a.y, h.b.x, h.b.y);
            }
            let _ = writeln!(out, "# {} hits, {} block reads", hits.len(), trace.io.reads);
        }
        QueryAnswer::Count(c) => {
            let _ = writeln!(out, "{c}");
            let _ = writeln!(
                out,
                "# count, {} block reads, {} pages saved",
                trace.io.reads, trace.pages_saved
            );
        }
        QueryAnswer::Exists(found) => {
            let _ = writeln!(out, "{found}");
            let _ = writeln!(out, "# exists, {} block reads", trace.io.reads);
        }
    }
    out
}

/// `query --remote <addr> <shape> <coords…>`: run one query against a
/// live server through the resilient (reconnect-and-retry) client.
fn run_remote_query(args: &[String], mode: QueryMode) -> Result<String, CliError> {
    let addr = want(args, 2, "address")?;
    let shape = want(args, 3, "query shape")?;
    let (method, params): (&str, Vec<(&str, i64)>) = match shape {
        "line" => ("query_line", vec![("x", num(args, 4, "x")?)]),
        "ray-up" => (
            "query_ray_up",
            vec![("x", num(args, 4, "x")?), ("y", num(args, 5, "y")?)],
        ),
        "ray-down" => (
            "query_ray_down",
            vec![("x", num(args, 4, "x")?), ("y", num(args, 5, "y")?)],
        ),
        "segment" => (
            "query_segment",
            vec![
                ("x1", num(args, 4, "x1")?),
                ("y1", num(args, 5, "y1")?),
                ("x2", num(args, 6, "x2")?),
                ("y2", num(args, 7, "y2")?),
            ],
        ),
        other => {
            return usage(format!(
                "unknown remote query shape '{other}' (line|ray-up|ray-down|segment)"
            ))
        }
    };
    let reply = remote_client(addr)
        .query_mode(method, &params, mode)
        .map_err(|e| CliError::Io(format!("remote query failed: {e}")))?;
    let mut out = String::new();
    match mode {
        QueryMode::Count => {
            let _ = writeln!(out, "{}", reply.count);
            let _ = writeln!(out, "# count (remote)");
        }
        QueryMode::Exists => {
            let _ = writeln!(out, "{}", reply.count > 0);
            let _ = writeln!(out, "# exists (remote)");
        }
        QueryMode::Collect | QueryMode::Limit(_) => {
            for id in &reply.ids {
                let _ = writeln!(out, "{id}");
            }
            let _ = writeln!(out, "# {} hits (remote ids)", reply.ids.len());
        }
    }
    Ok(out)
}

/// Run one CLI invocation (`args` excludes the program name); returns the
/// text that would be printed.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match want(args, 0, "command")? {
        "gen" => {
            let family = parse_family(want(args, 1, "family")?)?;
            let n = num(args, 2, "n")? as usize;
            let seed = num(args, 3, "seed")? as u64;
            Ok(to_csv(&family.generate(n, seed)))
        }
        "build" => {
            let db_path = want(args, 1, "db path")?;
            let csv_path = want(args, 2, "csv path")?;
            let body =
                std::fs::read_to_string(csv_path).map_err(|e| CliError::Io(e.to_string()))?;
            let segs = parse_csv(&body)?;
            let mut builder = SegmentDatabase::builder().persist_to(db_path);
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--page-size" => {
                        builder = builder.page_size(num(args, i + 1, "page size")? as usize);
                        i += 2;
                    }
                    "--index" => {
                        builder = builder.index(parse_index(want(args, i + 1, "index kind")?)?);
                        i += 2;
                    }
                    "--direction" => {
                        let spec = want(args, i + 1, "direction")?;
                        let (dx, dy) = spec
                            .split_once(',')
                            .ok_or_else(|| CliError::Usage("direction must be dx,dy".into()))?;
                        let dx = dx
                            .trim()
                            .parse()
                            .map_err(|_| CliError::Usage("bad dx".into()))?;
                        let dy = dy
                            .trim()
                            .parse()
                            .map_err(|_| CliError::Usage("bad dy".into()))?;
                        builder = builder.direction(dx, dy)?;
                        i += 2;
                    }
                    "--arbitrary" => {
                        builder = builder.enable_arbitrary_queries();
                        i += 1;
                    }
                    "--trust" => {
                        builder = builder.trust_input();
                        i += 1;
                    }
                    other => return usage(format!("unknown build option '{other}'")),
                }
            }
            let db = builder.build(segs)?;
            Ok(format!(
                "built {} segments into {} ({} blocks)\n",
                db.len(),
                db_path,
                db.space_blocks()
            ))
        }
        "info" => {
            let db = SegmentDatabase::open(want(args, 1, "db path")?, 0)?;
            let d = db.direction();
            Ok(format!(
                "segments: {}\nblocks:   {}\npage:     {} bytes\ndirection: ({}, {})\n",
                db.len(),
                db.space_blocks(),
                db.pager().page_size(),
                d.dx(),
                d.dy(),
            ))
        }
        "query" => {
            let (mode, args) = split_query_mode(args)?;
            let args = args.as_slice();
            if want(args, 1, "db path")? == "--remote" {
                return run_remote_query(args, mode);
            }
            let db = SegmentDatabase::open(want(args, 1, "db path")?, 0)?;
            let shape = want(args, 2, "query shape")?;
            let (answer, trace) = match shape {
                "line" => db.query_line_mode((num(args, 3, "x")?, num(args, 4, "y")?), mode)?,
                "ray-up" => db.query_ray_up_mode((num(args, 3, "x")?, num(args, 4, "y")?), mode)?,
                "ray-down" => {
                    db.query_ray_down_mode((num(args, 3, "x")?, num(args, 4, "y")?), mode)?
                }
                "segment" => db.query_segment_mode(
                    (num(args, 3, "x1")?, num(args, 4, "y1")?),
                    (num(args, 5, "x2")?, num(args, 6, "y2")?),
                    mode,
                )?,
                "free" => {
                    if mode != QueryMode::Collect {
                        return usage("query modes apply to line|ray-up|ray-down|segment only");
                    }
                    let (hits, trace) = db.query_free_segment(
                        (num(args, 3, "x1")?, num(args, 4, "y1")?),
                        (num(args, 5, "x2")?, num(args, 6, "y2")?),
                    )?;
                    (QueryAnswer::Segments(hits), trace)
                }
                other => return usage(format!("unknown query shape '{other}'")),
            };
            Ok(render_answer(&answer, &trace))
        }
        "stats" => {
            if want(args, 1, "db path")? == "--remote" {
                let addr = want(args, 2, "address")?;
                let doc = remote_client(addr)
                    .remote_stats()
                    .map_err(|e| CliError::Io(format!("remote stats failed: {e}")))?;
                return Ok(format!("{}\n", doc.render()));
            }
            let db_path = want(args, 1, "db path")?;
            let mut sample = 64usize;
            let mut seed = 1u64;
            let mut human = false;
            let mut csv: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--sample" => {
                        sample = num(args, i + 1, "sample count")? as usize;
                        i += 2;
                    }
                    "--seed" => {
                        seed = num(args, i + 1, "seed")? as u64;
                        i += 2;
                    }
                    "--human" => {
                        human = true;
                        i += 1;
                    }
                    other if !other.starts_with('-') && csv.is_none() => {
                        csv = Some(other.to_string());
                        i += 1;
                    }
                    other => return usage(format!("unknown stats option '{other}'")),
                }
            }
            let mut db = SegmentDatabase::open(db_path, 0)?;
            db.set_observability(true);
            let mut rng = SmallRng::seed_from_u64(seed);
            let anchors: Vec<(i64, i64)> = match &csv {
                Some(path) => {
                    let body =
                        std::fs::read_to_string(path).map_err(|e| CliError::Io(e.to_string()))?;
                    let segs = parse_csv(&body)?;
                    if segs.is_empty() {
                        return Err(CliError::Io("empty data file".into()));
                    }
                    (0..sample)
                        .map(|_| {
                            let s = segs[rng.gen_range(0..segs.len())];
                            ((s.a.x + s.b.x) / 2, (s.a.y + s.b.y) / 2)
                        })
                        .collect()
                }
                None => (0..sample)
                    .map(|_| (rng.gen_range(-(1i64 << 20)..(1i64 << 20)), 0))
                    .collect(),
            };
            for (x, y) in anchors {
                db.query_line((x, y))?;
            }
            let snapshot = db.metrics_json().expect("observability just enabled");
            if human {
                Ok(render_stats_human(&snapshot))
            } else {
                Ok(format!("{}\n", snapshot.render()))
            }
        }
        "slowlog" => {
            if want(args, 1, "--remote")? != "--remote" {
                return usage("slowlog serves remote servers only: slowlog --remote <host:port>");
            }
            let addr = want(args, 2, "address")?;
            let doc = remote_client(addr)
                .remote_slowlog()
                .map_err(|e| CliError::Io(format!("remote slowlog failed: {e}")))?;
            Ok(format!("{}\n", doc.render()))
        }
        "trace" => {
            let db_path = want(args, 1, "db path")?;
            let shape = want(args, 2, "query shape")?;
            let human = args.last().map(String::as_str) == Some("--human");
            let mut db = SegmentDatabase::open(db_path, 0)?;
            db.set_observability(true);
            segdb_obs::trace::clear();
            let result = segdb_obs::trace::with_tracing(|| -> Result<_, CliError> {
                Ok(match shape {
                    "line" => db.query_line((num(args, 3, "x")?, num(args, 4, "y")?))?,
                    "ray-up" => db.query_ray_up((num(args, 3, "x")?, num(args, 4, "y")?))?,
                    "ray-down" => db.query_ray_down((num(args, 3, "x")?, num(args, 4, "y")?))?,
                    "segment" => db.query_segment(
                        (num(args, 3, "x1")?, num(args, 4, "y1")?),
                        (num(args, 5, "x2")?, num(args, 6, "y2")?),
                    )?,
                    other => return usage(format!("unknown trace shape '{other}'")),
                })
            });
            let (events, dropped) = segdb_obs::trace::drain();
            let (hits, trace) = result?;
            let summary = TraceSummary::from_events(&events, dropped);
            if human {
                Ok(render_trace_human(&hits, &trace, &summary))
            } else {
                let doc = Json::obj([
                    ("shape", Json::Str(shape.into())),
                    (
                        "hits",
                        Json::Arr(hits.iter().map(|s| Json::U64(s.id)).collect()),
                    ),
                    ("query", trace.to_json()),
                    ("spans", summary.to_json()),
                ]);
                Ok(format!("{}\n", doc.render()))
            }
        }
        "serve" => {
            let db_path = want(args, 1, "db path")?;
            let mut cfg = segdb_server::ServerConfig {
                addr: "127.0.0.1:7878".to_string(),
                ..segdb_server::ServerConfig::default()
            };
            let mut cache_pages = 256usize;
            let mut cache_shards = 8usize;
            let mut wal_path: Option<String> = None;
            let mut wcfg = segdb_core::WriterConfig::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--addr" => {
                        cfg.addr = want(args, i + 1, "address")?.to_string();
                    }
                    "--workers" => {
                        cfg.workers = num(args, i + 1, "worker count")?.max(1) as usize;
                    }
                    "--cache-pages" => {
                        cache_pages = num(args, i + 1, "cache pages")?.max(0) as usize;
                    }
                    "--cache-shards" => {
                        cache_shards = num(args, i + 1, "cache shards")?.max(1) as usize;
                    }
                    "--queue-depth" => {
                        cfg.queue_depth = num(args, i + 1, "queue depth")?.max(0) as usize;
                    }
                    "--timeout-ms" => {
                        cfg.request_timeout = std::time::Duration::from_millis(
                            num(args, i + 1, "timeout")?.max(0) as u64,
                        );
                    }
                    "--write-timeout-ms" => {
                        cfg.write_timeout = std::time::Duration::from_millis(
                            num(args, i + 1, "write timeout")?.max(1) as u64,
                        );
                    }
                    "--idle-timeout-ms" => {
                        cfg.idle_timeout = std::time::Duration::from_millis(
                            num(args, i + 1, "idle timeout")?.max(1) as u64,
                        );
                    }
                    "--max-connections" => {
                        cfg.max_connections = num(args, i + 1, "connection limit")?.max(1) as usize;
                    }
                    "--drain-ms" => {
                        cfg.drain_timeout = std::time::Duration::from_millis(
                            num(args, i + 1, "drain bound")?.max(0) as u64,
                        );
                    }
                    "--slowlog-entries" => {
                        cfg.slowlog_entries = num(args, i + 1, "slowlog entries")?.max(0) as usize;
                    }
                    "--slowlog-threshold-us" => {
                        cfg.slowlog_threshold = std::time::Duration::from_micros(
                            num(args, i + 1, "slowlog threshold")?.max(0) as u64,
                        );
                    }
                    "--wal" => {
                        wal_path = Some(want(args, i + 1, "wal path")?.to_string());
                    }
                    "--group-window" => {
                        wcfg.group_window = num(args, i + 1, "group window")?.max(1) as usize;
                    }
                    "--delta-limit" => {
                        wcfg.delta_limit = num(args, i + 1, "delta limit")?.max(1) as usize;
                    }
                    "--compact-min-tombs" => {
                        cfg.compact_min_tombs = num(args, i + 1, "tombstone floor")?.max(0) as u64;
                    }
                    "--compact-interval-ms" => {
                        cfg.compact_interval = std::time::Duration::from_millis(
                            num(args, i + 1, "compact interval")?.max(1) as u64,
                        );
                    }
                    "--batch-window-us" => {
                        cfg.batch_window = std::time::Duration::from_micros(
                            num(args, i + 1, "batch window")?.max(0) as u64,
                        );
                    }
                    "--batch-max" => {
                        cfg.batch_max = num(args, i + 1, "batch size limit")?.max(1) as usize;
                    }
                    "--pin-pages" => {
                        cfg.pin_budget = num(args, i + 1, "pin budget")?.max(0) as usize;
                    }
                    other => return usage(format!("unknown serve option '{other}'")),
                }
                i += 2;
            }
            let mut db = SegmentDatabase::open_sharded(db_path, cache_pages, cache_shards)?;
            db.set_observability(true);
            let server = match wal_path {
                None => segdb_server::Server::start(std::sync::Arc::new(db), cfg),
                Some(wal) => {
                    // Open the log if it exists (replaying its durable
                    // tail), else create it with the database's block size.
                    let dev: Box<dyn segdb_pager::Device> = if std::path::Path::new(&wal).exists() {
                        Box::new(
                            segdb_pager::FileDevice::open(&wal)
                                .map_err(|e| CliError::Io(format!("cannot open WAL: {e}")))?,
                        )
                    } else {
                        let page = db.pager().page_size().max(128);
                        Box::new(
                            segdb_pager::FileDevice::create(&wal, page)
                                .map_err(|e| CliError::Io(format!("cannot create WAL: {e}")))?,
                        )
                    };
                    let (engine, report) = segdb_core::WriteEngine::recover(db, dev, wcfg)?;
                    println!(
                        "wal replayed {} records ({} applied past checkpoint {})",
                        report.replayed, report.applied, report.checkpoint
                    );
                    segdb_server::Server::start_writable(std::sync::Arc::new(engine), cfg)
                }
            }
            .map_err(|e| CliError::Io(format!("cannot bind server: {e}")))?;
            // Announce the resolved address immediately — scripts read
            // this line to learn the port when binding to `:0`.
            println!("listening on {}", server.addr());
            let _ = std::io::Write::flush(&mut std::io::stdout());
            server.wait();
            Ok("server stopped\n".to_string())
        }
        "partition" => {
            let csv_path = want(args, 1, "csv path")?;
            let k = num(args, 2, "shard count")?;
            if k < 1 {
                return usage("shard count must be at least 1");
            }
            let out_dir = want(args, 3, "output directory")?;
            let mut replicas = 1usize;
            let mut map_out: Option<String> = None;
            let mut i = 4;
            while i < args.len() {
                match args[i].as_str() {
                    "--replicas" => {
                        let r = num(args, i + 1, "replica count")?;
                        if r < 1 {
                            return usage("replica count must be at least 1");
                        }
                        replicas = r as usize;
                        i += 2;
                    }
                    "--map-out" => {
                        map_out = Some(want(args, i + 1, "map path")?.to_string());
                        i += 2;
                    }
                    other => return usage(format!("unknown partition option '{other}'")),
                }
            }
            let body =
                std::fs::read_to_string(csv_path).map_err(|e| CliError::Io(e.to_string()))?;
            let segs = parse_csv(&body)?;
            let cuts = XCuts::median_cuts(&segs, k as usize)
                .map_err(|e| CliError::Io(format!("cannot partition: {e}")))?;
            std::fs::create_dir_all(out_dir).map_err(|e| CliError::Io(e.to_string()))?;
            let shards = cuts.fragments(&segs);
            let mut per_shard = Vec::with_capacity(shards.len());
            for (i, shard) in shards.iter().enumerate() {
                let path = std::path::Path::new(out_dir).join(format!("shard{i}.csv"));
                std::fs::write(&path, to_csv(shard))
                    .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
                per_shard.push(Json::U64(shard.len() as u64));
            }
            let mut fields = vec![
                ("k".to_string(), Json::U64(cuts.shard_count() as u64)),
                (
                    "cuts".to_string(),
                    Json::Arr(cuts.cuts().iter().map(|&c| Json::I64(c)).collect()),
                ),
                ("per_shard".to_string(), Json::Arr(per_shard)),
                ("replicas".to_string(), Json::U64(replicas as u64)),
            ];
            if let Some(map_path) = map_out {
                // A ready-to-edit shard-map v2 template: every replica
                // of shard i serves the same `shard{i}.csv` fragment;
                // the placeholder ports (7001 + i + 1000·r) only need
                // changing when the cluster is not one local host.
                let entries = (0..cuts.shard_count())
                    .map(|i| {
                        let set = (0..replicas)
                            .map(|r| Json::Str(format!("127.0.0.1:{}", 7001 + i + 1000 * r)))
                            .collect();
                        let mut entry = vec![("replicas".to_string(), Json::Arr(set))];
                        if let Some(&cut) = cuts.cuts().get(i) {
                            entry.push(("until".to_string(), Json::I64(cut)));
                        }
                        Json::Obj(entry)
                    })
                    .collect();
                let map = Json::obj([("shards", Json::Arr(entries))]);
                std::fs::write(&map_path, format!("{}\n", map.render()))
                    .map_err(|e| CliError::Io(format!("cannot write {map_path}: {e}")))?;
                fields.push(("map".to_string(), Json::Str(map_path)));
            }
            Ok(format!("{}\n", Json::Obj(fields).render()))
        }
        "route" => {
            let map_path = want(args, 1, "shard-map path")?;
            let body =
                std::fs::read_to_string(map_path).map_err(|e| CliError::Io(e.to_string()))?;
            // A malformed or non-monotonic topology is an operator
            // mistake, not an I/O accident: fail with the structured
            // usage error (exit 2) and never a panic.
            let map = segdb_server::ShardMap::parse(&body)
                .map_err(|e| CliError::Usage(format!("bad shard map {map_path}: {e}")))?;
            let mut cfg = segdb_server::RouterConfig::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--addr" => {
                        cfg.addr = want(args, i + 1, "address")?.to_string();
                        i += 2;
                    }
                    "--max-retries" => {
                        cfg.max_retries = num(args, i + 1, "retry count")?.max(0) as u32;
                        i += 2;
                    }
                    "--attempt-timeout-ms" => {
                        cfg.attempt_timeout = std::time::Duration::from_millis(
                            num(args, i + 1, "attempt timeout")?.max(1) as u64,
                        );
                        i += 2;
                    }
                    "--no-hedge" => {
                        cfg.hedge_reads = false;
                        i += 1;
                    }
                    "--breaker-failures" => {
                        cfg.breaker.failure_threshold =
                            num(args, i + 1, "failure threshold")?.max(1) as u32;
                        i += 2;
                    }
                    "--breaker-cooldown-ms" => {
                        cfg.breaker.cooldown_ms = num(args, i + 1, "cooldown")?.max(1) as u64;
                        i += 2;
                    }
                    "--forward-shutdown" => {
                        cfg.forward_shutdown = true;
                        i += 1;
                    }
                    other => return usage(format!("unknown route option '{other}'")),
                }
            }
            let router = segdb_server::Router::start(map, cfg)
                .map_err(|e| CliError::Io(format!("cannot bind router: {e}")))?;
            // Same contract as `serve`: scripts read this line for the
            // resolved port when binding to `:0`.
            println!("listening on {}", router.addr());
            let _ = std::io::Write::flush(&mut std::io::stdout());
            router.wait();
            Ok("router stopped\n".to_string())
        }
        "health" => {
            if want(args, 1, "--remote")? != "--remote" {
                return usage("health probes remote servers only: health --remote <host:port>");
            }
            let addr = want(args, 2, "address")?;
            let doc = remote_client(addr)
                .remote_health()
                .map_err(|e| CliError::Io(format!("remote health failed: {e}")))?;
            Ok(format!("{}\n", doc.render()))
        }
        "sync" => {
            if want(args, 1, "--remote")? != "--remote" {
                return usage(
                    "sync drives a running replica: sync --remote <replica> <peer> [--from <seq>]",
                );
            }
            let addr = want(args, 2, "replica address")?;
            let peer = want(args, 3, "peer address")?;
            let mut from = None;
            let mut i = 4;
            while i < args.len() {
                match args[i].as_str() {
                    "--from" => {
                        from = Some(num(args, i + 1, "sequence number")?.max(0) as u64);
                        i += 2;
                    }
                    other => return usage(format!("unknown sync option '{other}'")),
                }
            }
            let doc = remote_client(addr)
                .sync_from(peer, from)
                .map_err(|e| CliError::Io(format!("sync failed: {e}")))?;
            Ok(format!("{}\n", doc.render()))
        }
        "torture" => {
            let mut seed = 1u64;
            let mut scenarios = 5usize;
            let mut n = 80usize;
            let mut rounds = 5usize;
            let mut page_size = 512usize;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => seed = num(args, i + 1, "seed")? as u64,
                    "--scenarios" => {
                        scenarios = num(args, i + 1, "scenario count")?.max(1) as usize
                    }
                    "--n" => n = num(args, i + 1, "segment count")?.max(1) as usize,
                    "--rounds" => rounds = num(args, i + 1, "round count")?.max(1) as usize,
                    "--page-size" => page_size = num(args, i + 1, "page size")?.max(64) as usize,
                    other => return usage(format!("unknown torture option '{other}'")),
                }
                i += 2;
            }
            let kinds = [
                IndexKind::TwoLevelBinary,
                IndexKind::TwoLevelInterval,
                IndexKind::FullScan,
                IndexKind::StabThenFilter,
            ];
            let (mut ran, mut crashed, mut fault_events) = (0u64, 0u64, 0u64);
            let (mut live_q, mut rec_q, mut saves) = (0u64, 0u64, 0u64);
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            for kind in kinds {
                for s in seed..seed + scenarios as u64 {
                    let cfg = torture::TortureConfig {
                        n,
                        rounds,
                        page_size,
                        ..torture::TortureConfig::new(kind, s)
                    };
                    let out = torture::run_scenario(&cfg)?;
                    ran += 1;
                    crashed += out.crashed as u64;
                    fault_events += out.fault_trace.len() as u64;
                    live_q += out.live_queries_verified;
                    rec_q += out.recovery_queries_verified;
                    saves += out.saves;
                    digest ^= torture::trace_digest(&out.fault_trace);
                    digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            let faults = segdb_obs::faults::totals().snapshot();
            let doc = Json::obj([
                ("scenarios", Json::U64(ran)),
                ("crashed", Json::U64(crashed)),
                ("fault_events", Json::U64(fault_events)),
                ("live_queries_verified", Json::U64(live_q)),
                ("recovery_queries_verified", Json::U64(rec_q)),
                ("saves", Json::U64(saves)),
                ("trace_digest", Json::Str(format!("{digest:016x}"))),
                ("faults", faults.to_json()),
            ]);
            Ok(format!("{}\n", doc.render()))
        }
        "insert" | "remove" => {
            let op = args[0].clone();
            if args.get(1).map(String::as_str) == Some("--remote") {
                // Route through a writable server: the stamped request id
                // makes the write idempotent across client retries, and
                // the trailing flush forces the WAL group commit so the
                // ack is durable when we print it.
                let addr = want(args, 2, "address")?;
                let seg = Segment::new(
                    num(args, 3, "id")? as u64,
                    (num(args, 4, "x1")?, num(args, 5, "y1")?),
                    (num(args, 6, "x2")?, num(args, 7, "y2")?),
                )
                .map_err(|e| CliError::Io(e.to_string()))?;
                let mut client = remote_client(addr);
                let ack = if op == "insert" {
                    client.insert(&seg)
                } else {
                    client.delete(&seg)
                }
                .map_err(|e| CliError::Io(format!("remote {op} failed: {e}")))?;
                client
                    .flush()
                    .map_err(|e| CliError::Io(format!("remote flush failed: {e}")))?;
                let verb = match (op.as_str(), ack.applied) {
                    ("insert", true) => "inserted",
                    ("insert", false) => "already stored:",
                    (_, true) => "removed",
                    (_, false) => "not found:",
                };
                return Ok(format!(
                    "{verb} {seg} (seq {}{})\n",
                    ack.seq,
                    if ack.duplicate { ", replayed ack" } else { "" }
                ));
            }
            let path = want(args, 1, "db path")?.to_string();
            let mut db = SegmentDatabase::open(&path, 0)?;
            let seg = Segment::new(
                num(args, 2, "id")? as u64,
                (num(args, 3, "x1")?, num(args, 4, "y1")?),
                (num(args, 5, "x2")?, num(args, 6, "y2")?),
            )
            .map_err(|e| CliError::Io(e.to_string()))?;
            let msg = if op == "insert" {
                db.insert(seg)?;
                format!("inserted {seg}\n")
            } else {
                let found = db.remove(&seg)?;
                format!("{} {seg}\n", if found { "removed" } else { "not found:" })
            };
            db.save()?;
            Ok(msg)
        }
        other => usage(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let segs = vec![
            Segment::new(1, (0, 0), (5, 5)).unwrap(),
            Segment::new(2, (-3, 9), (4, 9)).unwrap(),
        ];
        let csv = to_csv(&segs);
        assert_eq!(parse_csv(&csv).unwrap(), segs);
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        let err = parse_csv("1,2,3,4,5\nbogus").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_csv("1,2,3").unwrap_err();
        assert!(err.to_string().contains("x2"), "{err}");
        let err = parse_csv("7,0,0,0,0").unwrap_err();
        assert!(err.to_string().contains("coincide"), "{err}");
    }

    #[test]
    fn bad_commands_are_usage_errors() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(run(&a(&["frobnicate"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&a(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&a(&["gen", "nope", "5", "1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&a(&["query"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn malformed_shard_maps_are_usage_errors() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("segdb-cli-maps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let p = dir.join(name);
            std::fs::write(&p, body).unwrap();
            p.to_string_lossy().into_owned()
        };
        // Truncated JSON must surface as a usage error (exit 2), never
        // a panic.
        let p = write("truncated.json", r#"{"shards":[{"addr":"a","until":5}"#);
        let err = run(&a(&["route", &p])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        // Overlapping (non-increasing) ownership cuts.
        let p = write(
            "overlap.json",
            r#"{"shards":[{"addr":"a","until":9},{"addr":"b","until":3},{"addr":"c"}]}"#,
        );
        let err = run(&a(&["route", &p])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("bad shard map"), "{err}");
        // An empty replica set.
        let p = write(
            "empty.json",
            r#"{"shards":[{"replicas":[],"until":1},{"addr":"b"}]}"#,
        );
        assert!(matches!(
            run(&a(&["route", &p])).unwrap_err(),
            CliError::Usage(_)
        ));
        // A missing map file stays an I/O error — nothing to usage-hint.
        let absent = dir.join("absent.json").to_string_lossy().into_owned();
        assert!(matches!(
            run(&a(&["route", &absent])).unwrap_err(),
            CliError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_plans_replica_sets_and_writes_a_v2_map_template() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("segdb-cli-part-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("data.csv").to_string_lossy().into_owned();
        let segs: Vec<Segment> = (0..40)
            .map(|i| Segment::new(i, (i as i64 * 10, 0), (i as i64 * 10 + 5, 7)).unwrap())
            .collect();
        std::fs::write(&csv, to_csv(&segs)).unwrap();
        let out = dir.join("shards").to_string_lossy().into_owned();
        let map = dir.join("map.json").to_string_lossy().into_owned();
        let doc = run(&a(&[
            "partition",
            &csv,
            "2",
            &out,
            "--replicas",
            "2",
            "--map-out",
            &map,
        ]))
        .unwrap();
        let doc = segdb_obs::json::parse(doc.trim()).unwrap();
        assert_eq!(doc.get("replicas"), Some(&Json::U64(2)));
        assert_eq!(doc.get("k"), Some(&Json::U64(2)));
        // The template parses as a shard-map v2 with 2-way replica sets
        // and the partitioner's own cuts.
        let body = std::fs::read_to_string(&map).unwrap();
        let parsed = segdb_server::ShardMap::parse(&body).unwrap();
        assert_eq!(parsed.shard_count(), 2);
        assert!(parsed.replica_sets().iter().all(|set| set.len() == 2));
        let doc_cuts: Vec<i64> = doc
            .get("cuts")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|c| c.as_f64().unwrap() as i64)
            .collect();
        assert_eq!(parsed.cuts().cuts(), doc_cuts.as_slice());
        // Zero replicas is a usage mistake.
        assert!(matches!(
            run(&a(&["partition", &csv, "2", &out, "--replicas", "0"])).unwrap_err(),
            CliError::Usage(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_emits_parseable_csv() {
        let a: Vec<String> = ["gen", "grid", "100", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let csv = run(&a).unwrap();
        let segs = parse_csv(&csv).unwrap();
        assert!(!segs.is_empty());
    }
}
