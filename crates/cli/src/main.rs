//! Binary entry point; all logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match segdb_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("segdb-cli: {e}");
            eprintln!(
                "commands: gen | build | info | query | insert | remove | stats | trace  (see crate docs)"
            );
            std::process::exit(2);
        }
    }
}
