//! Binary entry point; all logic lives in the library for testability.
//!
//! Failures print one structured JSON line to stderr
//! (`{"error":"usage|io|db","message":"..."}`) and exit non-zero: 2 for
//! usage mistakes, 1 for runtime failures (missing database file, corrupt
//! superblock, bad geometry, …).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match segdb_cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.to_json().render());
            if matches!(e, segdb_cli::CliError::Usage(_)) {
                eprintln!(
                    "commands: gen | build | info | query | insert | remove | stats | trace | serve  (see crate docs)"
                );
            }
            ExitCode::from(e.exit_code())
        }
    }
}
