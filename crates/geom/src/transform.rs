//! Exact reduction of fixed-direction queries to vertical ones.
//!
//! The paper (footnote 1) says: *"If the query segment is not vertical,
//! coordinate axes can be appropriately rotated."* A literal rotation
//! leaves the integer lattice; instead we use the shear
//!
//! ```text
//! T(x, y) = (dy·x − dx·y,  y)
//! ```
//!
//! for the fixed query direction `(dx, dy)` (`dy ≠ 0`). `T` is linear and
//! invertible (`det T = dy ≠ 0`), maps every line of direction `(dx, dy)`
//! to a vertical line, preserves incidence, betweenness and the
//! non-crossing property, and stays in exact integer arithmetic. A point
//! moving along the query direction keeps its first coordinate
//! (`dy(x+t·dx) − dx(y+t·dy) = dy·x − dx·y`) while its second coordinate
//! `y` strictly increases with `t` (for `dy > 0`), so query *rays* keep
//! their orientation.
//!
//! Because ordinates are preserved and abscissae are scaled by the
//! invertible `T`, a stored segment intersects a direction-`(dx,dy)`
//! generalized query segment **iff** its image intersects the image
//! vertical query — the index built over transformed segments answers the
//! original question exactly.

use crate::error::GeomError;
use crate::point::Point;
use crate::query::VerticalQuery;
use crate::segment::Segment;

/// Maximum absolute component of a query direction.
///
/// Keeps sheared coordinates within [`crate::COORD_LIMIT`] when inputs are
/// within `COORD_LIMIT / (2·DIR_LIMIT)`.
pub const DIR_LIMIT: i64 = 512;

/// A fixed, non-horizontal query direction with small integer components.
///
/// `(0, 1)` is the identity direction (native vertical queries).
///
/// ```
/// use segdb_geom::{Direction, Point, Segment};
///
/// let d = Direction::new(1, 2).unwrap();
/// let s = Segment::new(7, (0, 5), (10, 5)).unwrap();
/// let t = d.apply_segment(&s).unwrap();
/// // Lossless round-trip back to user coordinates.
/// assert_eq!(d.unapply_segment(&t).unwrap(), s);
/// // Points on a common (1,2)-line share a transformed abscissa.
/// let a = d.apply_point(Point::new(3, 0)).unwrap();
/// let b = d.apply_point(Point::new(4, 2)).unwrap();
/// assert_eq!(a.x, b.x);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Direction {
    dx: i64,
    dy: i64,
}

impl Direction {
    /// The identity (vertical) direction.
    pub const VERTICAL: Direction = Direction { dx: 0, dy: 1 };

    /// Validate and normalize a direction vector.
    ///
    /// `dy` must be non-zero (horizontal query directions are outside the
    /// paper's model); components must be within ±[`DIR_LIMIT`]. The
    /// vector is normalized to `dy > 0` and divided by its gcd.
    pub fn new(dx: i64, dy: i64) -> Result<Self, GeomError> {
        if dy == 0 || dx.abs() > DIR_LIMIT || dy.abs() > DIR_LIMIT {
            return Err(GeomError::BadDirection);
        }
        let g = gcd(dx.unsigned_abs(), dy.unsigned_abs()) as i64;
        let (mut dx, mut dy) = (dx / g, dy / g);
        if dy < 0 {
            dx = -dx;
            dy = -dy;
        }
        Ok(Direction { dx, dy })
    }

    /// The x-component of the normalized direction.
    pub fn dx(&self) -> i64 {
        self.dx
    }

    /// The y-component of the normalized direction (always positive).
    pub fn dy(&self) -> i64 {
        self.dy
    }

    /// True for the identity direction, where the shear is a no-op.
    pub fn is_vertical(&self) -> bool {
        self.dx == 0 && self.dy == 1
    }

    /// Image of a point under the shear.
    pub fn apply_point(&self, p: Point) -> Result<Point, GeomError> {
        let x = self
            .dy
            .checked_mul(p.x)
            .and_then(|a| self.dx.checked_mul(p.y).and_then(|b| a.checked_sub(b)))
            .ok_or(GeomError::CoordOutOfRange(p.x))?;
        let q = Point::new(x, p.y);
        if !q.in_range() {
            return Err(GeomError::CoordOutOfRange(q.x));
        }
        Ok(q)
    }

    /// Image of a segment under the shear (id preserved).
    pub fn apply_segment(&self, s: &Segment) -> Result<Segment, GeomError> {
        Segment::new(s.id, self.apply_point(s.a)?, self.apply_point(s.b)?)
    }

    /// Exact inverse of [`Direction::apply_point`]: `x = (x' + dx·y)/dy`.
    /// The division is exact for any point produced by the forward shear.
    pub fn unapply_point(&self, p: Point) -> Result<Point, GeomError> {
        let num =
            p.x.checked_add(
                self.dx
                    .checked_mul(p.y)
                    .ok_or(GeomError::CoordOutOfRange(p.y))?,
            )
            .ok_or(GeomError::CoordOutOfRange(p.x))?;
        if num % self.dy != 0 {
            return Err(GeomError::CoordOutOfRange(p.x));
        }
        let q = Point::new(num / self.dy, p.y);
        if !q.in_range() {
            return Err(GeomError::CoordOutOfRange(q.x));
        }
        Ok(q)
    }

    /// Inverse of [`Direction::apply_segment`].
    pub fn unapply_segment(&self, s: &Segment) -> Result<Segment, GeomError> {
        Segment::new(s.id, self.unapply_point(s.a)?, self.unapply_point(s.b)?)
    }

    /// Transform a generalized query given in *original* coordinates —
    /// anchored at point `p`, with the ordinate bounds interpreted along
    /// the direction — into the canonical [`VerticalQuery`].
    ///
    /// * `lo = hi = None` → full line through `p`.
    /// * One bound → ray from `p`'s line position.
    /// * Both bounds → segment between ordinates `lo` and `hi` (original
    ///   y-coordinates of the query segment's endpoints).
    pub fn make_query(
        &self,
        anchor: Point,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Result<VerticalQuery, GeomError> {
        let a = self.apply_point(anchor)?;
        Ok(match (lo, hi) {
            (None, None) => VerticalQuery::Line { x: a.x },
            (Some(lo), None) => VerticalQuery::RayUp { x: a.x, y0: lo },
            (None, Some(hi)) => VerticalQuery::RayDown { x: a.x, y0: hi },
            (Some(lo), Some(hi)) => VerticalQuery::segment(a.x, lo, hi),
        })
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 && b == 0 {
        return 1;
    }
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::classify_pair;
    use crate::predicates::PairRelation;

    #[test]
    fn rejects_horizontal_and_huge() {
        assert_eq!(Direction::new(1, 0).unwrap_err(), GeomError::BadDirection);
        assert_eq!(
            Direction::new(DIR_LIMIT + 1, 1).unwrap_err(),
            GeomError::BadDirection
        );
        assert!(Direction::new(-3, 2).is_ok());
    }

    #[test]
    fn normalizes_sign_and_gcd() {
        let d = Direction::new(4, -6).unwrap();
        assert_eq!((d.dx(), d.dy()), (-2, 3));
        assert!(Direction::new(0, 5).unwrap().is_vertical());
        assert!(Direction::VERTICAL.is_vertical());
    }

    #[test]
    fn vertical_direction_is_identity() {
        let d = Direction::VERTICAL;
        let p = Point::new(17, -9);
        assert_eq!(d.apply_point(p).unwrap(), p);
    }

    #[test]
    fn shear_maps_direction_lines_to_vertical() {
        let d = Direction::new(2, 3).unwrap();
        let p = Point::new(5, 7);
        let q = Point::new(5 + 2 * 4, 7 + 3 * 4); // p + 4·(2,3)
        let (tp, tq) = (d.apply_point(p).unwrap(), d.apply_point(q).unwrap());
        assert_eq!(tp.x, tq.x, "same line of the direction → same abscissa");
        assert!(tq.y > tp.y, "orientation along the direction preserved");
    }

    #[test]
    fn shear_preserves_crossing_classification() {
        let d = Direction::new(-3, 5).unwrap();
        let s1 = Segment::new(0, (0, 0), (10, 10)).unwrap();
        let s2 = Segment::new(1, (0, 10), (10, 0)).unwrap();
        let s3 = Segment::new(2, (10, 10), (20, 3)).unwrap();
        let t1 = d.apply_segment(&s1).unwrap();
        let t2 = d.apply_segment(&s2).unwrap();
        let t3 = d.apply_segment(&s3).unwrap();
        assert_eq!(classify_pair(&t1, &t2), PairRelation::ProperCross);
        assert_eq!(classify_pair(&t1, &t3), PairRelation::Admissible);
    }

    #[test]
    fn transformed_query_equals_direct_test() {
        // Query along direction (1,2) through anchor (4,0), full line.
        let d = Direction::new(1, 2).unwrap();
        let s = Segment::new(9, (0, 6), (12, 6)).unwrap(); // horizontal at y=6
        let ts = d.apply_segment(&s).unwrap();
        let q = d.make_query(Point::new(4, 0), None, None).unwrap();
        // The direction line through (4,0): points (4+t, 2t). At y=6, t=3,
        // x=7 ∈ [0,12]: the original query line hits s.
        assert!(q.hits(&ts));
        // Through (100, 0) it misses.
        let q2 = d.make_query(Point::new(100, 0), None, None).unwrap();
        assert!(!q2.hits(&d.apply_segment(&s).unwrap()));
    }

    #[test]
    fn overflow_is_reported() {
        let d = Direction::new(-1, 2).unwrap();
        // x' = 2·C + C = 3·C > COORD_LIMIT
        let p = Point::new(crate::COORD_LIMIT, crate::COORD_LIMIT);
        assert!(matches!(
            d.apply_point(p),
            Err(GeomError::CoordOutOfRange(_))
        ));
        // Exactly at the limit stays accepted: (0,1) is identity.
        assert!(Direction::VERTICAL.apply_point(p).is_ok());
    }

    #[test]
    fn gcd_edges() {
        assert_eq!(gcd(0, 0), 1);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
    }
}
