//! Deterministic NCT workload generators.
//!
//! The paper motivates segment databases with GIS map layers, temporal
//! databases and constraint databases (§1) but, being a theory paper,
//! ships no data. These generators produce the synthetic equivalents used
//! by every test and benchmark; each output is NCT **by construction**
//! and additionally validated by [`crate::nct::verify_nct`] in tests.
//!
//! All generators take an explicit seed and are fully deterministic.

use crate::query::VerticalQuery;
use crate::segment::Segment;
use segdb_rng::SmallRng;

/// Line-based fan: `n` segments with one endpoint on the vertical base
/// line `x = 0`, extending right, mutually non-crossing.
///
/// Segment `i` starts at `(0, i·pitch)` and ends at a random abscissa in
/// `[1, max_len]` with a vertical drift below `pitch/2`, confining each
/// segment to its own strip. Exercises the Section-2 PST directly.
pub fn fan(n: usize, pitch: i64, max_len: i64, seed: u64) -> Vec<Segment> {
    assert!(pitch >= 4 && max_len >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let y0 = i as i64 * pitch;
            let x1 = rng.gen_range(1..=max_len);
            let drift = rng.gen_range(-(pitch / 2 - 1)..=(pitch / 2 - 1));
            Segment::new(i as u64, (0, y0), (x1, y0 + drift)).expect("fan segment valid")
        })
        .collect()
}

/// GIS-like street grid: a `cols × rows` block grid with unit edges
/// between adjacent junctions. Edges touch at junctions (NCT) and a
/// fraction `drop_per_mille`/1000 of edges is removed to make the map
/// irregular. Ids are dense from 0.
pub fn grid_map(
    cols: usize,
    rows: usize,
    spacing: i64,
    drop_per_mille: u32,
    seed: u64,
) -> Vec<Segment> {
    assert!(spacing >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    let mut push = |a: (i64, i64), b: (i64, i64), rng: &mut SmallRng, out: &mut Vec<Segment>| {
        if rng.gen_range(0..1000) >= drop_per_mille {
            out.push(Segment::new(id, a, b).expect("grid edge valid"));
            id += 1;
        }
    };
    for r in 0..=rows as i64 {
        for c in 0..cols as i64 {
            push(
                (c * spacing, r * spacing),
                ((c + 1) * spacing, r * spacing),
                &mut rng,
                &mut out,
            );
        }
    }
    for c in 0..=cols as i64 {
        for r in 0..rows as i64 {
            push(
                (c * spacing, r * spacing),
                (c * spacing, (r + 1) * spacing),
                &mut rng,
                &mut out,
            );
        }
    }
    out
}

/// Random slanted segments, each confined to its own horizontal strip of
/// height `strip`: arbitrary slopes and lengths, guaranteed non-crossing.
///
/// `long_per_mille`/1000 of segments are "long" (up to `width`), the rest
/// short (up to `width/64 + 2`) — the mix that makes the §4 short/long
/// fragment split meaningful.
pub fn strips(n: usize, width: i64, strip: i64, long_per_mille: u32, seed: u64) -> Vec<Segment> {
    assert!(strip >= 4 && width >= 128);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let y_base = i as i64 * strip;
            let long = rng.gen_range(0..1000) < long_per_mille;
            let max_len = if long { width } else { width / 64 + 2 };
            let len = rng.gen_range(1..=max_len);
            let x0 = rng.gen_range(0..=(width - len).max(0));
            let y0 = y_base + rng.gen_range(0..strip / 2);
            let y1 = y_base
                + rng
                    .gen_range(0..strip / 2)
                    .max(if y0 == y_base { 1 } else { 0 });
            let (y0, y1) = if (x0, y0) == (x0 + len, y1) {
                (y0, y0 + 1)
            } else {
                (y0, y1)
            };
            Segment::new(i as u64, (x0, y0), (x0 + len, y1)).expect("strip segment valid")
        })
        .collect()
}

/// Temporal-database layer: object `k` of `n` is alive over a random time
/// interval, represented as the horizontal segment `y = k·2`,
/// `x ∈ [birth, death]`. A vertical line query at `x = t` is the classic
/// *timeslice* query; a vertical segment adds an object-id range.
pub fn temporal(n: usize, horizon: i64, seed: u64) -> Vec<Segment> {
    assert!(horizon >= 4);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let birth = rng.gen_range(0..horizon - 1);
            let death = rng.gen_range(birth + 1..=horizon);
            Segment::new(i as u64, (birth, i as i64 * 2), (death, i as i64 * 2))
                .expect("temporal segment valid")
        })
        .collect()
}

/// Adversarial comb for PST depth: alternating long shallow segments and
/// short steep teeth sharing base ordinates, producing maximally biased
/// separators (the paper's Figure 3 situation).
pub fn comb(n: usize) -> Vec<Segment> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let id = i as u64;
        let y = i * 8;
        let s = if i % 2 == 0 {
            // long, nearly flat
            Segment::new(id, (0, y), (1 << 20, y + 3)).unwrap()
        } else {
            // short, steep
            Segment::new(id, (0, y), (4, y + 3)).unwrap()
        };
        out.push(s);
    }
    out
}

/// Nested tents: segment `i` spans `[i, 2n−i]` at height `i` — every
/// vertical query near the centre hits *all* segments (maximal `t`),
/// queries near the edge hit few. Exercises output sensitivity (E11).
pub fn nested(n: usize) -> Vec<Segment> {
    let w = 2 * n as i64;
    (0..n)
        .map(|i| {
            let i64i = i as i64;
            Segment::new(i as u64, (i64i, 4 * i64i), (w - i64i, 4 * i64i + 1))
                .expect("nested valid")
        })
        .collect()
}

/// Mixed map: a grid (roads) overlaid with strip segments (rivers,
/// contours) vertically offset to a disjoint y-band, producing a workload
/// with verticals, horizontals, slants, touching points and varied
/// lengths — the closest thing to the paper's GIS motivation.
pub fn mixed_map(n: usize, seed: u64) -> Vec<Segment> {
    let side = ((n / 3) as f64).sqrt().max(1.0) as usize;
    let mut out = grid_map(side, side, 64, 150, seed);
    let base = out.len();
    let extra = n.saturating_sub(base);
    let band_offset = (side as i64 + 2) * 64;
    let mut rest = strips(extra, (side as i64) * 64 + 128, 16, 300, seed ^ 0x9E37_79B9);
    for (k, s) in rest.iter_mut().enumerate() {
        *s = Segment::new(
            (base + k) as u64,
            (s.a.x, s.a.y + band_offset),
            (s.b.x, s.b.y + band_offset),
        )
        .expect("offset segment valid");
    }
    out.extend(rest);
    out
}

/// Generate `count` vertical segment queries over the bounding box of
/// `set`, with query height chosen as `frac_per_mille`/1000 of the y-span
/// (controls expected output size `t`).
pub fn vertical_queries(
    set: &[Segment],
    count: usize,
    frac_per_mille: u32,
    seed: u64,
) -> Vec<VerticalQuery> {
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
    for s in set {
        xmin = xmin.min(s.a.x);
        xmax = xmax.max(s.b.x);
        let (l, h) = s.y_span();
        ymin = ymin.min(l);
        ymax = ymax.max(h);
    }
    if set.is_empty() {
        (xmin, xmax, ymin, ymax) = (0, 1, 0, 1);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let h = ((ymax - ymin).max(1) as i128 * frac_per_mille as i128 / 1000) as i64;
    (0..count)
        .map(|_| {
            let x = rng.gen_range(xmin..=xmax);
            let lo = rng.gen_range(ymin..=(ymax - h).max(ymin));
            VerticalQuery::segment(x, lo, lo + h)
        })
        .collect()
}

/// Like [`vertical_queries`] but with a **fixed absolute height**, so the
/// expected output size `t` stays constant while `N` sweeps — the query
/// batch complexity experiments need the `log` terms isolated from `t`.
pub fn fixed_height_queries(
    set: &[Segment],
    count: usize,
    height: i64,
    seed: u64,
) -> Vec<VerticalQuery> {
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
    for s in set {
        xmin = xmin.min(s.a.x);
        xmax = xmax.max(s.b.x);
        let (l, h) = s.y_span();
        ymin = ymin.min(l);
        ymax = ymax.max(h);
    }
    if set.is_empty() {
        (xmin, xmax, ymin, ymax) = (0, 1, 0, 1);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = rng.gen_range(xmin..=xmax);
            let lo = rng.gen_range(ymin..=(ymax - height).max(ymin));
            VerticalQuery::segment(x, lo, lo + height)
        })
        .collect()
}

/// A named workload, so benches can sweep over families uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`fan`]
    Fan,
    /// [`grid_map`]
    Grid,
    /// [`strips`]
    Strips,
    /// [`temporal`]
    Temporal,
    /// [`nested`]
    Nested,
    /// [`mixed_map`]
    Mixed,
}

impl Family {
    /// Generate approximately `n` segments of this family.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Segment> {
        match self {
            Family::Fan => fan(n, 16, 1 << 16, seed),
            Family::Grid => {
                let side = ((n / 2) as f64).sqrt().max(1.0) as usize;
                grid_map(side, side, 32, 100, seed)
            }
            Family::Strips => strips(n, 1 << 16, 16, 250, seed),
            Family::Temporal => temporal(n, 1 << 16, seed),
            Family::Nested => nested(n),
            Family::Mixed => mixed_map(n, seed),
        }
    }

    /// Short name for table output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Fan => "fan",
            Family::Grid => "grid",
            Family::Strips => "strips",
            Family::Temporal => "temporal",
            Family::Nested => "nested",
            Family::Mixed => "mixed",
        }
    }

    /// All families, for sweeps.
    pub const ALL: [Family; 6] = [
        Family::Fan,
        Family::Grid,
        Family::Strips,
        Family::Temporal,
        Family::Nested,
        Family::Mixed,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nct::verify_nct;

    #[test]
    fn all_families_are_nct_and_deterministic() {
        for f in Family::ALL {
            let a = f.generate(500, 42);
            let b = f.generate(500, 42);
            assert_eq!(a, b, "{} not deterministic", f.name());
            verify_nct(&a).unwrap_or_else(|e| panic!("{} violates NCT: {e}", f.name()));
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn families_differ_across_seeds() {
        let a = strips(100, 1 << 12, 16, 200, 1);
        let b = strips(100, 1 << 12, 16, 200, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn fan_is_line_based_on_x0() {
        for s in fan(200, 16, 1 << 10, 7) {
            assert_eq!(s.a.x, 0, "one endpoint on the base line");
            assert!(s.b.x > 0, "extends right");
        }
    }

    #[test]
    fn temporal_segments_are_horizontal() {
        for s in temporal(100, 1000, 3) {
            assert!(s.is_horizontal());
        }
    }

    #[test]
    fn grid_map_size_and_dropping() {
        let full = grid_map(4, 4, 10, 0, 1);
        assert_eq!(full.len(), 4 * 5 * 2);
        let dropped = grid_map(4, 4, 10, 500, 1);
        assert!(dropped.len() < full.len());
    }

    #[test]
    fn queries_cover_bbox() {
        let set = temporal(100, 1000, 9);
        let qs = vertical_queries(&set, 50, 100, 11);
        assert_eq!(qs.len(), 50);
        for q in qs {
            match q {
                VerticalQuery::Segment { lo, hi, .. } => assert!(lo <= hi),
                _ => panic!("expected segment queries"),
            }
        }
        // Empty set does not panic.
        let qs = vertical_queries(&[], 3, 100, 11);
        assert_eq!(qs.len(), 3);
    }

    #[test]
    fn nested_center_hits_all() {
        let set = nested(50);
        let q = VerticalQuery::Line { x: 50 };
        let hits = crate::query::scan_oracle(&set, &q);
        assert_eq!(hits.len(), 50);
    }
}
