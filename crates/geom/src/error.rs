//! Geometry-level errors.

use std::fmt;

/// Errors raised while constructing or validating geometric inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeomError {
    /// The two endpoints coincide.
    ZeroLengthSegment,
    /// A coordinate exceeds [`crate::COORD_LIMIT`].
    CoordOutOfRange(i64),
    /// A direction vector component exceeds [`crate::transform::DIR_LIMIT`]
    /// or the vector is horizontal/null (queries parallel to the x-axis
    /// are outside the paper's model, footnote 1).
    BadDirection,
    /// Two input segments properly cross (interiors intersect), violating
    /// the NCT input model. Carries the ids of the offending pair.
    Crossing(u64, u64),
    /// Two collinear input segments overlap in more than a point.
    Overlap(u64, u64),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::ZeroLengthSegment => write!(f, "segment endpoints coincide"),
            GeomError::CoordOutOfRange(c) => {
                write!(
                    f,
                    "coordinate {c} exceeds COORD_LIMIT = {}",
                    crate::COORD_LIMIT
                )
            }
            GeomError::BadDirection => {
                write!(
                    f,
                    "query direction must be non-horizontal with small components"
                )
            }
            GeomError::Crossing(a, b) => write!(f, "segments {a} and {b} properly cross"),
            GeomError::Overlap(a, b) => write!(f, "segments {a} and {b} overlap collinearly"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        assert!(GeomError::Crossing(3, 9).to_string().contains('9'));
        assert!(GeomError::CoordOutOfRange(1 << 40)
            .to_string()
            .contains("COORD_LIMIT"));
    }
}
