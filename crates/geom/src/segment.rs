//! Database segments.

use crate::error::GeomError;
use crate::point::Point;
use std::fmt;

/// Identifier a segment carries through every structure it is stored in.
///
/// The 2LDS structures may store *fragments* of the same segment in up to
/// three places (paper §4.2); the id is what de-duplicates reporting.
pub type SegmentId = u64;

/// A non-degenerate plane segment with canonical endpoint order.
///
/// Canonical order: `a.x < b.x`, or `a.x == b.x && a.y < b.y` (vertical
/// segments point up). This lets predicates assume `b.x − a.x ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Left (or bottom, if vertical) endpoint.
    pub a: Point,
    /// Right (or top, if vertical) endpoint.
    pub b: Point,
    /// Stable identifier used for result reporting and de-duplication.
    pub id: SegmentId,
}

impl Segment {
    /// Build a segment, canonicalizing endpoint order.
    ///
    /// Errors on zero length or out-of-range coordinates.
    pub fn new(id: SegmentId, p: impl Into<Point>, q: impl Into<Point>) -> Result<Self, GeomError> {
        let (p, q) = (p.into(), q.into());
        if p == q {
            return Err(GeomError::ZeroLengthSegment);
        }
        for pt in [p, q] {
            if !pt.in_range() {
                let bad = if pt.x.abs() > crate::COORD_LIMIT {
                    pt.x
                } else {
                    pt.y
                };
                return Err(GeomError::CoordOutOfRange(bad));
            }
        }
        let (a, b) = if (p.x, p.y) <= (q.x, q.y) {
            (p, q)
        } else {
            (q, p)
        };
        Ok(Segment { a, b, id })
    }

    /// True when the segment is vertical (`a.x == b.x`).
    #[inline]
    pub fn is_vertical(&self) -> bool {
        self.a.x == self.b.x
    }

    /// True when the segment is horizontal.
    #[inline]
    pub fn is_horizontal(&self) -> bool {
        self.a.y == self.b.y
    }

    /// Inclusive x-extent `(xmin, xmax)`.
    #[inline]
    pub fn x_span(&self) -> (i64, i64) {
        (self.a.x, self.b.x) // canonical order
    }

    /// Inclusive y-extent `(ymin, ymax)`.
    #[inline]
    pub fn y_span(&self) -> (i64, i64) {
        if self.a.y <= self.b.y {
            (self.a.y, self.b.y)
        } else {
            (self.b.y, self.a.y)
        }
    }

    /// True when the vertical line `x = x0` meets the segment's x-extent.
    #[inline]
    pub fn spans_x(&self, x0: i64) -> bool {
        self.a.x <= x0 && x0 <= self.b.x
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}–{}", self.id, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_endpoints() {
        let s = Segment::new(1, (5, 2), (1, 9)).unwrap();
        assert_eq!(s.a, Point::new(1, 9));
        assert_eq!(s.b, Point::new(5, 2));
        let v = Segment::new(2, (3, 8), (3, -1)).unwrap();
        assert_eq!(v.a, Point::new(3, -1));
        assert!(v.is_vertical());
        assert!(!v.is_horizontal());
    }

    #[test]
    fn rejects_degenerate_and_out_of_range() {
        assert_eq!(
            Segment::new(0, (1, 1), (1, 1)).unwrap_err(),
            GeomError::ZeroLengthSegment
        );
        let big = crate::COORD_LIMIT + 1;
        assert_eq!(
            Segment::new(0, (big, 0), (0, 0)).unwrap_err(),
            GeomError::CoordOutOfRange(big)
        );
        assert_eq!(
            Segment::new(0, (0, -big), (1, 0)).unwrap_err(),
            GeomError::CoordOutOfRange(-big)
        );
    }

    #[test]
    fn spans() {
        let s = Segment::new(7, (0, 10), (10, -10)).unwrap();
        assert_eq!(s.x_span(), (0, 10));
        assert_eq!(s.y_span(), (-10, 10));
        assert!(s.spans_x(0) && s.spans_x(10) && s.spans_x(5));
        assert!(!s.spans_x(-1) && !s.spans_x(11));
    }
}
