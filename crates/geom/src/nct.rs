//! Validation of the paper's input model: *non-crossing but possibly
//! touching* (NCT) segment sets.
//!
//! The checker sweeps segments by `xmin` keeping an active set pruned by
//! `xmax`; only pairs whose x-extents overlap are classified. This is
//! `O(N log N + P)` where `P` is the number of x-overlapping pairs — for
//! map-like inputs `P ≪ N²`, and for the adversarial worst case the
//! checker is still correct, just slower (it is a validation tool, not an
//! index-path component).

use crate::error::GeomError;
use crate::predicates::{classify_pair, PairRelation};
use crate::segment::Segment;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Check that `set` is NCT; returns the first violation found.
///
/// Duplicate ids are also rejected (id uniqueness is what makes reporting
/// de-duplication across fragment structures sound), signalled as an
/// [`GeomError::Overlap`] of the id with itself when segments coincide, or
/// a crossing error otherwise.
///
/// ```
/// use segdb_geom::nct::verify_nct;
/// use segdb_geom::{GeomError, Segment};
///
/// let touching = vec![
///     Segment::new(1, (0, 0), (10, 0)).unwrap(),
///     Segment::new(2, (10, 0), (10, 5)).unwrap(), // touches at (10, 0): fine
/// ];
/// assert!(verify_nct(&touching).is_ok());
///
/// let crossing = vec![
///     Segment::new(1, (0, 0), (10, 10)).unwrap(),
///     Segment::new(2, (0, 10), (10, 0)).unwrap(),
/// ];
/// assert!(matches!(verify_nct(&crossing), Err(GeomError::Crossing(1, 2))));
/// ```
pub fn verify_nct(set: &[Segment]) -> Result<(), GeomError> {
    let mut ids: Vec<u64> = set.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
        return Err(GeomError::Overlap(w[0], w[1]));
    }

    // Sort by xmin; sweep with a min-heap over xmax of active segments.
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| set[i].a.x);
    let mut active: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    let mut live: Vec<usize> = Vec::new();

    for &i in &order {
        let s = &set[i];
        // Retire segments ending strictly before this one starts. Touching
        // x-extents must still be compared (they can share an endpoint).
        while let Some(&Reverse((xmax, _))) = active.peek() {
            if xmax < s.a.x {
                let Reverse((_, j)) = active.pop().unwrap();
                live.retain(|&k| k != j);
            } else {
                break;
            }
        }
        for &j in &live {
            let t = &set[j];
            match classify_pair(s, t) {
                PairRelation::Admissible => {}
                PairRelation::ProperCross => return Err(GeomError::Crossing(t.id, s.id)),
                PairRelation::CollinearOverlap => return Err(GeomError::Overlap(t.id, s.id)),
            }
        }
        active.push(Reverse((s.b.x, i)));
        live.push(i);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn accepts_touching_network() {
        // A small street grid: horizontal and vertical pieces meeting at
        // junctions, plus a diagonal touching a junction.
        let set = vec![
            seg(1, (0, 0), (10, 0)),
            seg(2, (10, 0), (20, 0)),
            seg(3, (10, 0), (10, 10)),
            seg(4, (10, 10), (20, 10)),
            seg(5, (0, 5), (10, 10)),
        ];
        assert!(verify_nct(&set).is_ok());
    }

    #[test]
    fn rejects_crossing() {
        let set = vec![seg(1, (0, 0), (10, 10)), seg(2, (0, 10), (10, 0))];
        assert_eq!(verify_nct(&set).unwrap_err(), GeomError::Crossing(1, 2));
    }

    #[test]
    fn rejects_collinear_overlap() {
        let set = vec![seg(1, (0, 0), (10, 0)), seg(2, (9, 0), (12, 0))];
        assert_eq!(verify_nct(&set).unwrap_err(), GeomError::Overlap(1, 2));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let set = vec![seg(7, (0, 0), (1, 0)), seg(7, (5, 5), (6, 5))];
        assert!(matches!(
            verify_nct(&set).unwrap_err(),
            GeomError::Overlap(7, 7)
        ));
    }

    #[test]
    fn far_apart_crossing_in_x_overlap_is_caught() {
        // Segments whose xmin order differs a lot but which overlap in x.
        let set = vec![
            seg(1, (0, 0), (100, 100)),
            seg(2, (50, 0), (60, 1)),
            seg(3, (90, 100), (99, 0)), // crosses segment 1
        ];
        assert!(matches!(
            verify_nct(&set).unwrap_err(),
            GeomError::Crossing(1, 3)
        ));
    }

    #[test]
    fn x_disjoint_segments_never_compared() {
        let set: Vec<Segment> = (0..100)
            .map(|i| seg(i, (i as i64 * 10, 0), (i as i64 * 10 + 5, 50)))
            .collect();
        assert!(verify_nct(&set).is_ok());
    }

    #[test]
    fn empty_and_singleton_ok() {
        assert!(verify_nct(&[]).is_ok());
        assert!(verify_nct(&[seg(1, (0, 0), (1, 1))]).is_ok());
    }
}
