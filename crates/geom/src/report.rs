//! Streaming report sinks — the push-based half of the read path.
//!
//! The paper states every query bound in output-sensitive form
//! (`O(… + t)` I/Os to report `t` results); a read path that buffers the
//! whole answer as a `Vec` at every layer loses that spirit the moment a
//! caller only wants a count, an existence bit, or the first `k` hits.
//! [`ReportSink`] is the streaming contract every index layer pushes
//! into:
//!
//! * [`ReportSink::report`] receives one segment and steers the
//!   traversal with [`ControlFlow`] — `Break` aborts the walk (early
//!   exit for exists/limit queries);
//! * [`ReportSink::want_segments`] hints whether the sink needs the
//!   segments themselves. When it returns `false`, a layer that knows a
//!   whole subtree/run matches may call [`ReportSink::report_count`]
//!   with the stored count instead of reading the pages — the
//!   count-from-headers fast path;
//! * [`ReportSink::report_count`] adds `n` matching segments in bulk.
//!   Layers only call it when `want_segments()` is `false`.
//!
//! The four standard sinks mirror the query modes: [`CollectSink`]
//! (classic `Vec` answer), [`CountSink`], [`ExistsSink`] and
//! [`LimitSink`].

use crate::query::VerticalQuery;
use crate::segment::Segment;
use std::ops::ControlFlow;

/// Streaming receiver for query results. See module docs for the
/// contract between sinks and index layers.
pub trait ReportSink {
    /// Receive one reported segment. Return `ControlFlow::Break(())` to
    /// abort the traversal early (the layer stops reading pages).
    fn report(&mut self, seg: &Segment) -> ControlFlow<()>;

    /// Does this sink need the actual segments? `false` permits layers
    /// to answer from stored subtree counts via
    /// [`ReportSink::report_count`] without reading the pages.
    fn want_segments(&self) -> bool {
        true
    }

    /// Add `n` matching segments in bulk without materializing them.
    /// Called only when [`ReportSink::want_segments`] is `false`; the
    /// default ignores the count and continues (segment-wanting sinks
    /// never see this call).
    fn report_count(&mut self, _n: u64) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// Adapter preserving the classic `Vec<Segment>` API: collects every
/// reported segment, never breaks.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected answer.
    pub out: Vec<Segment>,
}

impl CollectSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The collected segments.
    pub fn into_vec(self) -> Vec<Segment> {
        self.out
    }
}

impl ReportSink for CollectSink {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        self.out.push(*seg);
        ControlFlow::Continue(())
    }
}

/// Counts matches; lets layers add whole subtrees from stored counts.
#[derive(Debug, Default)]
pub struct CountSink {
    /// Matching segments seen so far.
    pub count: u64,
}

impl CountSink {
    /// Fresh zeroed sink.
    pub fn new() -> Self {
        CountSink::default()
    }
}

impl ReportSink for CountSink {
    fn report(&mut self, _seg: &Segment) -> ControlFlow<()> {
        self.count += 1;
        ControlFlow::Continue(())
    }

    fn want_segments(&self) -> bool {
        false
    }

    fn report_count(&mut self, n: u64) -> ControlFlow<()> {
        self.count += n;
        ControlFlow::Continue(())
    }
}

/// Stops the traversal at the first match.
#[derive(Debug, Default)]
pub struct ExistsSink {
    /// Whether any segment matched.
    pub found: bool,
}

impl ExistsSink {
    /// Fresh negative sink.
    pub fn new() -> Self {
        ExistsSink::default()
    }
}

impl ReportSink for ExistsSink {
    fn report(&mut self, _seg: &Segment) -> ControlFlow<()> {
        self.found = true;
        ControlFlow::Break(())
    }

    fn want_segments(&self) -> bool {
        false
    }

    fn report_count(&mut self, n: u64) -> ControlFlow<()> {
        if n > 0 {
            self.found = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

/// Collects up to `k` segments, then breaks. Which `k` of the answer
/// arrive is traversal-order dependent (any `k` matching segments).
#[derive(Debug)]
pub struct LimitSink {
    /// The collected prefix of the answer.
    pub out: Vec<Segment>,
    k: usize,
}

impl LimitSink {
    /// Sink stopping after `k` segments.
    pub fn new(k: usize) -> Self {
        LimitSink {
            out: Vec::with_capacity(k.min(1024)),
            k,
        }
    }

    /// The collected segments.
    pub fn into_vec(self) -> Vec<Segment> {
        self.out
    }
}

impl ReportSink for LimitSink {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        if self.out.len() >= self.k {
            return ControlFlow::Break(());
        }
        self.out.push(*seg);
        if self.out.len() >= self.k {
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

/// Lends an inner sink while remembering whether it ever broke — for
/// multi-structure layers whose sub-calls (e.g. a PST query) honour the
/// `Break` internally but cannot return it. Once broken it stays
/// broken: further reports short-circuit without touching the inner
/// sink.
pub struct FusedSink<'a> {
    inner: &'a mut dyn ReportSink,
    broke: bool,
}

impl<'a> FusedSink<'a> {
    /// Wrap `inner`.
    pub fn new(inner: &'a mut dyn ReportSink) -> Self {
        FusedSink {
            inner,
            broke: false,
        }
    }

    /// Did the inner sink ever ask to stop?
    pub fn broke(&self) -> bool {
        self.broke
    }
}

impl ReportSink for FusedSink<'_> {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        if self.broke {
            return ControlFlow::Break(());
        }
        let flow = self.inner.report(seg);
        if flow.is_break() {
            self.broke = true;
        }
        flow
    }

    fn want_segments(&self) -> bool {
        self.inner.want_segments()
    }

    fn report_count(&mut self, n: u64) -> ControlFlow<()> {
        if self.broke {
            return ControlFlow::Break(());
        }
        let flow = self.inner.report_count(n);
        if flow.is_break() {
            self.broke = true;
        }
        flow
    }
}

/// One query's position inside a [`MultiSink`] batch.
struct MultiSlot<'a> {
    /// The query predicate, in the index's canonical frame.
    query: VerticalQuery,
    /// Where this query's hits go.
    sink: &'a mut dyn ReportSink,
    /// The sink broke (early exit) — stop routing to it.
    done: bool,
}

/// Fan-out sink for batched walks: one shared page traversal feeds many
/// per-query sinks. Each reported segment is routed to the subset of
/// *active* slots whose predicate matches; a slot whose sink returns
/// `Break` (exists satisfied, limit reached) is retired individually,
/// and the walk as a whole is told to stop only when **every** slot has
/// retired — so one query's early exit never truncates a batchmate's
/// answer, while a fully satisfied batch stops charging pages at once.
///
/// Layers that already know which query a page serves can address slots
/// directly ([`MultiSink::report`]/[`MultiSink::report_count`]);
/// scan-shaped layers route by predicate with [`MultiSink::offer`].
pub struct MultiSink<'a> {
    slots: Vec<MultiSlot<'a>>,
    active: usize,
}

impl<'a> MultiSink<'a> {
    /// Empty batch.
    pub fn new() -> Self {
        MultiSink {
            slots: Vec::new(),
            active: 0,
        }
    }

    /// Add one query/sink pair; returns its slot index.
    pub fn push(&mut self, query: VerticalQuery, sink: &'a mut dyn ReportSink) -> usize {
        self.slots.push(MultiSlot {
            query,
            sink,
            done: false,
        });
        self.active += 1;
        self.slots.len() - 1
    }

    /// Number of slots in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the batch holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slot `i`'s query predicate.
    pub fn query(&self, i: usize) -> &VerticalQuery {
        &self.slots[i].query
    }

    /// Is slot `i` still accepting results?
    pub fn is_active(&self, i: usize) -> bool {
        !self.slots[i].done
    }

    /// Slots still accepting results.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Every slot has retired — the shared walk may stop reading pages.
    pub fn all_done(&self) -> bool {
        self.active == 0
    }

    /// Does slot `i` need actual segments (false ⇒ the layer may answer
    /// it from stored subtree counts)?
    pub fn want_segments(&self, i: usize) -> bool {
        self.slots[i].sink.want_segments()
    }

    /// Retire slot `i` without reporting (the layer proved it can get
    /// nothing more — e.g. its subtree is exhausted).
    pub fn retire(&mut self, i: usize) {
        if !self.slots[i].done {
            self.slots[i].done = true;
            self.active -= 1;
        }
    }

    /// Report one segment to slot `i`. `Break` means *this slot* is
    /// done; the shared walk keeps going while other slots are active.
    pub fn report(&mut self, i: usize, seg: &Segment) -> ControlFlow<()> {
        if self.slots[i].done {
            return ControlFlow::Break(());
        }
        let flow = self.slots[i].sink.report(seg);
        if flow.is_break() {
            self.retire(i);
        }
        flow
    }

    /// Bulk-count `n` matches into slot `i` (only meaningful when
    /// [`MultiSink::want_segments`] is false for it).
    pub fn report_count(&mut self, i: usize, n: u64) -> ControlFlow<()> {
        if self.slots[i].done {
            return ControlFlow::Break(());
        }
        let flow = self.slots[i].sink.report_count(n);
        if flow.is_break() {
            self.retire(i);
        }
        flow
    }

    /// Direct access to slot `i`'s sink, for layers that hand a whole
    /// sub-walk to one query (the fan-out bookkeeping is bypassed, so
    /// the caller must [`MultiSink::retire`] the slot itself if the
    /// sub-walk broke).
    pub fn sink_mut(&mut self, i: usize) -> &mut dyn ReportSink {
        self.slots[i].sink
    }

    /// Route `seg` to every active slot whose predicate matches — the
    /// scan-shaped entry point. Returns `Break` once every slot has
    /// retired (the caller may stop its scan).
    pub fn offer(&mut self, seg: &Segment) -> ControlFlow<()> {
        for i in 0..self.slots.len() {
            if !self.slots[i].done && self.slots[i].query.hits(seg) {
                let _ = self.report(i, seg);
            }
        }
        if self.all_done() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

impl Default for MultiSink<'_> {
    fn default() -> Self {
        MultiSink::new()
    }
}

/// A bare `Vec<Segment>` is the minimal collecting sink — lets the
/// classic `*_into(..., out: &mut Vec<Segment>)` APIs delegate to the
/// sink path without an adapter struct.
impl ReportSink for Vec<Segment> {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        self.push(*seg);
        ControlFlow::Continue(())
    }
}

/// Forward to a sink behind a mutable reference (layers take
/// `&mut dyn ReportSink`, wrappers need to re-lend).
impl ReportSink for &mut dyn ReportSink {
    fn report(&mut self, seg: &Segment) -> ControlFlow<()> {
        (**self).report(seg)
    }
    fn want_segments(&self) -> bool {
        (**self).want_segments()
    }
    fn report_count(&mut self, n: u64) -> ControlFlow<()> {
        (**self).report_count(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64) -> Segment {
        Segment::new(id, (0, id as i64), (10, id as i64)).unwrap()
    }

    #[test]
    fn collect_gathers_everything() {
        let mut s = CollectSink::new();
        for i in 0..5 {
            assert_eq!(s.report(&seg(i)), ControlFlow::Continue(()));
        }
        assert!(s.want_segments());
        assert_eq!(s.into_vec().len(), 5);
    }

    #[test]
    fn count_accepts_bulk() {
        let mut s = CountSink::new();
        assert!(!s.want_segments());
        let _ = s.report(&seg(0));
        let _ = s.report_count(41);
        assert_eq!(s.count, 42);
    }

    #[test]
    fn exists_breaks_immediately() {
        let mut s = ExistsSink::new();
        assert_eq!(s.report_count(0), ControlFlow::Continue(()));
        assert!(!s.found);
        assert_eq!(s.report(&seg(1)), ControlFlow::Break(()));
        assert!(s.found);
        let mut s2 = ExistsSink::new();
        assert_eq!(s2.report_count(3), ControlFlow::Break(()));
        assert!(s2.found);
    }

    #[test]
    fn limit_stops_at_k() {
        let mut s = LimitSink::new(2);
        assert_eq!(s.report(&seg(0)), ControlFlow::Continue(()));
        assert_eq!(s.report(&seg(1)), ControlFlow::Break(()));
        assert_eq!(s.report(&seg(2)), ControlFlow::Break(()));
        assert_eq!(s.into_vec().len(), 2);
    }

    #[test]
    fn zero_limit_reports_nothing() {
        let mut s = LimitSink::new(0);
        assert_eq!(s.report(&seg(0)), ControlFlow::Break(()));
        assert!(s.out.is_empty());
    }

    #[test]
    fn multi_sink_routes_by_predicate_and_isolates_early_exit() {
        // Horizontal segments at y = id crossing x ∈ [0, 10].
        let mut collect = CollectSink::new();
        let mut exists = ExistsSink::new();
        let mut multi = MultiSink::new();
        let a = multi.push(VerticalQuery::segment(5, 0, 10), &mut collect);
        let b = multi.push(VerticalQuery::segment(5, 2, 3), &mut exists);
        assert_eq!(multi.len(), 2);
        assert_eq!(multi.active_count(), 2);
        // y=1 hits only the tall query.
        assert_eq!(multi.offer(&seg(1)), ControlFlow::Continue(()));
        assert!(multi.is_active(a) && multi.is_active(b));
        // y=2 hits both; the exists sink breaks and retires alone.
        assert_eq!(multi.offer(&seg(2)), ControlFlow::Continue(()));
        assert!(multi.is_active(a));
        assert!(!multi.is_active(b), "exists retired after first hit");
        assert_eq!(multi.active_count(), 1);
        // Further matches keep flowing to the survivor only.
        assert_eq!(multi.offer(&seg(3)), ControlFlow::Continue(()));
        multi.retire(a);
        assert!(multi.all_done());
        assert_eq!(multi.offer(&seg(4)), ControlFlow::Break(()));
        drop(multi);
        assert_eq!(
            collect.out.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(exists.found);
    }

    #[test]
    fn multi_sink_slot_addressed_reports_and_counts() {
        let mut count = CountSink::new();
        let mut limit = LimitSink::new(1);
        let mut multi = MultiSink::new();
        let c = multi.push(VerticalQuery::Line { x: 5 }, &mut count);
        let l = multi.push(VerticalQuery::Line { x: 5 }, &mut limit);
        assert!(!multi.want_segments(c), "count answers from stored totals");
        assert!(multi.want_segments(l));
        assert_eq!(multi.report_count(c, 7), ControlFlow::Continue(()));
        assert_eq!(multi.report(l, &seg(9)), ControlFlow::Break(()));
        assert!(!multi.is_active(l));
        // A retired slot swallows further reports as Break.
        assert_eq!(multi.report(l, &seg(10)), ControlFlow::Break(()));
        multi.retire(c);
        drop(multi);
        assert_eq!(count.count, 7);
        assert_eq!(limit.out.len(), 1);
    }
}
