//! Integer lattice points.

use std::fmt;

/// A point of the integer plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// True when both coordinates are within [`crate::COORD_LIMIT`].
    #[inline]
    pub fn in_range(&self) -> bool {
        self.x.abs() <= crate::COORD_LIMIT && self.y.abs() <= crate::COORD_LIMIT
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point { x, y }
    }
}

/// Sign of the cross product `(b − a) × (c − a)`:
/// `> 0` if `c` is left of directed line `a→b`, `< 0` if right, `0` if
/// collinear. Exact for all in-range coordinates.
#[inline]
pub fn orient(a: Point, b: Point, c: Point) -> i8 {
    let v = (b.x - a.x) as i128 * (c.y - a.y) as i128 - (b.y - a.y) as i128 * (c.x - a.x) as i128;
    match v {
        0 => 0,
        v if v > 0 => 1,
        _ => -1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_signs() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 0);
        assert_eq!(orient(a, b, Point::new(5, 3)), 1);
        assert_eq!(orient(a, b, Point::new(5, -3)), -1);
        assert_eq!(orient(a, b, Point::new(20, 0)), 0);
    }

    #[test]
    fn orient_is_antisymmetric() {
        let a = Point::new(-3, 7);
        let b = Point::new(11, -2);
        let c = Point::new(4, 4);
        assert_eq!(orient(a, b, c), -orient(b, a, c));
    }

    #[test]
    fn orient_no_overflow_at_limits() {
        let m = crate::COORD_LIMIT;
        let a = Point::new(-m, -m);
        let b = Point::new(m, m);
        let c = Point::new(m, -m);
        assert_eq!(orient(a, b, c), -1);
    }

    #[test]
    fn display_and_from() {
        let p: Point = (3, -4).into();
        assert_eq!(p.to_string(), "(3, -4)");
        assert!(p.in_range());
        assert!(!Point::new(crate::COORD_LIMIT + 1, 0).in_range());
    }
}
