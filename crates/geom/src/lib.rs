#![warn(missing_docs)]

//! # segdb-geom — exact integer geometry for segment databases
//!
//! Every geometric decision in the index path is made with exact integer
//! arithmetic (`i64` coordinates, `i128` cross products): no floats, no
//! epsilons, so query answers are *exactly* the set a brute-force oracle
//! reports and all oracle-comparison tests demand set equality.
//!
//! Contents:
//!
//! * [`Point`], [`Segment`] — primitives with canonical endpoint order.
//! * [`predicates`] — the exact comparisons the index structures run on:
//!   segment × vertical-query intersection, `y`-at-`x` ordering of
//!   non-crossing segments, orientation tests.
//! * [`VerticalQuery`] — the paper's generalized query segment (line, ray
//!   or segment) in the canonical vertical direction.
//! * [`transform`] — the exact shear that maps a fixed query direction to
//!   vertical, implementing the paper's "coordinate axes can be
//!   appropriately rotated" footnote without leaving ℤ².
//! * [`report`] — the streaming [`ReportSink`] contract every index
//!   layer pushes query results into (collect / count / exists / limit
//!   modes with early exit).
//! * [`nct`] — validation that a set is *non-crossing but possibly
//!   touching* (NCT), the paper's input model.
//! * [`gen`] — deterministic NCT workload generators (GIS-like maps,
//!   temporal layers, fans, combs) used by tests and every benchmark.
//!
//! ## Coordinate limits
//!
//! Inputs must satisfy `|x|, |y| ≤ COORD_LIMIT` (2³⁸). This keeps every
//! predicate's worst-case product below 2¹²⁷ (see `predicates` docs) and
//! leaves room for the shear transform, which multiplies coordinates by a
//! direction component bounded by [`transform::DIR_LIMIT`].

pub mod error;
pub mod gen;
pub mod nct;
pub mod point;
pub mod predicates;
pub mod query;
pub mod report;
pub mod segment;
pub mod transform;

pub use error::GeomError;
pub use point::Point;
pub use query::VerticalQuery;
pub use report::{CollectSink, CountSink, ExistsSink, FusedSink, LimitSink, MultiSink, ReportSink};
pub use segment::{Segment, SegmentId};
pub use transform::Direction;

/// Maximum absolute coordinate accepted anywhere in the library.
///
/// With `|coord| ≤ 2³⁸`, the deepest predicate (`cmp_y_at_x`, a
/// three-factor product) is bounded by `2·2³⁸·2³⁹·2³⁹ < 2¹¹⁸ < i128::MAX`.
pub const COORD_LIMIT: i64 = 1 << 38;
