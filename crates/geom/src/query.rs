//! The paper's generalized query segment, in canonical (vertical) form.

use crate::predicates::hits_vertical;
use crate::segment::Segment;

/// A *generalized segment* query of the canonical (vertical) direction: a
/// full line, a ray, or a bounded segment on the line `x = x0` (paper §1).
///
/// Queries of any other fixed direction are reduced to this form by the
/// shear of [`crate::transform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerticalQuery {
    /// The whole line `x = x0` — a classical *stabbing query*.
    Line {
        /// Abscissa of the query line.
        x: i64,
    },
    /// The upward ray `x = x0, y ≥ y0`.
    RayUp {
        /// Abscissa of the ray.
        x: i64,
        /// Lowest ordinate of the ray.
        y0: i64,
    },
    /// The downward ray `x = x0, y ≤ y0`.
    RayDown {
        /// Abscissa of the ray.
        x: i64,
        /// Highest ordinate of the ray.
        y0: i64,
    },
    /// The bounded segment `x = x0, lo ≤ y ≤ hi` — the general (and most
    /// expensive) case the paper focuses on.
    Segment {
        /// Abscissa of the query segment.
        x: i64,
        /// Lower ordinate bound (inclusive).
        lo: i64,
        /// Upper ordinate bound (inclusive).
        hi: i64,
    },
}

impl VerticalQuery {
    /// Convenience constructor for the bounded-segment case with bound
    /// normalization.
    pub fn segment(x: i64, y1: i64, y2: i64) -> Self {
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        VerticalQuery::Segment { x, lo, hi }
    }

    /// Abscissa of the query.
    #[inline]
    pub fn x(&self) -> i64 {
        match *self {
            VerticalQuery::Line { x }
            | VerticalQuery::RayUp { x, .. }
            | VerticalQuery::RayDown { x, .. }
            | VerticalQuery::Segment { x, .. } => x,
        }
    }

    /// Inclusive lower ordinate bound (`None` = −∞).
    #[inline]
    pub fn lo(&self) -> Option<i64> {
        match *self {
            VerticalQuery::Line { .. } | VerticalQuery::RayDown { .. } => None,
            VerticalQuery::RayUp { y0, .. } => Some(y0),
            VerticalQuery::Segment { lo, .. } => Some(lo),
        }
    }

    /// Inclusive upper ordinate bound (`None` = +∞).
    #[inline]
    pub fn hi(&self) -> Option<i64> {
        match *self {
            VerticalQuery::Line { .. } | VerticalQuery::RayUp { .. } => None,
            VerticalQuery::RayDown { y0, .. } => Some(y0),
            VerticalQuery::Segment { hi, .. } => Some(hi),
        }
    }

    /// Exact intersection test against a stored segment — the oracle
    /// predicate every index structure's answer is validated against.
    #[inline]
    pub fn hits(&self, seg: &Segment) -> bool {
        hits_vertical(seg, self.x(), self.lo(), self.hi())
    }
}

/// Report every segment of `set` intersected by `q`, by exhaustive scan.
///
/// This is the **oracle** (and the `FullScan` baseline's kernel): `O(N)`
/// work, used for correctness comparison in every test.
pub fn scan_oracle<'a>(
    set: impl IntoIterator<Item = &'a Segment>,
    q: &VerticalQuery,
) -> Vec<Segment> {
    let mut out: Vec<Segment> = set.into_iter().filter(|s| q.hits(s)).copied().collect();
    out.sort_by_key(|s| s.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn segment_constructor_normalizes() {
        assert_eq!(
            VerticalQuery::segment(3, 9, -1),
            VerticalQuery::Segment {
                x: 3,
                lo: -1,
                hi: 9
            }
        );
    }

    #[test]
    fn bounds_per_variant() {
        assert_eq!(VerticalQuery::Line { x: 1 }.lo(), None);
        assert_eq!(VerticalQuery::Line { x: 1 }.hi(), None);
        assert_eq!(VerticalQuery::RayUp { x: 1, y0: 5 }.lo(), Some(5));
        assert_eq!(VerticalQuery::RayUp { x: 1, y0: 5 }.hi(), None);
        assert_eq!(VerticalQuery::RayDown { x: 1, y0: 5 }.hi(), Some(5));
        assert_eq!(VerticalQuery::segment(1, 2, 8).x(), 1);
    }

    #[test]
    fn hits_matches_variant_semantics() {
        let s = seg(0, (0, 0), (10, 10));
        assert!(VerticalQuery::Line { x: 4 }.hits(&s));
        assert!(!VerticalQuery::Line { x: 11 }.hits(&s));
        assert!(VerticalQuery::RayUp { x: 4, y0: 4 }.hits(&s));
        assert!(!VerticalQuery::RayUp { x: 4, y0: 5 }.hits(&s));
        assert!(VerticalQuery::RayDown { x: 4, y0: 4 }.hits(&s));
        assert!(!VerticalQuery::RayDown { x: 4, y0: 3 }.hits(&s));
        assert!(VerticalQuery::segment(4, 0, 4).hits(&s));
        assert!(!VerticalQuery::segment(4, 5, 9).hits(&s));
    }

    #[test]
    fn oracle_filters_and_sorts() {
        let set = vec![
            seg(2, (0, 0), (10, 0)),
            seg(1, (0, 5), (10, 5)),
            seg(3, (20, 0), (30, 0)),
        ];
        let hits = scan_oracle(&set, &VerticalQuery::segment(5, 0, 5));
        assert_eq!(hits.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1, 2]);
    }
}
