//! Exact predicates used by every index structure.
//!
//! All comparisons cross-multiply into `i128`. Bounds: coordinates are at
//! most `C = 2³⁸` in absolute value, so differences are ≤ `2³⁹` and the
//! worst product here — `(a.y·dx + dy·(x0−a.x)) · dx'` in [`cmp_y_at_x`] —
//! is below `2·2³⁸·2³⁹·2³⁹ = 2¹¹⁷`, comfortably inside `i128`.

use crate::point::{orient, Point};
use crate::segment::Segment;
use std::cmp::Ordering;

/// Compare the segment's ordinate at the vertical line `x = x0` against
/// `y0`, exactly.
///
/// # Panics
/// Debug-asserts that the segment is non-vertical and spans `x0`; callers
/// uphold this by construction (fragments are clipped to slabs that
/// contain the query line).
#[inline]
pub fn y_at_x_cmp(seg: &Segment, x0: i64, y0: i64) -> Ordering {
    debug_assert!(!seg.is_vertical(), "y_at_x undefined for vertical segment");
    debug_assert!(seg.spans_x(x0), "segment does not span x0");
    let dx = (seg.b.x - seg.a.x) as i128; // > 0 by canonical order
    let dy = (seg.b.y - seg.a.y) as i128;
    let lhs = seg.a.y as i128 * dx + dy * (x0 - seg.a.x) as i128;
    let rhs = y0 as i128 * dx;
    lhs.cmp(&rhs)
}

/// Compare two non-vertical segments' ordinates at the line `x = x0`.
///
/// For NCT segments whose x-extents both contain `x0`, this is the order
/// the paper's multislab lists and PST base lines are sorted by; it is a
/// total preorder (ties mean the segments touch at `x0`).
#[inline]
pub fn cmp_y_at_x(s1: &Segment, s2: &Segment, x0: i64) -> Ordering {
    debug_assert!(!s1.is_vertical() && !s2.is_vertical());
    debug_assert!(s1.spans_x(x0) && s2.spans_x(x0));
    let dx1 = (s1.b.x - s1.a.x) as i128;
    let dy1 = (s1.b.y - s1.a.y) as i128;
    let dx2 = (s2.b.x - s2.a.x) as i128;
    let dy2 = (s2.b.y - s2.a.y) as i128;
    let v1 = s1.a.y as i128 * dx1 + dy1 * (x0 - s1.a.x) as i128;
    let v2 = s2.a.y as i128 * dx2 + dy2 * (x0 - s2.a.x) as i128;
    (v1 * dx2).cmp(&(v2 * dx1))
}

/// Compare two segments by slope, exactly (`dy/dx`, verticals = +∞).
///
/// Used to tie-break base-line order for segments touching at their base
/// intersection: the slope order is the order of the segments at height
/// `base + ε`.
#[inline]
pub fn cmp_slope(s1: &Segment, s2: &Segment) -> Ordering {
    let dx1 = (s1.b.x - s1.a.x) as i128;
    let dy1 = (s1.b.y - s1.a.y) as i128;
    let dx2 = (s2.b.x - s2.a.x) as i128;
    let dy2 = (s2.b.y - s2.a.y) as i128;
    match (dx1 == 0, dx2 == 0) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => (dy1 * dx2).cmp(&(dy2 * dx1)),
    }
}

/// Does `seg` intersect the vertical query at `x = x0` with optional
/// inclusive ordinate bounds `lo ≤ y ≤ hi` (`None` = unbounded, i.e. ray
/// or line queries)?
///
/// Touching counts as intersecting, matching the paper's closed-set model.
pub fn hits_vertical(seg: &Segment, x0: i64, lo: Option<i64>, hi: Option<i64>) -> bool {
    if !seg.spans_x(x0) {
        return false;
    }
    if seg.is_vertical() {
        // Overlap of [ymin, ymax] with [lo, hi].
        let (ymin, ymax) = s_yspan(seg);
        return lo.is_none_or(|lo| ymax >= lo) && hi.is_none_or(|hi| ymin <= hi);
    }
    lo.is_none_or(|lo| y_at_x_cmp(seg, x0, lo) != Ordering::Less)
        && hi.is_none_or(|hi| y_at_x_cmp(seg, x0, hi) != Ordering::Greater)
}

/// [`hits_vertical`] restricted to the part of `seg` with
/// `clip.0 ≤ x ≤ clip.1` — the predicate fragments are queried with.
///
/// Fragment endpoints produced by cutting a segment on a slab boundary can
/// be non-integer; representing a fragment as *(original segment, integer
/// clip window)* keeps everything exact.
pub fn hits_vertical_clipped(
    seg: &Segment,
    clip: (i64, i64),
    x0: i64,
    lo: Option<i64>,
    hi: Option<i64>,
) -> bool {
    if x0 < clip.0 || x0 > clip.1 {
        return false;
    }
    hits_vertical(seg, x0, lo, hi)
}

#[inline]
fn s_yspan(seg: &Segment) -> (i64, i64) {
    seg.y_span()
}

/// Closed-set intersection test for two arbitrary segments, by
/// orientation case analysis — exact, touching counts.
///
/// This is the kernel of the §5 *future work* extension (arbitrary-slope
/// query segments): with no fixed direction to shear by, candidate
/// filtering falls back to this pairwise predicate.
pub fn segments_intersect(s: &Segment, t: &Segment) -> bool {
    let (o1, o2) = (orient(s.a, s.b, t.a), orient(s.a, s.b, t.b));
    let (o3, o4) = (orient(t.a, t.b, s.a), orient(t.a, t.b, s.b));
    if o1 != o2 && o3 != o4 {
        return true;
    }
    let on = |a: Point, b: Point, p: Point| {
        orient(a, b, p) == 0
            && p.x >= a.x.min(b.x)
            && p.x <= a.x.max(b.x)
            && p.y >= a.y.min(b.y)
            && p.y <= a.y.max(b.y)
    };
    on(s.a, s.b, t.a) || on(s.a, s.b, t.b) || on(t.a, t.b, s.a) || on(t.a, t.b, s.b)
}

/// How two NCT-candidate segments interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// Disjoint or touching — admissible in a segment database.
    Admissible,
    /// Interiors cross at a single point (neither segment has an endpoint
    /// there): forbidden.
    ProperCross,
    /// Collinear with an overlap of positive length: forbidden.
    CollinearOverlap,
}

/// Classify the interaction of two segments under the NCT input model.
pub fn classify_pair(s1: &Segment, s2: &Segment) -> PairRelation {
    let o1 = orient(s1.a, s1.b, s2.a);
    let o2 = orient(s1.a, s1.b, s2.b);
    let o3 = orient(s2.a, s2.b, s1.a);
    let o4 = orient(s2.a, s2.b, s1.b);
    if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
        return PairRelation::ProperCross;
    }
    if o1 == 0 && o2 == 0 {
        // Collinear: overlap of positive length is forbidden.
        if collinear_overlap_len_positive(s1, s2) {
            return PairRelation::CollinearOverlap;
        }
    }
    PairRelation::Admissible
}

/// For two collinear segments, is the intersection longer than a point?
fn collinear_overlap_len_positive(s1: &Segment, s2: &Segment) -> bool {
    // Project on the dominant axis of s1 (canonical order makes a ≤ b on
    // that axis for both segments because they are collinear).
    if s1.a.x != s1.b.x {
        let lo = s1.a.x.max(s2.a.x);
        let hi = s1.b.x.min(s2.b.x);
        lo < hi
    } else {
        let (l1, h1) = s1.y_span();
        let (l2, h2) = s2.y_span();
        l1.max(l2) < h1.min(h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn y_at_x_cmp_exact_on_non_lattice_intersections() {
        // y(x) = x/3 at x=1 is 1/3: strictly above 0, strictly below 1.
        let s = seg(0, (0, 0), (3, 1));
        assert_eq!(y_at_x_cmp(&s, 1, 0), Ordering::Greater);
        assert_eq!(y_at_x_cmp(&s, 1, 1), Ordering::Less);
        assert_eq!(y_at_x_cmp(&s, 0, 0), Ordering::Equal);
        assert_eq!(y_at_x_cmp(&s, 3, 1), Ordering::Equal);
    }

    #[test]
    fn cmp_y_at_x_orders_non_crossing() {
        let lo = seg(0, (0, 0), (10, 2));
        let hi = seg(1, (0, 1), (10, 4));
        for x in [0, 3, 7, 10] {
            assert_eq!(cmp_y_at_x(&lo, &hi, x), Ordering::Less);
            assert_eq!(cmp_y_at_x(&hi, &lo, x), Ordering::Greater);
        }
        // Touching at x=0 with equal start:
        let t = seg(2, (0, 0), (10, 9));
        assert_eq!(cmp_y_at_x(&lo, &t, 0), Ordering::Equal);
        assert_eq!(cmp_y_at_x(&lo, &t, 1), Ordering::Less);
    }

    #[test]
    fn cmp_slope_total_order() {
        let flat = seg(0, (0, 0), (10, 0));
        let up = seg(1, (0, 0), (10, 5));
        let steep = seg(2, (0, 0), (1, 100));
        let vert = seg(3, (0, 0), (0, 1));
        assert_eq!(cmp_slope(&flat, &up), Ordering::Less);
        assert_eq!(cmp_slope(&up, &steep), Ordering::Less);
        assert_eq!(cmp_slope(&steep, &vert), Ordering::Less);
        assert_eq!(cmp_slope(&vert, &vert), Ordering::Equal);
        let down = seg(4, (0, 0), (10, -5));
        assert_eq!(cmp_slope(&down, &flat), Ordering::Less);
    }

    #[test]
    fn hits_vertical_segment_query() {
        let s = seg(0, (0, 0), (4, 4)); // diagonal
        assert!(hits_vertical(&s, 2, Some(0), Some(4)));
        assert!(hits_vertical(&s, 2, Some(2), Some(2)), "touch at point");
        assert!(!hits_vertical(&s, 2, Some(3), Some(4)));
        assert!(!hits_vertical(&s, 5, None, None), "outside x-span");
        // Ray and line bounds.
        assert!(hits_vertical(&s, 2, Some(1), None));
        assert!(
            !hits_vertical(&s, 2, None, Some(1)),
            "y(2)=2 lies above hi=1"
        );
    }

    #[test]
    fn hits_vertical_bounds_are_inclusive_and_exact() {
        let s = seg(0, (0, 0), (3, 1)); // y(1) = 1/3
        assert!(hits_vertical(&s, 1, Some(0), Some(1)));
        assert!(!hits_vertical(&s, 1, Some(1), Some(2)), "1/3 < 1 strictly");
        assert!(!hits_vertical(&s, 1, None, Some(0)), "1/3 > 0 strictly");
    }

    #[test]
    fn hits_vertical_on_vertical_segment() {
        let v = seg(0, (2, 1), (2, 5));
        assert!(hits_vertical(&v, 2, Some(0), Some(1)), "touch at endpoint");
        assert!(hits_vertical(&v, 2, Some(5), None));
        assert!(!hits_vertical(&v, 2, Some(6), None));
        assert!(!hits_vertical(&v, 2, None, Some(0)));
        assert!(!hits_vertical(&v, 3, None, None));
        assert!(hits_vertical(&v, 2, None, None), "line query");
    }

    #[test]
    fn clipped_predicate_respects_window() {
        let s = seg(0, (0, 0), (10, 10));
        assert!(hits_vertical_clipped(&s, (0, 4), 3, None, None));
        assert!(!hits_vertical_clipped(&s, (0, 4), 5, None, None));
        assert!(hits_vertical_clipped(&s, (4, 10), 4, Some(4), Some(4)));
    }

    #[test]
    fn classify_proper_cross() {
        let s1 = seg(0, (0, 0), (10, 10));
        let s2 = seg(1, (0, 10), (10, 0));
        assert_eq!(classify_pair(&s1, &s2), PairRelation::ProperCross);
    }

    #[test]
    fn classify_touching_is_admissible() {
        let s1 = seg(0, (0, 0), (10, 10));
        // endpoint of s2 in interior of s1
        let s2 = seg(1, (5, 5), (8, 0));
        assert_eq!(classify_pair(&s1, &s2), PairRelation::Admissible);
        // shared endpoint
        let s3 = seg(2, (10, 10), (20, 0));
        assert_eq!(classify_pair(&s1, &s3), PairRelation::Admissible);
        // T-touch from above
        let s4 = seg(3, (5, 5), (5, 9));
        assert_eq!(classify_pair(&s1, &s4), PairRelation::Admissible);
    }

    #[test]
    fn classify_collinear() {
        let s1 = seg(0, (0, 0), (10, 0));
        let over = seg(1, (5, 0), (15, 0));
        assert_eq!(classify_pair(&s1, &over), PairRelation::CollinearOverlap);
        let touch = seg(2, (10, 0), (20, 0));
        assert_eq!(classify_pair(&s1, &touch), PairRelation::Admissible);
        let apart = seg(3, (11, 0), (20, 0));
        assert_eq!(classify_pair(&s1, &apart), PairRelation::Admissible);
        // collinear verticals
        let v1 = seg(4, (0, 0), (0, 10));
        let v2 = seg(5, (0, 9), (0, 20));
        assert_eq!(classify_pair(&v1, &v2), PairRelation::CollinearOverlap);
        let v3 = seg(6, (0, 10), (0, 20));
        assert_eq!(classify_pair(&v1, &v3), PairRelation::Admissible);
    }

    #[test]
    fn classify_disjoint() {
        let s1 = seg(0, (0, 0), (1, 1));
        let s2 = seg(1, (5, 5), (6, 9));
        assert_eq!(classify_pair(&s1, &s2), PairRelation::Admissible);
    }
}

#[cfg(test)]
mod intersect_tests {
    use super::*;
    use crate::segment::Segment;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn proper_and_touching_and_disjoint() {
        let s = seg(0, (0, 0), (10, 10));
        assert!(segments_intersect(&s, &seg(1, (0, 10), (10, 0)))); // cross
        assert!(segments_intersect(&s, &seg(2, (5, 5), (9, 0)))); // endpoint on interior
        assert!(segments_intersect(&s, &seg(3, (10, 10), (20, 0)))); // shared endpoint
        assert!(!segments_intersect(&s, &seg(4, (11, 11), (20, 12))));
        assert!(!segments_intersect(&s, &seg(5, (0, 1), (9, 10)))); // parallel above
    }

    #[test]
    fn collinear_cases() {
        let s = seg(0, (0, 0), (10, 0));
        assert!(segments_intersect(&s, &seg(1, (5, 0), (15, 0)))); // overlap
        assert!(segments_intersect(&s, &seg(2, (10, 0), (20, 0)))); // touch
        assert!(!segments_intersect(&s, &seg(3, (11, 0), (20, 0)))); // gap
    }

    #[test]
    fn consistency_with_hits_vertical() {
        // Against a materialized vertical query segment.
        let s = seg(0, (0, 0), (8, 4));
        for x0 in -1..10i64 {
            for lo in -2..6i64 {
                let hi = lo + 3;
                let q = Segment::new(99, (x0, lo), (x0, hi)).unwrap();
                assert_eq!(
                    segments_intersect(&s, &q),
                    hits_vertical(&s, x0, Some(lo), Some(hi)),
                    "x0={x0} lo={lo}"
                );
            }
        }
    }
}
