//! The external PST: build, frontier query, insert, lazy delete,
//! weight-balanced rebuilds, validation.

use crate::node::{default_caps, node_bytes, seg_cap_for_fanout, ChildEntry, PstNode};
use crate::side::Side;
use crate::tombs;
use segdb_geom::predicates::{hits_vertical, y_at_x_cmp};
use segdb_geom::{ReportSink, Segment};
use segdb_pager::{ByteReader, ByteWriter, PageId, Pager, PagerError, Result, NULL_PAGE};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Configuration of a PST instance.
#[derive(Debug, Clone, Copy)]
pub struct PstConfig {
    /// Child count per internal node. `None` = page-size default (the
    /// packed, `Θ(B)`-ary accelerated variant).
    pub fanout: Option<usize>,
}

impl PstConfig {
    /// The paper's binary tree of Section 2 (Lemma 2 costs).
    pub fn binary() -> Self {
        PstConfig { fanout: Some(2) }
    }

    /// The packed variant (Lemma 3 substitute).
    pub fn packed() -> Self {
        PstConfig { fanout: None }
    }

    fn caps(&self, page_size: usize) -> (usize, usize) {
        match self.fanout {
            None => default_caps(page_size),
            Some(f) => {
                let f = f.max(2);
                (seg_cap_for_fanout(page_size, f), f)
            }
        }
    }
}

impl Default for PstConfig {
    fn default() -> Self {
        PstConfig::packed()
    }
}

/// Serializable identity of a PST (20 bytes). `base_x`, [`Side`] and the
/// config are context the owner supplies at [`Pst::attach`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PstState {
    /// Root page ([`NULL_PAGE`] = empty tree).
    pub root: PageId,
    /// Physical segment count (tombstoned included).
    pub total: u64,
    /// Tombstone chain head.
    pub tomb_head: PageId,
    /// Tombstone count.
    pub tomb_count: u32,
}

impl PstState {
    /// Encoded size in bytes.
    pub const ENCODED_SIZE: usize = 4 + 8 + 4 + 4;

    /// An empty tree's state.
    pub fn empty() -> Self {
        PstState {
            root: NULL_PAGE,
            total: 0,
            tomb_head: NULL_PAGE,
            tomb_count: 0,
        }
    }

    /// Serialize.
    pub fn encode(&self, w: &mut ByteWriter<'_>) -> Result<()> {
        w.u32(self.root)?;
        w.u64(self.total)?;
        w.u32(self.tomb_head)?;
        w.u32(self.tomb_count)
    }

    /// Deserialize.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(PstState {
            root: r.u32()?,
            total: r.u64()?,
            tomb_head: r.u32()?,
            tomb_count: r.u32()?,
        })
    }
}

/// Instrumentation of one query — the measurable form of Lemma 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Node pages read.
    pub blocks_read: u32,
    /// Segments reported.
    pub hits: u32,
    /// Levels descended.
    pub levels: u32,
    /// Widest per-level frontier (paper: ≤ 2 boundary nodes per level
    /// plus output-charged nodes).
    pub max_frontier: u32,
    /// Frontier nodes that produced no output (the paper's queue slack).
    pub fruitless_nodes: u32,
}

/// One predicate of a batched PST walk (see [`Pst::query_batch_sink`]):
/// the vertical query `x = qx, lo ≤ y ≤ hi` plus an opaque `tag` handed
/// to the emit callback with every hit.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery {
    /// Query abscissa.
    pub qx: i64,
    /// Lower ordinate bound (`None` = unbounded).
    pub lo: Option<i64>,
    /// Upper ordinate bound (`None` = unbounded).
    pub hi: Option<i64>,
    /// Caller-defined correlation tag (e.g. a sink-slot index).
    pub tag: usize,
}

/// An external priority search tree for line-based segments. See crate
/// docs for the invariants.
///
/// ```
/// use segdb_pager::{Pager, PagerConfig};
/// use segdb_pst::{Pst, PstConfig, Side};
/// use segdb_geom::Segment;
///
/// let pager = Pager::new(PagerConfig::default());
/// // Three segments based on the vertical line x = 0, extending right.
/// let segs = vec![
///     Segment::new(1, (0, 0), (10, 2)).unwrap(),
///     Segment::new(2, (0, 5), (4, 6)).unwrap(),
///     Segment::new(3, (0, 9), (20, 9)).unwrap(),
/// ];
/// let pst = Pst::build(&pager, 0, Side::Right, PstConfig::packed(), segs).unwrap();
/// let mut hits = Vec::new();
/// // Query segment x = 6, 0 ≤ y ≤ 10: segment 2 is too short to reach.
/// pst.query_into(&pager, 6, Some(0), Some(10), &mut hits).unwrap();
/// let mut ids: Vec<u64> = hits.iter().map(|s| s.id).collect();
/// ids.sort();
/// assert_eq!(ids, vec![1, 3]);
/// ```
#[derive(Debug)]
pub struct Pst {
    base_x: i64,
    side: Side,
    state: PstState,
    seg_cap: usize,
    fanout: usize,
    cfg: PstConfig,
}

impl Pst {
    /// Build from a set of segments, each of which must span the base
    /// line `x = base_x` (touch or cross) and must not be vertical.
    pub fn build(
        pager: &Pager,
        base_x: i64,
        side: Side,
        cfg: PstConfig,
        mut segs: Vec<Segment>,
    ) -> Result<Self> {
        let (seg_cap, fanout) = cfg.caps(pager.page_size());
        if node_bytes(seg_cap, fanout) > pager.page_size() || seg_cap < 1 {
            return Err(PagerError::PageOverflow {
                what: "pst node",
                requested: node_bytes(seg_cap, fanout),
                capacity: pager.page_size(),
            });
        }
        for s in &segs {
            check_line_based(s, base_x)?;
        }
        segs.sort_by(|a, b| side.cmp_base(base_x, a, b));
        let total = segs.len() as u64;
        let root = if segs.is_empty() {
            NULL_PAGE
        } else {
            build_rec(pager, seg_cap, fanout, side, segs)?.0
        };
        Ok(Pst {
            base_x,
            side,
            state: PstState {
                root,
                total,
                tomb_head: NULL_PAGE,
                tomb_count: 0,
            },
            seg_cap,
            fanout,
            cfg,
        })
    }

    /// Reconstruct from serialized state plus owner-supplied context.
    pub fn attach(
        pager: &Pager,
        base_x: i64,
        side: Side,
        cfg: PstConfig,
        state: PstState,
    ) -> Result<Self> {
        let (seg_cap, fanout) = cfg.caps(pager.page_size());
        Ok(Pst {
            base_x,
            side,
            state,
            seg_cap,
            fanout,
            cfg,
        })
    }

    /// The serializable identity.
    pub fn state(&self) -> PstState {
        self.state
    }

    /// Live (non-tombstoned) segment count.
    pub fn len(&self) -> u64 {
        self.state.total - self.state.tomb_count as u64
    }

    /// True when no live segments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base line abscissa.
    pub fn base_x(&self) -> i64 {
        self.base_x
    }

    /// The side of the base line this set lives on.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Report every stored segment whose clipped part intersects the
    /// vertical query `x = qx, lo ≤ y ≤ hi` (`None` = unbounded).
    pub fn query_into(
        &self,
        pager: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        out: &mut Vec<Segment>,
    ) -> Result<QueryStats> {
        self.query_sink(pager, qx, lo, hi, out)
    }

    /// Sink-driven form of [`Pst::query_into`]: every hit streams into
    /// `sink` in traversal order; a `Break` abandons the rest of the
    /// frontier immediately, so no further node pages are read. The PST
    /// must evaluate each segment's reach and ordinate at `qx`
    /// individually, so there is no bulk count shortcut here — the
    /// early exit is the whole saving.
    pub fn query_sink(
        &self,
        pager: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        sink: &mut dyn ReportSink,
    ) -> Result<QueryStats> {
        let mut stats = QueryStats::default();
        if self.state.root == NULL_PAGE || !self.side.on_side(self.base_x, qx) {
            return Ok(stats);
        }
        let tombs = self.load_tombs(pager)?;
        let qkey = self.side.query_key(qx);

        // Frontier entry: (page, lower flanker, upper flanker). Flankers
        // are static separator segments known to reach qx; by
        // non-crossingness they bracket the subtree's ordinates at qx.
        let mut frontier: Vec<(PageId, Option<Segment>, Option<Segment>)> =
            vec![(self.state.root, None, None)];
        while !frontier.is_empty() {
            stats.levels += 1;
            stats.max_frontier = stats.max_frontier.max(frontier.len() as u32);
            let mut next = Vec::new();
            for (page, flo, fhi) in frontier.drain(..) {
                stats.blocks_read += 1;
                let node = read_node(pager, page)?;
                let mut produced = false;
                for s in &node.segments {
                    if self.side.reach_key(s) >= qkey
                        && hits_vertical(s, qx, lo, hi)
                        && !tombs.contains(&s.id)
                    {
                        stats.hits += 1;
                        produced = true;
                        if sink.report(s).is_break() {
                            return Ok(stats);
                        }
                    }
                }
                if !produced {
                    stats.fruitless_nodes += 1;
                }
                // Children: priority prune by router, sandwich prune by
                // the nearest *reaching sibling routers*. The static
                // separators keep subtree base-ranges disjoint forever,
                // so each router stays inside its own subtree's range
                // and flanks its siblings; and a subtree that matters
                // (contains a reaching segment) has a reaching router by
                // the heap property — a usable bound always exists when
                // it is needed.
                for (i, c) in node.children.iter().enumerate() {
                    if self.side.reach_key(&c.router) < qkey {
                        continue;
                    }
                    let child_lo = node.children[..i]
                        .iter()
                        .rev()
                        .map(|c| &c.router)
                        .find(|s| self.side.reach_key(s) >= qkey)
                        .copied()
                        .or(flo);
                    let child_hi = node.children[i + 1..]
                        .iter()
                        .map(|c| &c.router)
                        .find(|s| self.side.reach_key(s) >= qkey)
                        .copied()
                        .or(fhi);
                    // Prune: whole bracket below lo or above hi.
                    if let (Some(h), Some(f)) = (hi, &child_lo) {
                        if y_at_x_cmp(f, qx, h) == Ordering::Greater {
                            continue; // subtree ordinates ≥ flanker > hi
                        }
                    }
                    if let (Some(l), Some(f)) = (lo, &child_hi) {
                        if y_at_x_cmp(f, qx, l) == Ordering::Less {
                            continue; // subtree ordinates ≤ flanker < lo
                        }
                    }
                    next.push((c.page, child_lo, child_hi));
                }
            }
            frontier = next;
        }
        Ok(stats)
    }

    /// One query of a batched walk: the vertical predicate plus an
    /// opaque `tag` the emit callback receives (typically the caller's
    /// sink-slot index).
    pub fn query_batch_sink(
        &self,
        pager: &Pager,
        queries: &[BatchQuery],
        emit: &mut dyn FnMut(usize, &Segment) -> ControlFlow<()>,
    ) -> Result<QueryStats> {
        let mut stats = QueryStats::default();
        if self.state.root == NULL_PAGE {
            return Ok(stats);
        }
        // `done[i]` tracks query i's early exit; off-side queries start
        // retired (they can never match on this side of the base line).
        let mut done: Vec<bool> = queries
            .iter()
            .map(|q| !self.side.on_side(self.base_x, q.qx))
            .collect();
        let mut live = done.iter().filter(|d| !**d).count();
        if live == 0 {
            return Ok(stats);
        }
        let tombs = self.load_tombs(pager)?;

        // Merged frontier: each page appears once per level, carrying
        // every query that still needs it (with that query's flankers).
        struct Entry {
            qi: usize,
            flo: Option<Segment>,
            fhi: Option<Segment>,
        }
        let mut frontier: Vec<(PageId, Vec<Entry>)> = vec![(
            self.state.root,
            (0..queries.len())
                .filter(|&qi| !done[qi])
                .map(|qi| Entry {
                    qi,
                    flo: None,
                    fhi: None,
                })
                .collect(),
        )];
        while !frontier.is_empty() && live > 0 {
            stats.levels += 1;
            stats.max_frontier = stats.max_frontier.max(frontier.len() as u32);
            let mut next: Vec<(PageId, Vec<Entry>)> = Vec::new();
            let mut next_at: std::collections::HashMap<PageId, usize> =
                std::collections::HashMap::new();
            for (page, entries) in frontier.drain(..) {
                if live == 0 {
                    break;
                }
                // Every interested query may have retired since this
                // entry was enqueued — then the page is never read: the
                // whole point of the shared walk is to stop charging
                // pages the moment no sink still wants them.
                if entries.iter().all(|e| done[e.qi]) {
                    continue;
                }
                stats.blocks_read += 1;
                let node = read_node(pager, page)?;
                let mut produced = false;
                for e in &entries {
                    if done[e.qi] {
                        continue;
                    }
                    let q = &queries[e.qi];
                    let qkey = self.side.query_key(q.qx);
                    for s in &node.segments {
                        if self.side.reach_key(s) >= qkey
                            && hits_vertical(s, q.qx, q.lo, q.hi)
                            && !tombs.contains(&s.id)
                        {
                            stats.hits += 1;
                            produced = true;
                            if emit(q.tag, s).is_break() {
                                done[e.qi] = true;
                                live -= 1;
                                break;
                            }
                        }
                    }
                }
                if !produced {
                    stats.fruitless_nodes += 1;
                }
                // Per-query child routing, identical to the sequential
                // walk; children wanted by several queries merge into
                // one next-level entry.
                for e in &entries {
                    if done[e.qi] {
                        continue;
                    }
                    let q = &queries[e.qi];
                    let qkey = self.side.query_key(q.qx);
                    for (i, c) in node.children.iter().enumerate() {
                        if self.side.reach_key(&c.router) < qkey {
                            continue;
                        }
                        let child_lo = node.children[..i]
                            .iter()
                            .rev()
                            .map(|c| &c.router)
                            .find(|s| self.side.reach_key(s) >= qkey)
                            .copied()
                            .or(e.flo);
                        let child_hi = node.children[i + 1..]
                            .iter()
                            .map(|c| &c.router)
                            .find(|s| self.side.reach_key(s) >= qkey)
                            .copied()
                            .or(e.fhi);
                        if let (Some(h), Some(f)) = (q.hi, &child_lo) {
                            if y_at_x_cmp(f, q.qx, h) == Ordering::Greater {
                                continue;
                            }
                        }
                        if let (Some(l), Some(f)) = (q.lo, &child_hi) {
                            if y_at_x_cmp(f, q.qx, l) == Ordering::Less {
                                continue;
                            }
                        }
                        let slot = *next_at.entry(c.page).or_insert_with(|| {
                            next.push((c.page, Vec::new()));
                            next.len() - 1
                        });
                        next[slot].1.push(Entry {
                            qi: e.qi,
                            flo: child_lo,
                            fhi: child_hi,
                        });
                    }
                }
            }
            frontier = next;
        }
        Ok(stats)
    }

    /// The paper's `Find` (Appendix A, Figure 8): locate the
    /// **deepest-leftmost** segment intersected by the query — the
    /// intersected segment smallest in base order — and the block it is
    /// stored in, in `O(log n)` I/Os (frontier ≤ the paper's 2-node
    /// queue per level beyond pruned subtrees).
    pub fn find_leftmost(
        &self,
        pager: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Result<(Option<(Segment, PageId)>, u32)> {
        self.find_extreme(pager, qx, lo, hi, true)
    }

    /// Symmetric `Find`: the intersected segment largest in base order
    /// (the paper's deepest-rightmost; Report walks between the two).
    pub fn find_rightmost(
        &self,
        pager: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Result<(Option<(Segment, PageId)>, u32)> {
        self.find_extreme(pager, qx, lo, hi, false)
    }

    fn find_extreme(
        &self,
        pager: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        leftmost: bool,
    ) -> Result<(Option<(Segment, PageId)>, u32)> {
        if self.state.root == NULL_PAGE || !self.side.on_side(self.base_x, qx) {
            return Ok((None, 0));
        }
        let tombs = self.load_tombs(pager)?;
        let mut visited = 0u32;
        let hit = self.find_rec(
            pager,
            self.state.root,
            qx,
            lo,
            hi,
            None,
            None,
            leftmost,
            &tombs,
            &mut visited,
        )?;
        Ok((hit, visited))
    }

    #[allow(clippy::too_many_arguments)]
    fn find_rec(
        &self,
        pager: &Pager,
        page: PageId,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        flo: Option<Segment>,
        fhi: Option<Segment>,
        leftmost: bool,
        tombs: &HashSet<u64>,
        visited: &mut u32,
    ) -> Result<Option<(Segment, PageId)>> {
        *visited += 1;
        let qkey = self.side.query_key(qx);
        let node = read_node(pager, page)?;
        // Extreme hit among this block's segments.
        let mut best: Option<(Segment, PageId)> = None;
        for s in &node.segments {
            if self.side.reach_key(s) >= qkey
                && hits_vertical(s, qx, lo, hi)
                && !tombs.contains(&s.id)
            {
                let better = match &best {
                    None => true,
                    Some((b, _)) => {
                        let cmp = self.side.cmp_base(self.base_x, s, b);
                        if leftmost {
                            cmp == Ordering::Less
                        } else {
                            cmp == Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some((*s, page));
                }
            }
        }
        // Children in base order (reversed for rightmost): the first
        // subtree that yields a hit dominates all later ones, because
        // the static separators keep subtree ranges disjoint and
        // ordered; the block-local best can still win, so compare.
        let indices: Vec<usize> = if leftmost {
            (0..node.children.len()).collect()
        } else {
            (0..node.children.len()).rev().collect()
        };
        for i in indices {
            let c = &node.children[i];
            if self.side.reach_key(&c.router) < qkey {
                continue;
            }
            let child_lo = node.children[..i]
                .iter()
                .rev()
                .map(|c| &c.router)
                .find(|s| self.side.reach_key(s) >= qkey)
                .copied()
                .or(flo);
            let child_hi = node.children[i + 1..]
                .iter()
                .map(|c| &c.router)
                .find(|s| self.side.reach_key(s) >= qkey)
                .copied()
                .or(fhi);
            if let (Some(h), Some(f)) = (hi, &child_lo) {
                if y_at_x_cmp(f, qx, h) == Ordering::Greater {
                    continue;
                }
            }
            if let (Some(l), Some(f)) = (lo, &child_hi) {
                if y_at_x_cmp(f, qx, l) == Ordering::Less {
                    continue;
                }
            }
            if let Some(child_hit) = self.find_rec(
                pager, c.page, qx, lo, hi, child_lo, child_hi, leftmost, tombs, visited,
            )? {
                let better = match &best {
                    None => true,
                    Some((b, _)) => {
                        let cmp = self.side.cmp_base(self.base_x, &child_hit.0, b);
                        if leftmost {
                            cmp == Ordering::Less
                        } else {
                            cmp == Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some(child_hit);
                }
                break; // later subtrees are entirely on the wrong side
            }
        }
        Ok(best)
    }

    /// Insert a segment spanning the base line. `O(height)` I/Os plus
    /// amortized weight-balance rebuilds.
    pub fn insert(&mut self, pager: &Pager, seg: Segment) -> Result<()> {
        check_line_based(&seg, self.base_x)?;
        self.state.total += 1;
        if self.state.root == NULL_PAGE {
            let page = pager.allocate()?;
            write_node(
                pager,
                page,
                &PstNode {
                    segments: vec![seg],
                    children: vec![],
                    seps: vec![],
                },
            )?;
            self.state.root = page;
            return Ok(());
        }

        // Descend, displacing heap-style; remember the path for the
        // balance check: (page, subtree_size_after_insert).
        let mut path: Vec<(PageId, u64)> = Vec::new();
        let mut page = self.state.root;
        let mut carry = seg;
        loop {
            let mut node = read_node(pager, page)?;
            path.push((page, node.subtree_size() + 1));
            let is_leaf = node.is_leaf();

            if is_leaf && node.segments.len() < self.seg_cap {
                let pos = self.base_insert_pos(&node.segments, &carry);
                node.segments.insert(pos, carry);
                write_node(pager, page, &node)?;
                break;
            }

            // Displace: if the carry out-reaches the stored minimum, it
            // takes that slot and the minimum moves down.
            let min_idx = node
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (self.side.reach_key(s), s.id))
                .map(|(i, _)| i)
                .ok_or(PagerError::Corrupt("pst node with no segments on path"))?;
            let (min_reach, min_id) = (
                self.side.reach_key(&node.segments[min_idx]),
                node.segments[min_idx].id,
            );
            let ck = (self.side.reach_key(&carry), carry.id);
            if ck > (min_reach, min_id) {
                let evicted = node.segments.remove(min_idx);
                let pos = self.base_insert_pos(&node.segments, &carry);
                node.segments.insert(pos, carry);
                carry = evicted;
            }

            if is_leaf {
                // Full leaf: grow a single child; rebuilds restore shape.
                let child = pager.allocate()?;
                write_node(
                    pager,
                    child,
                    &PstNode {
                        segments: vec![carry],
                        children: vec![],
                        seps: vec![],
                    },
                )?;
                node.children.push(ChildEntry {
                    router: carry,
                    page: child,
                    size: 1,
                });
                write_node(pager, page, &node)?;
                break;
            }

            // Route the carry by the static separators.
            let idx = node
                .seps
                .iter()
                .take_while(|s| self.side.cmp_base(self.base_x, s, &carry) == Ordering::Less)
                .count();
            let c = &mut node.children[idx];
            c.size += 1;
            if (self.side.reach_key(&carry), carry.id)
                > (self.side.reach_key(&c.router), c.router.id)
            {
                c.router = carry;
            }
            let next = c.page;
            write_node(pager, page, &node)?;
            page = next;
        }

        self.maybe_rebalance(pager, &path)
    }

    /// Tombstone a stored, live segment id. The caller guarantees the id
    /// is present (the 2LDS owners know exactly where each segment
    /// lives). Triggers a full rebuild at 50% garbage.
    pub fn remove(&mut self, pager: &Pager, id: u64) -> Result<()> {
        self.state.tomb_head = tombs::push(pager, self.state.tomb_head, id)?;
        self.state.tomb_count += 1;
        if self.state.tomb_count as u64 * 2 >= self.state.total.max(1) {
            self.rebuild(pager)?;
        }
        Ok(())
    }

    /// Stream every live segment into `sink` in pre-order traversal
    /// order (**not** base order — callers needing base order sort, as
    /// [`Pst::scan_all`] does). A `Break` stops the walk.
    pub fn scan_sink(&self, pager: &Pager, sink: &mut dyn ReportSink) -> Result<()> {
        let tombs = self.load_tombs(pager)?;
        if self.state.root != NULL_PAGE {
            let _ = scan_rec(pager, self.state.root, &tombs, sink)?;
        }
        Ok(())
    }

    /// All live segments, in base order.
    pub fn scan_all(&self, pager: &Pager) -> Result<Vec<Segment>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.scan_sink(pager, &mut out)?;
        out.sort_by(|a, b| self.side.cmp_base(self.base_x, a, b));
        Ok(out)
    }

    /// Free every page.
    pub fn destroy(self, pager: &Pager) -> Result<()> {
        if self.state.root != NULL_PAGE {
            destroy_rec(pager, self.state.root)?;
        }
        tombs::destroy(pager, self.state.tomb_head)
    }

    /// Deep validation of every invariant (tests).
    pub fn validate(&self, pager: &Pager) -> Result<()> {
        if self.state.root == NULL_PAGE {
            if self.state.total != 0 {
                return Err(PagerError::Corrupt("pst empty root with nonzero total"));
            }
            return Ok(());
        }
        let mut count = 0u64;
        let top = self.validate_rec(pager, self.state.root, None, None, &mut count)?;
        let _ = top;
        if count != self.state.total {
            return Err(PagerError::Corrupt("pst total mismatch"));
        }
        Ok(())
    }

    // ---- internals ----------------------------------------------------

    fn base_insert_pos(&self, segs: &[Segment], s: &Segment) -> usize {
        segs.iter()
            .take_while(|t| self.side.cmp_base(self.base_x, t, s) == Ordering::Less)
            .count()
    }

    fn load_tombs(&self, pager: &Pager) -> Result<HashSet<u64>> {
        if self.state.tomb_count == 0 {
            return Ok(HashSet::new());
        }
        Ok(tombs::load(pager, self.state.tomb_head)?
            .into_iter()
            .collect())
    }

    /// Rebuild the subtree rooted at the deepest unbalanced node of the
    /// path (BB[α] by partial rebuilding; α = 3/4).
    fn maybe_rebalance(&mut self, pager: &Pager, path: &[(PageId, u64)]) -> Result<()> {
        // Find the highest node whose some child exceeds α of its weight.
        for &(page, size) in path {
            if size < (self.seg_cap as u64) * 4 {
                break; // small subtrees cannot be meaningfully unbalanced
            }
            let node = read_node(pager, page)?;
            // A child dominating its parent's weight includes the
            // degenerate single-child chains grown by leaf overflow.
            let threshold = size * 3 / 4;
            let lopsided = node.children.iter().any(|c| c.size > threshold);
            if lopsided {
                self.rebuild_subtree(pager, page)?;
                return Ok(());
            }
        }
        Ok(())
    }

    fn rebuild_subtree(&self, pager: &Pager, page: PageId) -> Result<()> {
        let mut segs = Vec::new();
        let _ = scan_rec(pager, page, &HashSet::new(), &mut segs)?;
        // Free descendants; rebuild into the same root page so the parent
        // pointer and parent-recorded size stay valid.
        let node = read_node(pager, page)?;
        for c in &node.children {
            destroy_rec(pager, c.page)?;
        }
        segs.sort_by(|a, b| self.side.cmp_base(self.base_x, a, b));
        build_rec_at(pager, self.seg_cap, self.fanout, self.side, segs, page)?;
        Ok(())
    }

    /// Full rebuild, dropping tombstones.
    fn rebuild(&mut self, pager: &Pager) -> Result<()> {
        let live = self.scan_all(pager)?;
        if self.state.root != NULL_PAGE {
            destroy_rec(pager, self.state.root)?;
        }
        tombs::destroy(pager, self.state.tomb_head)?;
        let rebuilt = Pst::build(pager, self.base_x, self.side, self.cfg, live)?;
        self.state = rebuilt.state;
        Ok(())
    }

    /// Returns the subtree's max-reach segment; checks everything else.
    fn validate_rec(
        &self,
        pager: &Pager,
        page: PageId,
        lo: Option<&Segment>,
        hi: Option<&Segment>,
        count: &mut u64,
    ) -> Result<Segment> {
        let node = read_node(pager, page)?;
        if node.segments.is_empty() {
            return Err(PagerError::Corrupt("pst node without segments"));
        }
        if node.segments.len() > self.seg_cap || node.children.len() > self.fanout {
            return Err(PagerError::Corrupt("pst node over capacity"));
        }
        if !node.is_leaf() && node.segments.len() < self.seg_cap {
            return Err(PagerError::Corrupt("pst internal node not full"));
        }
        *count += node.segments.len() as u64;
        // A separator is a copy of the first segment of the subtree to
        // its right, so the lower bound is inclusive.
        let in_range = |s: &Segment| {
            lo.is_none_or(|l| self.side.cmp_base(self.base_x, l, s) != Ordering::Greater)
                && hi.is_none_or(|h| self.side.cmp_base(self.base_x, s, h) == Ordering::Less)
        };
        for s in &node.segments {
            check_line_based(s, self.base_x)?;
            if !in_range(s) {
                return Err(PagerError::Corrupt("pst segment outside separator range"));
            }
        }
        for w in node.segments.windows(2) {
            if self.side.cmp_base(self.base_x, &w[0], &w[1]) != Ordering::Less {
                return Err(PagerError::Corrupt("pst segments out of base order"));
            }
        }
        for w in node.seps.windows(2) {
            if self.side.cmp_base(self.base_x, &w[0], &w[1]) != Ordering::Less {
                return Err(PagerError::Corrupt("pst separators out of order"));
            }
        }
        let min_reach = node
            .segments
            .iter()
            .map(|s| (self.side.reach_key(s), s.id))
            .min()
            .ok_or(PagerError::Corrupt("pst empty node in validate"))?;
        for (i, c) in node.children.iter().enumerate() {
            if (self.side.reach_key(&c.router), c.router.id) > min_reach {
                return Err(PagerError::Corrupt("pst child out-reaches parent minimum"));
            }
            let clo = if i == 0 { lo } else { Some(&node.seps[i - 1]) };
            let chi = if i + 1 == node.children.len() {
                hi
            } else {
                Some(&node.seps[i])
            };
            let child_top = self.validate_rec(pager, c.page, clo, chi, count)?;
            if (self.side.reach_key(&child_top), child_top.id)
                != (self.side.reach_key(&c.router), c.router.id)
            {
                return Err(PagerError::Corrupt("pst router is not the child maximum"));
            }
            let sub = read_node(pager, c.page)?.subtree_size();
            if sub != c.size {
                return Err(PagerError::Corrupt("pst child size stale"));
            }
        }
        node.segments
            .iter()
            .max_by_key(|s| (self.side.reach_key(s), s.id))
            .copied()
            .ok_or(PagerError::Corrupt("pst empty node in validate"))
    }
}

fn check_line_based(s: &Segment, base_x: i64) -> Result<()> {
    if s.is_vertical() {
        return Err(PagerError::Corrupt(
            "vertical segment in PST (belongs to C(v))",
        ));
    }
    if !s.spans_x(base_x) {
        return Err(PagerError::Corrupt("segment does not span the base line"));
    }
    Ok(())
}

fn read_node(pager: &Pager, id: PageId) -> Result<PstNode> {
    segdb_obs::trace::emit(segdb_obs::trace::EventKind::PstNodeVisit, u64::from(id), 0);
    pager.with_page(id, PstNode::decode)?
}

fn write_node(pager: &Pager, id: PageId, node: &PstNode) -> Result<()> {
    pager.overwrite_page(id, |buf| node.encode(buf))?
}

/// Build a subtree from base-ordered segments; returns
/// `(page, top segment, size)`.
fn build_rec(
    pager: &Pager,
    seg_cap: usize,
    fanout: usize,
    side: Side,
    segs: Vec<Segment>,
) -> Result<(PageId, Segment, u64)> {
    let page = pager.allocate()?;
    let top = build_rec_at(pager, seg_cap, fanout, side, segs, page)?;
    Ok((page, top.0, top.1))
}

/// Build into a fixed page id; returns `(top segment, size)`.
fn build_rec_at(
    pager: &Pager,
    seg_cap: usize,
    fanout: usize,
    side: Side,
    segs: Vec<Segment>,
    page: PageId,
) -> Result<(Segment, u64)> {
    debug_assert!(!segs.is_empty());
    let size = segs.len() as u64;
    if segs.len() <= seg_cap {
        let top = segs
            .iter()
            .max_by_key(|s| (side.reach_key(s), s.id))
            .copied()
            .ok_or(PagerError::Corrupt("pst build chunk is empty"))?;
        write_node(
            pager,
            page,
            &PstNode {
                segments: segs,
                children: vec![],
                seps: vec![],
            },
        )?;
        return Ok((top, size));
    }
    // Select the seg_cap farthest-reaching segments (ties by id).
    let mut order: Vec<usize> = (0..segs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((side.reach_key(&segs[i]), segs[i].id)));
    let mut selected = vec![false; segs.len()];
    for &i in order.iter().take(seg_cap) {
        selected[i] = true;
    }
    let mut stored = Vec::with_capacity(seg_cap);
    let mut rest = Vec::with_capacity(segs.len() - seg_cap);
    for (i, s) in segs.into_iter().enumerate() {
        if selected[i] {
            stored.push(s); // base order preserved
        } else {
            rest.push(s);
        }
    }
    let top = stored
        .iter()
        .max_by_key(|s| (side.reach_key(s), s.id))
        .copied()
        .ok_or(PagerError::Corrupt("pst build chunk is empty"))?;

    // Split the remainder into ≤ fanout equal base-order chunks, but
    // never more chunks than needed to fill nodes (avoids sprays of
    // near-empty leaves at the recursion bottom).
    let m = fanout.min(rest.len().div_ceil(seg_cap)).max(1);
    let chunk = rest.len().div_ceil(m);
    let mut children = Vec::with_capacity(m);
    let mut seps = Vec::with_capacity(m.saturating_sub(1));
    let mut iter = rest.into_iter().peekable();
    let mut first = true;
    while iter.peek().is_some() {
        let part: Vec<Segment> = iter.by_ref().take(chunk).collect();
        if !first {
            seps.push(part[0]);
        }
        first = false;
        let (cpage, ctop, csize) = build_rec(pager, seg_cap, fanout, side, part)?;
        children.push(ChildEntry {
            router: ctop,
            page: cpage,
            size: csize,
        });
    }
    write_node(
        pager,
        page,
        &PstNode {
            segments: stored,
            children,
            seps,
        },
    )?;
    Ok((top, size))
}

/// Pre-order walk of a subtree, streaming every non-tombstoned segment
/// into `sink`. Shared by [`Pst::scan_sink`] / [`Pst::scan_all`] and the
/// rebuild paths (which pass an empty tombstone set to keep everything).
fn scan_rec(
    pager: &Pager,
    page: PageId,
    tombs: &HashSet<u64>,
    sink: &mut dyn ReportSink,
) -> Result<ControlFlow<()>> {
    let node = read_node(pager, page)?;
    for s in node.segments.iter().filter(|s| !tombs.contains(&s.id)) {
        if sink.report(s).is_break() {
            return Ok(ControlFlow::Break(()));
        }
    }
    for c in &node.children {
        if scan_rec(pager, c.page, tombs, sink)?.is_break() {
            return Ok(ControlFlow::Break(()));
        }
    }
    Ok(ControlFlow::Continue(()))
}

fn destroy_rec(pager: &Pager, page: PageId) -> Result<()> {
    let node = read_node(pager, page)?;
    for c in &node.children {
        destroy_rec(pager, c.page)?;
    }
    pager.free(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segdb_geom::VerticalQuery;
    use segdb_pager::PagerConfig;

    fn pager(page: usize) -> Pager {
        Pager::new(PagerConfig {
            page_size: page,
            cache_pages: 0,
        })
    }

    /// Right-side fan rooted on x = 0.
    fn fan(n: usize) -> Vec<Segment> {
        segdb_geom::gen::fan(n, 16, 1 << 14, 42)
    }

    use segdb_core::testutil::oracle_vertical as oracle;

    fn run(
        pst: &Pst,
        p: &Pager,
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> (Vec<u64>, QueryStats) {
        let mut out = Vec::new();
        let st = pst.query_into(p, qx, lo, hi, &mut out).unwrap();
        let mut ids: Vec<u64> = out.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        (ids, st)
    }

    #[test]
    fn build_and_query_matches_oracle_both_configs() {
        for cfg in [PstConfig::binary(), PstConfig::packed()] {
            let p = pager(512);
            let set = fan(500);
            let pst = Pst::build(&p, 0, Side::Right, cfg, set.clone()).unwrap();
            pst.validate(&p).unwrap();
            assert_eq!(pst.len(), 500);
            for (qx, lo, hi) in [
                (0, Some(0), Some(100)),
                (5, Some(0), Some(8000)),
                (100, None, None),
                (1 << 13, Some(-50), Some(4000)),
                (1 << 14, None, Some(0)),
                (3, Some(7), Some(7)),
            ] {
                let (ids, _) = run(&pst, &p, qx, lo, hi);
                assert_eq!(ids, oracle(&set, qx, lo, hi), "q=({qx},{lo:?},{hi:?})");
            }
            // Off-side query is empty.
            let (ids, _) = run(&pst, &p, -1, None, None);
            assert!(ids.is_empty());
        }
    }

    #[test]
    fn left_side_mirror() {
        let p = pager(512);
        // Mirror the fan to the left of x = 0.
        let set: Vec<Segment> = fan(300)
            .into_iter()
            .map(|s| Segment::new(s.id, (-s.a.x, s.a.y), (-s.b.x, s.b.y)).unwrap())
            .collect();
        let pst = Pst::build(&p, 0, Side::Left, PstConfig::packed(), set.clone()).unwrap();
        pst.validate(&p).unwrap();
        for (qx, lo, hi) in [
            (0, Some(0), Some(500)),
            (-37, Some(100), Some(2000)),
            (-(1 << 13), None, None),
        ] {
            let (ids, _) = run(&pst, &p, qx, lo, hi);
            assert_eq!(ids, oracle(&set, qx, lo, hi), "q=({qx},{lo:?},{hi:?})");
        }
        let (ids, _) = run(&pst, &p, 1, None, None);
        assert!(ids.is_empty(), "off-side");
    }

    #[test]
    fn rejects_bad_segments() {
        let p = pager(512);
        let vertical = Segment::new(1, (0, 0), (0, 5)).unwrap();
        assert!(Pst::build(&p, 0, Side::Right, PstConfig::packed(), vec![vertical]).is_err());
        let disjoint = Segment::new(2, (5, 0), (9, 5)).unwrap();
        assert!(Pst::build(&p, 0, Side::Right, PstConfig::packed(), vec![disjoint]).is_err());
    }

    #[test]
    fn insert_matches_bulk() {
        for cfg in [PstConfig::binary(), PstConfig::packed()] {
            let p = pager(512);
            let set = fan(400);
            let mut pst = Pst::build(&p, 0, Side::Right, cfg, vec![]).unwrap();
            for s in &set {
                pst.insert(&p, *s).unwrap();
            }
            pst.validate(&p).unwrap();
            for (qx, lo, hi) in [
                (0, Some(0), Some(1000)),
                (64, Some(100), Some(5000)),
                (1 << 12, None, None),
            ] {
                let (ids, _) = run(&pst, &p, qx, lo, hi);
                assert_eq!(
                    ids,
                    oracle(&set, qx, lo, hi),
                    "cfg={cfg:?} q=({qx},{lo:?},{hi:?})"
                );
            }
            let mut scanned: Vec<u64> = pst.scan_all(&p).unwrap().iter().map(|s| s.id).collect();
            scanned.sort_unstable();
            assert_eq!(scanned, (0..400u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleaved_insert_query() {
        let p = pager(256);
        let set = fan(300);
        let mut pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), vec![]).unwrap();
        for (i, s) in set.iter().enumerate() {
            pst.insert(&p, *s).unwrap();
            if i % 37 == 0 {
                let sofar = &set[..=i];
                let (ids, _) = run(&pst, &p, 8, Some(0), Some(10_000));
                assert_eq!(ids, oracle(sofar, 8, Some(0), Some(10_000)), "after {i}");
            }
        }
        pst.validate(&p).unwrap();
    }

    #[test]
    fn remove_tombstones_and_rebuild() {
        let p = pager(512);
        let set = fan(200);
        let mut pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        // Remove every id ≥ 100: triggers the 50% rebuild.
        for id in 100..200u64 {
            pst.remove(&p, id).unwrap();
        }
        pst.validate(&p).unwrap();
        assert_eq!(pst.len(), 100);
        assert_eq!(pst.state().tomb_count, 0, "rebuild dropped tombstones");
        let survivors = &set[..100];
        let (ids, _) = run(&pst, &p, 4, None, None);
        assert_eq!(ids, oracle(survivors, 4, None, None));
    }

    #[test]
    fn packed_height_is_much_smaller() {
        let p1 = pager(4096);
        let p2 = pager(4096);
        let set = fan(20_000);
        let bin = Pst::build(&p1, 0, Side::Right, PstConfig::binary(), set.clone()).unwrap();
        let pack = Pst::build(&p2, 0, Side::Right, PstConfig::packed(), set).unwrap();
        let (_, sb) = {
            let mut out = Vec::new();
            let st = bin
                .query_into(&p1, 3, Some(0), Some(100), &mut out)
                .unwrap();
            (out, st)
        };
        let (_, sp) = {
            let mut out = Vec::new();
            let st = pack
                .query_into(&p2, 3, Some(0), Some(100), &mut out)
                .unwrap();
            (out, st)
        };
        assert!(
            sp.levels * 2 < sb.levels,
            "packed {} vs binary {} levels",
            sp.levels,
            sb.levels
        );
    }

    #[test]
    fn frontier_stays_narrow() {
        // Lemma 1's measurable form: boundary frontier ≤ small constant
        // beyond output-charged nodes.
        let p = pager(512);
        let set = fan(5000);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::binary(), set).unwrap();
        // Thin query: tiny window, far from the base line.
        let mut out = Vec::new();
        let st = pst
            .query_into(&p, 1 << 12, Some(3000), Some(3010), &mut out)
            .unwrap();
        assert!(
            st.fruitless_nodes <= 4 * st.levels + 4,
            "fruitless={} levels={}",
            st.fruitless_nodes,
            st.levels
        );
    }

    #[test]
    fn space_is_linear() {
        let p = pager(512);
        let set = fan(10_000);
        let n_upper = set.len();
        let before = p.live_pages();
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set).unwrap();
        let used = p.live_pages() - before;
        let (cap, _) = PstConfig::packed().caps(512);
        assert!(
            used <= 4 * n_upper / cap + 8,
            "used {used} pages for n/B = {}",
            n_upper / cap
        );
        pst.destroy(&p).unwrap();
        assert_eq!(p.live_pages(), before);
    }

    #[test]
    fn state_roundtrip() {
        let p = pager(512);
        let set = fan(100);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        let st = pst.state();
        let mut buf = vec![0u8; PstState::ENCODED_SIZE];
        st.encode(&mut ByteWriter::new(&mut buf)).unwrap();
        let st2 = PstState::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(st, st2);
        let pst2 = Pst::attach(&p, 0, Side::Right, PstConfig::packed(), st2).unwrap();
        let (ids, _) = run(&pst2, &p, 2, None, None);
        assert_eq!(ids, oracle(&set, 2, None, None));
    }

    #[test]
    fn line_and_ray_queries() {
        let p = pager(512);
        let set = fan(200);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        let q = VerticalQuery::Line { x: 10 };
        let (ids, _) = run(&pst, &p, q.x(), q.lo(), q.hi());
        assert_eq!(ids, oracle(&set, 10, None, None));
        let q = VerticalQuery::RayUp { x: 10, y0: 1000 };
        let (ids, _) = run(&pst, &p, q.x(), q.lo(), q.hi());
        assert_eq!(ids, oracle(&set, 10, Some(1000), None));
    }

    #[test]
    fn empty_tree() {
        let p = pager(512);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), vec![]).unwrap();
        pst.validate(&p).unwrap();
        assert!(pst.is_empty());
        let (ids, st) = run(&pst, &p, 0, None, None);
        assert!(ids.is_empty());
        assert_eq!(st.blocks_read, 0);
    }

    #[test]
    fn batched_walk_matches_sequential_and_shares_pages() {
        for cfg in [PstConfig::binary(), PstConfig::packed()] {
            let p = pager(512);
            let set = fan(1200);
            let pst = Pst::build(&p, 0, Side::Right, cfg, set).unwrap();
            let windows: Vec<(i64, Option<i64>, Option<i64>)> = (0..8)
                .map(|i| (3 + i * 5, Some(i * 900), Some(i * 900 + 2500)))
                .collect();
            // Sequential: one walk per query.
            let mut seq: Vec<Vec<u64>> = Vec::new();
            let mut seq_blocks = 0u32;
            for &(qx, lo, hi) in &windows {
                let mut out = Vec::new();
                let st = pst.query_into(&p, qx, lo, hi, &mut out).unwrap();
                seq_blocks += st.blocks_read;
                let mut ids: Vec<u64> = out.iter().map(|s| s.id).collect();
                ids.sort_unstable();
                seq.push(ids);
            }
            // Batched: one walk for all, plus an off-side query that
            // must stay empty without disturbing the batch.
            let mut batch: Vec<BatchQuery> = windows
                .iter()
                .enumerate()
                .map(|(tag, &(qx, lo, hi))| BatchQuery { qx, lo, hi, tag })
                .collect();
            batch.push(BatchQuery {
                qx: -5,
                lo: None,
                hi: None,
                tag: windows.len(),
            });
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); windows.len() + 1];
            let st = pst
                .query_batch_sink(&p, &batch, &mut |tag, s| {
                    got[tag].push(s.id);
                    ControlFlow::Continue(())
                })
                .unwrap();
            for ids in &mut got {
                ids.sort_unstable();
            }
            assert!(got[windows.len()].is_empty(), "off-side query is empty");
            assert_eq!(&got[..windows.len()], &seq[..], "cfg={cfg:?}");
            assert!(
                st.blocks_read < seq_blocks,
                "cfg={cfg:?}: shared walk read {} blocks, sequential {}",
                st.blocks_read,
                seq_blocks
            );
        }
    }

    #[test]
    fn batched_walk_early_exit_retires_one_query_only() {
        let p = pager(512);
        let set = fan(800);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        let full = oracle(&set, 4, None, None);
        let mut collect: Vec<u64> = Vec::new();
        let mut first: Vec<u64> = Vec::new();
        let batch = [
            BatchQuery {
                qx: 4,
                lo: None,
                hi: None,
                tag: 0,
            },
            BatchQuery {
                qx: 4,
                lo: None,
                hi: None,
                tag: 1,
            },
        ];
        pst.query_batch_sink(&p, &batch, &mut |tag, s| {
            if tag == 0 {
                collect.push(s.id);
                ControlFlow::Continue(())
            } else {
                first.push(s.id);
                ControlFlow::Break(())
            }
        })
        .unwrap();
        collect.sort_unstable();
        assert_eq!(collect, full, "batchmate unaffected by the early exit");
        assert_eq!(first.len(), 1, "limit-style query stopped after one hit");
    }
}

#[cfg(test)]
mod find_tests {
    use super::*;
    use segdb_geom::predicates::hits_vertical as hv;
    use segdb_pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new(PagerConfig {
            page_size: 512,
            cache_pages: 0,
        })
    }

    fn fan(n: usize) -> Vec<Segment> {
        segdb_geom::gen::fan(n, 16, 1 << 14, 4242)
    }

    fn oracle_extreme(
        pst: &Pst,
        set: &[Segment],
        qx: i64,
        lo: Option<i64>,
        hi: Option<i64>,
        leftmost: bool,
    ) -> Option<Segment> {
        let mut hits: Vec<Segment> = set.iter().filter(|s| hv(s, qx, lo, hi)).copied().collect();
        hits.sort_by(|a, b| pst.side().cmp_base(pst.base_x(), a, b));
        if leftmost {
            hits.first().copied()
        } else {
            hits.last().copied()
        }
    }

    #[test]
    fn find_matches_oracle_both_directions_and_configs() {
        for cfg in [PstConfig::binary(), PstConfig::packed()] {
            let p = pager();
            let set = fan(800);
            let pst = Pst::build(&p, 0, Side::Right, cfg, set.clone()).unwrap();
            for (qx, lo, hi) in [
                (3i64, Some(0i64), Some(4000i64)),
                (100, Some(5000), Some(9000)),
                (1 << 13, None, None),
                (0, Some(12_000), Some(12_100)),
                (5, Some(-100), Some(-1)), // empty window below everything
            ] {
                for leftmost in [true, false] {
                    let (got, visited) = if leftmost {
                        pst.find_leftmost(&p, qx, lo, hi).unwrap()
                    } else {
                        pst.find_rightmost(&p, qx, lo, hi).unwrap()
                    };
                    let want = oracle_extreme(&pst, &set, qx, lo, hi, leftmost);
                    assert_eq!(
                        got.map(|(s, _)| s),
                        want,
                        "{cfg:?} q=({qx},{lo:?},{hi:?}) left={leftmost}"
                    );
                    // Find must stay near O(log n), far below a full walk.
                    assert!(visited as usize <= 120, "visited {visited}");
                }
            }
        }
    }

    #[test]
    fn find_returns_the_block_containing_the_segment() {
        let p = pager();
        let set = fan(500);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::binary(), set).unwrap();
        let (hit, _) = pst.find_leftmost(&p, 7, Some(0), Some(2000)).unwrap();
        let (seg, block) = hit.expect("nonempty window");
        let node = read_node(&p, block).unwrap();
        assert!(
            node.segments.contains(&seg),
            "block really stores the found segment"
        );
    }

    #[test]
    fn find_ignores_tombstones() {
        let p = pager();
        let set = fan(200);
        let mut pst = Pst::build(&p, 0, Side::Right, PstConfig::packed(), set.clone()).unwrap();
        let (first, _) = pst.find_leftmost(&p, 2, None, None).unwrap();
        let first = first.unwrap().0;
        pst.remove(&p, first.id).unwrap();
        let (second, _) = pst.find_leftmost(&p, 2, None, None).unwrap();
        assert_ne!(second.map(|(s, _)| s.id), Some(first.id));
    }

    #[test]
    fn find_visits_logarithmically_many_blocks() {
        let p = Pager::new(PagerConfig {
            page_size: 1024,
            cache_pages: 0,
        });
        let set = fan(20_000);
        let pst = Pst::build(&p, 0, Side::Right, PstConfig::binary(), set).unwrap();
        // Thin windows anywhere in the data.
        let mut worst = 0u32;
        for i in 0..50 {
            let lo = i * 6_000;
            let (_, visited) = pst.find_leftmost(&p, 64, Some(lo), Some(lo + 32)).unwrap();
            worst = worst.max(visited);
        }
        // height ≈ log2(20000/21) ≈ 10; allow the ~2-wide queue + slack.
        assert!(worst <= 60, "worst visited {worst}");
    }
}
