//! Tombstone chains: lazily-deleted segment ids.
//!
//! Deletion from a priority search tree is awkward to do in place (the
//! displaced-heap shape has no stable search path once insertions have
//! run), so deletions append the victim's id to an external page chain;
//! queries filter against the loaded set and the owner rebuilds the tree
//! when tombstones reach half the live count — the standard lazy-deletion
//! amortization, compatible with the paper's amortized update bounds.

use segdb_pager::{ByteReader, ByteWriter, PageId, Pager, Result, NULL_PAGE};

/// Page layout: `[count: u16][next: u32][ids: count × u64]`.
const HEADER: usize = 6;

fn page_cap(page_size: usize) -> usize {
    (page_size - HEADER) / 8
}

/// Append `id` to the chain headed at `head`, returning the new head.
pub fn push(pager: &Pager, head: PageId, id: u64) -> Result<PageId> {
    if head != NULL_PAGE {
        // Try the head page first.
        let appended = pager.with_page_mut(head, |buf| {
            let cap = page_cap(buf.len());
            let mut r = ByteReader::new(buf);
            let count = r.u16()? as usize;
            if count >= cap {
                return Ok(false);
            }
            let mut w = ByteWriter::new(buf);
            w.u16(count as u16 + 1)?;
            w.skip(4 + count * 8)?; // next pointer + existing ids
            w.u64(id)?;
            Ok(true)
        })??;
        if appended {
            return Ok(head);
        }
    }
    let page = pager.allocate()?;
    pager.overwrite_page(page, |buf| {
        let mut w = ByteWriter::new(buf);
        w.u16(1)?;
        w.u32(head)?;
        w.u64(id)
    })??;
    Ok(page)
}

/// Load every tombstoned id in the chain.
pub fn load(pager: &Pager, head: PageId) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut page = head;
    while page != NULL_PAGE {
        page = pager.with_page(page, |buf| {
            let mut r = ByteReader::new(buf);
            let count = r.u16()? as usize;
            let next = r.u32()?;
            for _ in 0..count {
                out.push(r.u64()?);
            }
            Ok::<PageId, segdb_pager::PagerError>(next)
        })??;
    }
    Ok(out)
}

/// Free the whole chain.
pub fn destroy(pager: &Pager, head: PageId) -> Result<()> {
    let mut page = head;
    while page != NULL_PAGE {
        let next = pager.with_page(page, |buf| {
            let mut r = ByteReader::new(buf);
            r.u16()?;
            r.u32()
        })??;
        pager.free(page)?;
        page = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use segdb_pager::PagerConfig;

    #[test]
    fn push_load_roundtrip_across_pages() {
        let p = Pager::new(PagerConfig {
            page_size: 64,
            cache_pages: 0,
        });
        // cap = (64-6)/8 = 7 per page; push 20 → 3 pages.
        let mut head = NULL_PAGE;
        for id in 0..20u64 {
            head = push(&p, head, id).unwrap();
        }
        let mut ids = load(&p, head).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        let live = p.live_pages();
        assert_eq!(live, 3);
        destroy(&p, head).unwrap();
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn empty_chain() {
        let p = Pager::new(PagerConfig {
            page_size: 64,
            cache_pages: 0,
        });
        assert!(load(&p, NULL_PAGE).unwrap().is_empty());
        destroy(&p, NULL_PAGE).unwrap();
    }

    #[test]
    fn skip_to_preserves_existing_bytes() {
        // Appending to a half-full page must not clobber earlier ids.
        let p = Pager::new(PagerConfig {
            page_size: 64,
            cache_pages: 0,
        });
        let head = push(&p, NULL_PAGE, 111).unwrap();
        let head2 = push(&p, head, 222).unwrap();
        assert_eq!(head, head2);
        let ids = load(&p, head2).unwrap();
        assert_eq!(ids, vec![111, 222]);
    }
}
