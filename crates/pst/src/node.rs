//! PST node layout.
//!
//! ```text
//! [count: u16][nchildren: u16]
//! [segments: count × 40]                     (base order)
//! [children: nchildren × (router: 40, page: u32, size: u64)]
//! [seps: (nchildren − 1) × 40]
//! ```
//!
//! * `segments` — the subtree's `count` farthest-reaching segments.
//! * `router` of child `i` — copy of subtree `i`'s farthest-reaching
//!   segment (the paper's `v.left` / `v.right`, generalized to fanout
//!   `F`); updated when insertions push a new maximum into the subtree —
//!   it drives the *priority prune*.
//! * `seps` — **static separator witnesses**: `sep[i]` is a copy of the
//!   base-order-smallest segment of subtree `i+1` *at build time*.
//!   Invariant, preserved forever by routing insertions with the same
//!   comparisons: `subtree i < sep[i] ≤ subtree i+1` in base order. They
//!   drive the *sandwich prune*; being static, their reach keys never
//!   drift, which is what keeps the prune sound under insertions (see
//!   crate docs).
//!
//! A node with `nchildren = 0` is a leaf.

use segdb_geom::{Point, Segment};
use segdb_pager::{ByteReader, ByteWriter, PageId, PagerError, Result};

/// Encoded size of one segment record.
pub const SEG_BYTES: usize = 8 + 4 * 8;
/// Encoded size of one child entry (router + page + size).
pub const CHILD_BYTES: usize = SEG_BYTES + 4 + 8;
/// Node header bytes.
pub const HEADER_BYTES: usize = 4;

/// Serialize a segment into a node page.
pub fn encode_segment(s: &Segment, w: &mut ByteWriter<'_>) -> Result<()> {
    w.u64(s.id)?;
    w.i64(s.a.x)?;
    w.i64(s.a.y)?;
    w.i64(s.b.x)?;
    w.i64(s.b.y)
}

/// Deserialize a segment from a node page.
pub fn decode_segment(r: &mut ByteReader<'_>) -> Result<Segment> {
    let id = r.u64()?;
    let a = Point::new(r.i64()?, r.i64()?);
    let b = Point::new(r.i64()?, r.i64()?);
    Segment::new(id, a, b).map_err(|_| PagerError::Corrupt("invalid segment in PST node"))
}

/// One child edge of a PST node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildEntry {
    /// Copy of the child subtree's farthest-reaching segment.
    pub router: Segment,
    /// Child page.
    pub page: PageId,
    /// Number of segments stored in the child's subtree.
    pub size: u64,
}

/// Decoded PST node.
#[derive(Debug, Clone, PartialEq)]
pub struct PstNode {
    /// The subtree's `count` farthest-reaching segments, in base order.
    pub segments: Vec<Segment>,
    /// Children, in base-range order.
    pub children: Vec<ChildEntry>,
    /// Static separator witnesses (`children.len().saturating_sub(1)`).
    pub seps: Vec<Segment>,
}

impl PstNode {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total segments in the subtree rooted here.
    pub fn subtree_size(&self) -> u64 {
        self.segments.len() as u64 + self.children.iter().map(|c| c.size).sum::<u64>()
    }

    /// Serialize into a zeroed page image.
    pub fn encode(&self, buf: &mut [u8]) -> Result<()> {
        if !self.children.is_empty() && self.seps.len() != self.children.len() - 1 {
            return Err(PagerError::Corrupt("pst sep/child arity"));
        }
        let mut w = ByteWriter::new(buf);
        w.u16(self.segments.len() as u16)?;
        w.u16(self.children.len() as u16)?;
        for s in &self.segments {
            encode_segment(s, &mut w)?;
        }
        for c in &self.children {
            encode_segment(&c.router, &mut w)?;
            w.u32(c.page)?;
            w.u64(c.size)?;
        }
        for s in &self.seps {
            encode_segment(s, &mut w)?;
        }
        Ok(())
    }

    /// Deserialize from a page image.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(buf);
        let count = r.u16()? as usize;
        let nchildren = r.u16()? as usize;
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            segments.push(decode_segment(&mut r)?);
        }
        let mut children = Vec::with_capacity(nchildren);
        for _ in 0..nchildren {
            let router = decode_segment(&mut r)?;
            let page = r.u32()?;
            let size = r.u64()?;
            children.push(ChildEntry { router, page, size });
        }
        let nseps = nchildren.saturating_sub(1);
        let mut seps = Vec::with_capacity(nseps);
        for _ in 0..nseps {
            seps.push(decode_segment(&mut r)?);
        }
        Ok(PstNode {
            segments,
            children,
            seps,
        })
    }
}

/// Default capacities for a page size: `(seg_cap, fanout_max)`, splitting
/// the page budget evenly between stored segments and routing machinery
/// (each child beyond the first costs a child entry plus a separator).
pub fn default_caps(page_size: usize) -> (usize, usize) {
    let budget = page_size.saturating_sub(HEADER_BYTES);
    let fanout = (budget / (2 * (CHILD_BYTES + SEG_BYTES))).max(2);
    let routing = fanout * CHILD_BYTES + (fanout - 1) * SEG_BYTES;
    let seg_cap = budget.saturating_sub(routing) / SEG_BYTES;
    (seg_cap.max(1), fanout)
}

/// Segment capacity when the fanout is fixed (2 = the paper's binary
/// tree): all remaining space stores segments.
pub fn seg_cap_for_fanout(page_size: usize, fanout: usize) -> usize {
    let routing = fanout * CHILD_BYTES + fanout.saturating_sub(1) * SEG_BYTES;
    let budget = page_size
        .saturating_sub(HEADER_BYTES)
        .saturating_sub(routing);
    (budget / SEG_BYTES).max(1)
}

/// Bytes needed by a node with the given shape (for capacity checks).
pub fn node_bytes(seg_count: usize, nchildren: usize) -> usize {
    HEADER_BYTES
        + seg_count * SEG_BYTES
        + nchildren * CHILD_BYTES
        + nchildren.saturating_sub(1) * SEG_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64) -> Segment {
        Segment::new(id, (0, id as i64), (10 + id as i64, id as i64)).unwrap()
    }

    #[test]
    fn roundtrip() {
        let n = PstNode {
            segments: vec![seg(1), seg(2), seg(3)],
            children: vec![
                ChildEntry {
                    router: seg(4),
                    page: 9,
                    size: 17,
                },
                ChildEntry {
                    router: seg(5),
                    page: 11,
                    size: 20,
                },
            ],
            seps: vec![seg(6)],
        };
        let mut buf = vec![0u8; 512];
        n.encode(&mut buf).unwrap();
        let d = PstNode::decode(&buf).unwrap();
        assert_eq!(d, n);
        assert!(!d.is_leaf());
        assert_eq!(d.subtree_size(), 3 + 17 + 20);
    }

    #[test]
    fn leaf_roundtrip() {
        let n = PstNode {
            segments: vec![seg(1)],
            children: vec![],
            seps: vec![],
        };
        let mut buf = vec![0u8; 128];
        n.encode(&mut buf).unwrap();
        assert_eq!(PstNode::decode(&buf).unwrap(), n);
    }

    #[test]
    fn caps_fit_page() {
        for page in [256usize, 512, 1024, 4096] {
            let (cap, fan) = default_caps(page);
            assert!(
                node_bytes(cap, fan) <= page,
                "page {page}: {}",
                node_bytes(cap, fan)
            );
            assert!(fan >= 2);
            let bcap = seg_cap_for_fanout(page, 2);
            assert!(node_bytes(bcap, 2) <= page);
            assert!(bcap >= cap, "binary nodes hold more segments");
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let n = PstNode {
            segments: vec![],
            children: vec![
                ChildEntry {
                    router: seg(4),
                    page: 9,
                    size: 1,
                },
                ChildEntry {
                    router: seg(5),
                    page: 10,
                    size: 1,
                },
            ],
            seps: vec![], // should be 1
        };
        let mut buf = vec![0u8; 256];
        assert!(n.encode(&mut buf).is_err());
    }

    #[test]
    fn corrupt_segment_rejected() {
        let mut buf = vec![0u8; 128];
        {
            let mut w = ByteWriter::new(&mut buf);
            w.u16(1).unwrap();
            w.u16(0).unwrap();
            w.u64(7).unwrap();
            for _ in 0..4 {
                w.i64(5).unwrap();
            }
        }
        assert!(PstNode::decode(&buf).is_err());
    }
}
