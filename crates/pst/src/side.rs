//! Side-of-base-line abstraction: reach keys and base order.

use segdb_geom::predicates::{cmp_slope, cmp_y_at_x};
use segdb_geom::Segment;
use std::cmp::Ordering;

/// Which half-plane (relative to the vertical base line) the line-based
/// set lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Segments extend to `x ≤ base_x`.
    Left,
    /// Segments extend to `x ≥ base_x`.
    Right,
}

impl Side {
    /// Serialized tag.
    pub fn tag(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// Inverse of [`Side::tag`].
    pub fn from_tag(t: u8) -> Option<Side> {
        match t {
            0 => Some(Side::Left),
            1 => Some(Side::Right),
            _ => None,
        }
    }

    /// Monotone *reach key*: larger ⇔ the clipped segment extends farther
    /// from the base line. The priority of the priority search tree.
    #[inline]
    pub fn reach_key(self, seg: &Segment) -> i64 {
        match self {
            Side::Right => seg.b.x,
            // Canonical order puts the leftmost endpoint in `a`.
            Side::Left => -seg.a.x,
        }
    }

    /// Reach key of a query abscissa: a segment's clip crosses the
    /// vertical line `x = qx` iff `reach_key(seg) ≥ query_key(qx)` (the
    /// base-line side of the clip is implicit — the query must be on this
    /// side of the base line, checked once per query).
    #[inline]
    pub fn query_key(self, qx: i64) -> i64 {
        match self {
            Side::Right => qx,
            Side::Left => -qx,
        }
    }

    /// True when the query abscissa lies on this side of the base line.
    #[inline]
    pub fn on_side(self, base_x: i64, qx: i64) -> bool {
        match self {
            Side::Right => qx >= base_x,
            Side::Left => qx <= base_x,
        }
    }

    /// Base order: the order of intersections with the base line, with
    /// touching ties resolved by the order at `base ± ε` (slope order,
    /// reversed on the left side), then by id for totality.
    ///
    /// For an NCT set this order agrees with the order of ordinates at
    /// every abscissa on the side where both segments are present — the
    /// property the sandwich prune rests on.
    pub fn cmp_base(self, base_x: i64, a: &Segment, b: &Segment) -> Ordering {
        if a.id == b.id {
            return Ordering::Equal;
        }
        cmp_y_at_x(a, b, base_x)
            .then_with(|| match self {
                Side::Right => cmp_slope(a, b),
                Side::Left => cmp_slope(a, b).reverse(),
            })
            .then_with(|| a.id.cmp(&b.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, a: (i64, i64), b: (i64, i64)) -> Segment {
        Segment::new(id, a, b).unwrap()
    }

    #[test]
    fn reach_keys() {
        let s = seg(1, (-5, 0), (9, 3));
        assert_eq!(Side::Right.reach_key(&s), 9);
        assert_eq!(Side::Left.reach_key(&s), 5);
        assert!(Side::Right.reach_key(&s) >= Side::Right.query_key(7));
        assert!(Side::Left.reach_key(&s) >= Side::Left.query_key(-4));
        assert!(Side::Left.reach_key(&s) < Side::Left.query_key(-6));
    }

    #[test]
    fn on_side() {
        assert!(Side::Right.on_side(10, 10));
        assert!(Side::Right.on_side(10, 15));
        assert!(!Side::Right.on_side(10, 9));
        assert!(Side::Left.on_side(10, 10));
        assert!(Side::Left.on_side(10, 5));
        assert!(!Side::Left.on_side(10, 11));
    }

    #[test]
    fn base_order_simple() {
        // Both cross x=0; one at y=0, one at y=10.
        let lo = seg(1, (-5, 0), (5, 0));
        let hi = seg(2, (-5, 10), (5, 10));
        assert_eq!(Side::Right.cmp_base(0, &lo, &hi), Ordering::Less);
        assert_eq!(Side::Left.cmp_base(0, &hi, &lo), Ordering::Greater);
    }

    #[test]
    fn base_order_touching_tiebreak() {
        // Two segments sharing the base point (0,0), different slopes.
        let flat = seg(1, (0, 0), (10, 1));
        let steep = seg(2, (0, 0), (10, 9));
        // Right of the line, steeper is higher.
        assert_eq!(Side::Right.cmp_base(0, &flat, &steep), Ordering::Less);
        // Left-side fan sharing (0,0): order reverses.
        let lflat = seg(3, (-10, 1), (0, 0));
        let lsteep = seg(4, (-10, 9), (0, 0));
        assert_eq!(Side::Left.cmp_base(0, &lflat, &lsteep), Ordering::Less);
        // Check against geometry: at x=-1, lflat has y=0.1, lsteep y=0.9.
        assert_eq!(
            segdb_geom::predicates::cmp_y_at_x(&lflat, &lsteep, -1),
            Ordering::Less
        );
    }

    #[test]
    fn base_order_total_on_identical_geometry() {
        let a = seg(1, (0, 0), (10, 5));
        let b = seg(2, (0, 0), (10, 5));
        assert_eq!(Side::Right.cmp_base(0, &a, &b), Ordering::Less);
        assert_eq!(Side::Right.cmp_base(0, &b, &a), Ordering::Greater);
        assert_eq!(Side::Right.cmp_base(0, &a, &a), Ordering::Equal);
    }

    #[test]
    fn tags_roundtrip() {
        for s in [Side::Left, Side::Right] {
            assert_eq!(Side::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Side::from_tag(9), None);
    }
}
