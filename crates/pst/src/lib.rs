#![warn(missing_docs)]

//! # segdb-pst — external priority search trees for line-based segments
//!
//! Implements Section 2 of the paper: a secondary-storage structure over a
//! set of **line-based segments** — segments with (at least) one endpoint
//! on a common *base line*, all extending into the same half-plane —
//! answering *"report every segment intersected by a query segment
//! parallel to the base line"*.
//!
//! ## Orientation
//!
//! The paper draws base lines horizontally "to make the description
//! coherent with the traditional way of drawing data structures" (§2); in
//! the two-level structures of §3–4 every base line is **vertical**
//! (`x = base_x`), so this crate uses the vertical orientation natively:
//!
//! * base line `x = base_x`, segments extend to one [`Side`] of it;
//! * a stored segment is the *clip* of an original NCT segment to that
//!   side — represented as the original segment plus the implicit clip
//!   window, so cut points with non-integer ordinates never materialize;
//! * **priority** = *reach*: how far the segment extends from the base
//!   line (`b.x` on the right side, `−a.x` on the left);
//! * **base order** = the order of intersections with the base line,
//!   touching ties broken by slope (the order at `base ± ε`), then id.
//!
//! ## Structure
//!
//! One node = one page holding the `cap` farthest-reaching segments of
//! its subtree (in base order) plus, per child, a *router*: a copy of the
//! child subtree's farthest-reaching segment — the paper's `v.left` /
//! `v.right` copies — and the child's subtree size. The fanout `F` is a
//! parameter:
//!
//! * `F = 2` reproduces the paper's binary tree: `O(n)` blocks and
//!   `O(log₂ n + t)` query I/Os (Lemma 2);
//! * `F = Θ(B)` packs the routing decision into the node page, giving
//!   `O(log_B n + t)` query I/Os — the role the **P-range tree** \[19\]
//!   plays in Lemma 3 (see DESIGN.md for why this substitution preserves
//!   the claimed behaviour; the `IL*(B)` additive term is a constant ≤ 3
//!   for every feasible `B`).
//!
//! ## Query
//!
//! A level-by-level frontier walk reproducing the paper's `Find`/`Report`
//! cost argument: per level, the frontier holds (a) nodes whose sandwich
//! window straddles a query endpoint — at most ~2, the paper's queue —
//! and (b) nodes entirely inside the window, each of which contributes
//! its router as a hit and, if it descends, a full block of hits. Two
//! prunes make this work:
//!
//! * **priority prune**: skip a child whose router does not reach the
//!   query line (the router is the subtree's reach maximum);
//! * **sandwich prune**: by non-crossingness, a subtree's segments that
//!   reach the query line are ordered consistently with base order, so
//!   the ordinates of the flanking sibling routers (or, after
//!   insertions, the tightest inherited bound) bracket the subtree's
//!   ordinates at the query line; skip when the bracket misses the query
//!   range.
//!
//! ## Updates
//!
//! Insertion displaces downward like a heap (`O(height)` I/Os), updating
//! routers on the path; balance is restored by weight-balanced *partial
//! rebuilding* (the BB\[α\]-rotation substitute, DESIGN.md) with amortized
//! `O(log n)` cost. Deletion is tombstone-based with full rebuild at 50%
//! garbage, the standard amortization the paper's update bounds allow.

pub mod node;
pub mod side;
pub mod tombs;
pub mod tree;

pub use side::Side;
pub use tree::{BatchQuery, Pst, PstConfig, PstState, QueryStats};
