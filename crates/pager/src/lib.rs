#![warn(missing_docs)]

//! # segdb-pager — paged block storage with an exact I/O cost model
//!
//! The EDBT'98 paper measures every operation in *I/O operations*: the
//! transfer of one block of `B` items between disk and memory. This crate
//! provides the substrate that makes those costs observable and
//! deterministic:
//!
//! * [`Disk`] — an in-memory array of fixed-size pages standing in for
//!   secondary storage, with a free list for page recycling.
//! * [`Pager`] — the access path every index structure goes through. It
//!   counts physical reads/writes/allocations ([`IoStats`]) and optionally
//!   interposes an LRU [`cache`] (capacity 0 by default, so every access is
//!   a physical I/O — the pure model of the paper).
//! * [`codec`] — bounds-checked little-endian readers/writers used by all
//!   node serializers, so every structure genuinely lives in page images
//!   rather than in native pointers.
//! * [`fault`] — a deterministic fault-injection [`Device`] wrapper
//!   (transient errors, torn writes, simulated power cuts) driving the
//!   workspace crash-recovery torture suite (`tests/faults.rs`).
//!
//! All structures in the workspace store each logical node in exactly one
//! page, mirroring the paper's "each node is contained in exactly one
//! block" construction (Section 2, footnote 4).
//!
//! ```
//! use segdb_pager::{Pager, PagerConfig};
//!
//! let pager = Pager::new(PagerConfig { page_size: 128, cache_pages: 0 });
//! let id = pager.allocate().unwrap();
//! pager.overwrite_page(id, |bytes| bytes[0] = 42).unwrap();
//! let v = pager.with_page(id, |bytes| bytes[0]).unwrap();
//! assert_eq!(v, 42);
//! let s = pager.stats();
//! assert_eq!((s.reads, s.writes, s.allocations), (1, 1, 1));
//! ```

pub mod cache;
pub mod codec;
pub mod device;
pub mod error;
pub mod fault;
pub mod file_device;
pub mod pager;
pub mod shard;
pub mod stats;

pub use codec::{ByteReader, ByteWriter};
pub use device::{Device, Disk};
pub use error::{PagerError, Result};
pub use fault::{FaultDevice, FaultEvent, FaultHandle, FaultKind, FaultPlan, FaultStats};
pub use file_device::FileDevice;
pub use pager::{CacheTiers, Pager, PagerConfig};
pub use shard::ShardedCache;
pub use stats::{thread_io, IoStats, StatScope};

/// Identifier of one page (block) of secondary storage.
///
/// `u32` keeps node headers compact; 2³² pages × 4 KiB ≫ any workload here.
pub type PageId = u32;

/// Sentinel used in serialized node layouts for "no page".
pub const NULL_PAGE: PageId = u32::MAX;
