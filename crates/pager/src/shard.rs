//! A sharded, lock-protected buffer pool for concurrent readers.
//!
//! [`ShardedCache`] partitions the page-id space over `S` independent
//! [`LruCache`] shards (`shard = page % S`), each behind its own
//! `Mutex`. Concurrent queries over one `Arc<SegmentDatabase>` then
//! contend only when they touch pages of the same shard, and — because
//! images are `Arc<[u8]>` — a hit clones the handle and releases the
//! shard lock *before* the caller decodes the node, so no lock is ever
//! held across index-node decoding.
//!
//! Semantics:
//!
//! * `S = 1` (the default everywhere outside the serving layer) is
//!   byte-for-byte the old single-`LruCache` pager: one global strict
//!   LRU, deterministic eviction order, identical I/O counts. All
//!   experiment baselines keep their numbers.
//! * `S > 1` approximates global LRU by per-shard LRU (capacity is
//!   split evenly, remainder to the lower shards). Eviction decisions
//!   stay deterministic for a fixed access sequence, but a sharded pool
//!   may evict a page a global LRU would have kept — the price of
//!   lock-free-ish scaling across worker threads.
//!
//! Consistency model (documented in DESIGN.md "Concurrent serving"):
//! concurrent *readers* are safe and scalable; *writers* require
//! external exclusive access. Two rules keep resident dirty pages (left
//! by a build or an offline mutation) safe under concurrent reads:
//!
//! * the reader admit path uses [`LruCache::insert_if_absent`] so a
//!   racing reader can never clobber a dirty image with a stale clean
//!   one;
//! * a dirty eviction victim is written back to the device **while the
//!   shard lock is still held** (the admit verbs take a writeback
//!   closure). Releasing the lock first would open a stale-read window:
//!   a concurrent reader missing on the just-evicted page would read
//!   the not-yet-written device image and re-admit it, poisoning the
//!   pool. Lock order is therefore shard → device; no caller may
//!   acquire a shard lock while holding a device guard.

use crate::cache::{Evicted, LruCache};
use crate::PageId;
use std::sync::Arc;
use std::sync::Mutex;

/// A sharded, internally locked pool of page images. See module docs.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<LruCache>>,
    capacity: usize,
}

impl ShardedCache {
    /// Build a pool of `capacity` total pages split over `shards` LRU
    /// shards. `shards` is clamped to `[1, capacity]` (a zero-capacity
    /// pool keeps one empty shard so the disabled path stays branch-only).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let per = capacity / shards;
        let extra = capacity % shards;
        ShardedCache {
            shards: (0..shards)
                .map(|i| Mutex::new(LruCache::new(per + usize::from(i < extra))))
                .collect(),
            capacity,
        }
    }

    /// Total resident-page capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pages currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, page: PageId) -> &Mutex<LruCache> {
        &self.shards[page as usize % self.shards.len()]
    }

    /// Look up `page` (touching it MRU in its shard) and return a clone
    /// of the image handle. The shard lock is released before returning.
    pub fn get_cloned(&self, page: PageId) -> Option<Arc<[u8]>> {
        if self.capacity == 0 {
            return None;
        }
        lock(self.shard(page)).get_cloned(page)
    }

    /// Reader-path admission: insert a freshly fetched clean image
    /// unless the page is already resident (never replaces — a racing
    /// writer's dirty copy must win). A dirty eviction victim is passed
    /// to `writeback` **while the shard lock is held** — see the module
    /// docs for why releasing first would let a concurrent reader
    /// observe a stale device image. Returns the victim, if any.
    ///
    /// A failed writeback must not lose the dirty victim: the admission
    /// is rolled back (the fresh image is dropped, the victim restored
    /// with its dirty bit) and the error propagated — the caller can
    /// retry, and a later eviction or flush writes the victim again.
    pub fn admit_clean<E>(
        &self,
        page: PageId,
        data: Arc<[u8]>,
        writeback: impl FnOnce(&Evicted) -> Result<(), E>,
    ) -> Result<Option<Evicted>, E> {
        if self.capacity == 0 {
            return Ok(None);
        }
        let mut shard = lock(self.shard(page));
        let victim = shard.insert_if_absent(page, data, false);
        Self::settle(&mut shard, page, victim, writeback)
    }

    /// Writer-path admission: insert or replace the image, marked dirty.
    /// Like [`ShardedCache::admit_clean`], the eviction victim is written
    /// back under the shard lock, and a failed writeback rolls the
    /// admission back (the device still holds the page's previous image,
    /// so the failed store behaves as if it never happened).
    pub fn admit_dirty<E>(
        &self,
        page: PageId,
        data: Arc<[u8]>,
        writeback: impl FnOnce(&Evicted) -> Result<(), E>,
    ) -> Result<Option<Evicted>, E> {
        if self.capacity == 0 {
            return Ok(None);
        }
        let mut shard = lock(self.shard(page));
        let victim = shard.upsert(page, data, true);
        Self::settle(&mut shard, page, victim, writeback)
    }

    /// Write the eviction victim back (under the shard lock); on failure
    /// undo the admission that displaced it and restore the victim so no
    /// dirty image is ever dropped on an error path. A victim can only
    /// exist when `page` was freshly inserted, so removing `page` is
    /// exactly the inverse of that insertion.
    fn settle<E>(
        shard: &mut LruCache,
        page: PageId,
        victim: Option<Evicted>,
        writeback: impl FnOnce(&Evicted) -> Result<(), E>,
    ) -> Result<Option<Evicted>, E> {
        let Some(ev) = victim else { return Ok(None) };
        if let Err(e) = writeback(&ev) {
            shard.remove(page);
            shard.insert(ev.page, ev.data, ev.dirty);
            return Err(e);
        }
        Ok(Some(ev))
    }

    /// Write every dirty resident page back through `writeback` and mark
    /// it clean, keeping the pool warm (shard locks are held across the
    /// callback, one shard at a time). Used to hand a freshly built
    /// database to concurrent readers with no dirty pages resident.
    pub fn clean_all<E>(
        &self,
        mut writeback: impl FnMut(PageId, &Arc<[u8]>) -> Result<(), E>,
    ) -> Result<(), E> {
        for s in &self.shards {
            lock(s).clean_all(&mut writeback)?;
        }
        Ok(())
    }

    /// Drop a page (when it is freed). Returns the image if resident.
    pub fn remove(&self, page: PageId) -> Option<Evicted> {
        if self.capacity == 0 {
            return None;
        }
        lock(self.shard(page)).remove(page)
    }

    /// Drain every resident page from every shard (flush path), each
    /// shard LRU-first, shards in index order.
    pub fn drain(&self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(lock(s).drain());
        }
        out
    }
}

/// Lock a shard, recovering from poisoning: the cache holds plain data
/// (no invariants broken mid-panic matter more than serving), so a
/// panicked worker must not wedge every other connection.
fn lock(m: &Mutex<LruCache>) -> std::sync::MutexGuard<'_, LruCache> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn img(b: u8) -> Arc<[u8]> {
        Arc::from(vec![b; 4].into_boxed_slice())
    }

    /// Admit with a no-op writeback (tests inspect the returned victim).
    fn admit_clean(c: &ShardedCache, page: PageId, data: Arc<[u8]>) -> Option<Evicted> {
        c.admit_clean(page, data, |_: &Evicted| -> Result<(), ()> { Ok(()) })
            .unwrap()
    }

    fn admit_dirty(c: &ShardedCache, page: PageId, data: Arc<[u8]>) -> Option<Evicted> {
        c.admit_dirty(page, data, |_: &Evicted| -> Result<(), ()> { Ok(()) })
            .unwrap()
    }

    #[test]
    fn single_shard_matches_plain_lru() {
        let c = ShardedCache::new(2, 1);
        assert_eq!(c.shard_count(), 1);
        assert!(admit_clean(&c, 1, img(1)).is_none());
        assert!(admit_clean(&c, 2, img(2)).is_none());
        assert_eq!(c.get_cloned(1).unwrap()[0], 1); // 2 becomes LRU
        let ev = admit_clean(&c, 3, img(3)).unwrap();
        assert_eq!(ev.page, 2);
        assert!(c.get_cloned(2).is_none());
    }

    #[test]
    fn shards_partition_by_page_id() {
        let c = ShardedCache::new(4, 4);
        assert_eq!(c.shard_count(), 4);
        for p in 0..4u32 {
            admit_clean(&c, p, img(p as u8));
        }
        // Page 4 collides only with page 0 (4 % 4 == 0).
        let ev = admit_clean(&c, 4, img(4)).unwrap();
        assert_eq!(ev.page, 0);
        for p in 1..5u32 {
            assert_eq!(c.get_cloned(p).unwrap()[0], p as u8, "page {p} resident");
        }
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let c = ShardedCache::new(2, 64);
        assert_eq!(c.shard_count(), 2);
        assert_eq!(c.capacity(), 2);
        let c = ShardedCache::new(0, 8);
        assert_eq!(c.capacity(), 0);
        assert!(c.get_cloned(0).is_none());
        assert!(admit_clean(&c, 0, img(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_remainder_goes_to_low_shards() {
        let c = ShardedCache::new(5, 2);
        // Shard 0 gets 3, shard 1 gets 2: pages 0,2,4 (shard 0) all fit.
        for p in [0u32, 2, 4] {
            assert!(admit_clean(&c, p, img(p as u8)).is_none());
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn clean_admit_never_clobbers_dirty_image() {
        let c = ShardedCache::new(4, 2);
        admit_dirty(&c, 6, img(9));
        admit_clean(&c, 6, img(1));
        let ev = c.remove(6).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.data[0], 9, "dirty image survived the clean admit");
    }

    #[test]
    fn dirty_victim_reaches_the_writeback_callback() {
        let c = ShardedCache::new(1, 1);
        admit_dirty(&c, 0, img(7));
        let mut seen = Vec::new();
        let victim = c
            .admit_clean(1, img(1), |ev: &Evicted| -> Result<(), ()> {
                seen.push((ev.page, ev.data[0], ev.dirty));
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(seen, vec![(0, 7, true)]);
        assert_eq!(victim.page, 0);
    }

    #[test]
    fn writeback_error_propagates() {
        let c = ShardedCache::new(1, 1);
        admit_dirty(&c, 0, img(7));
        let err = c.admit_clean(1, img(1), |_: &Evicted| Err::<(), &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn failed_writeback_restores_the_dirty_victim() {
        let c = ShardedCache::new(1, 1);
        admit_dirty(&c, 0, img(7));
        let err = c.admit_clean(1, img(1), |_: &Evicted| Err::<(), &str>("io"));
        assert_eq!(err.unwrap_err(), "io");
        assert!(c.get_cloned(1).is_none(), "failed admission rolled back");
        let ev = c.remove(0).expect("victim restored");
        assert!(ev.dirty, "restored victim keeps its dirty bit");
        assert_eq!(ev.data[0], 7, "restored victim keeps its image");
    }

    #[test]
    fn failed_dirty_admission_rolls_back_without_losing_the_victim() {
        let c = ShardedCache::new(1, 1);
        admit_dirty(&c, 0, img(7));
        let err = c.admit_dirty(1, img(9), |_: &Evicted| Err::<(), &str>("io"));
        assert_eq!(err.unwrap_err(), "io");
        assert_eq!(c.len(), 1, "capacity not exceeded after rollback");
        assert!(c.get_cloned(1).is_none(), "the failed store is dropped");
        let ev = c.remove(0).expect("victim restored");
        assert!(ev.dirty);
        assert_eq!(ev.data[0], 7);
    }

    #[test]
    fn writeback_retry_succeeds_after_a_restored_victim() {
        let c = ShardedCache::new(1, 1);
        admit_dirty(&c, 0, img(7));
        let mut written = Vec::new();
        assert!(c
            .admit_clean(1, img(1), |_: &Evicted| Err::<(), &str>("io"))
            .is_err());
        // Retry: this time the writeback works, the victim is evicted.
        let ev = c
            .admit_clean(1, img(1), |ev: &Evicted| -> Result<(), &str> {
                written.push((ev.page, ev.data[0], ev.dirty));
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(written, vec![(0, 7, true)]);
        assert_eq!(ev.page, 0);
        assert_eq!(c.get_cloned(1).unwrap()[0], 1);
    }

    #[test]
    fn clean_all_keeps_pool_warm() {
        let c = ShardedCache::new(4, 2);
        admit_dirty(&c, 0, img(1));
        admit_dirty(&c, 1, img(2));
        admit_clean(&c, 2, img(3));
        let mut written = Vec::new();
        c.clean_all(|page, data| -> Result<(), ()> {
            written.push((page, data[0]));
            Ok(())
        })
        .unwrap();
        written.sort_unstable();
        assert_eq!(written, vec![(0, 1), (1, 2)]);
        assert_eq!(c.len(), 3, "pages stay resident");
        let ev = c.remove(0).unwrap();
        assert!(!ev.dirty, "cleaned page no longer dirty");
    }

    #[test]
    fn concurrent_hammer_is_safe() {
        let c = Arc::new(ShardedCache::new(32, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..2_000u32 {
                        let p = (i * 7 + t) % 64;
                        match c.get_cloned(p) {
                            Some(img) => assert_eq!(img[0], p as u8),
                            None => {
                                admit_clean(&c, p, Arc::from(vec![p as u8; 4].into_boxed_slice()));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 32);
    }
}
