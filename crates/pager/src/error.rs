//! Error type shared by all paged structures.

use crate::PageId;
use std::fmt;

/// Errors surfaced by the pager and by node codecs built on top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagerError {
    /// The page id has never been allocated (or lies past the end of the
    /// disk image).
    OutOfBounds(PageId),
    /// The page id was allocated and later freed.
    Freed(PageId),
    /// A codec read/write ran past the end of the page.
    CodecOverflow {
        /// Byte offset at which the access started.
        offset: usize,
        /// Bytes the access needed.
        requested: usize,
        /// Bytes available in the page.
        available: usize,
    },
    /// A serialized node failed structural validation while decoding.
    Corrupt(&'static str),
    /// An operating-system I/O failure from a persistent device.
    Io(String),
    /// A structure-level capacity invariant would be violated (e.g. a node
    /// asked to hold more records than fit in one page).
    PageOverflow {
        /// Human-readable description of the structure that overflowed.
        what: &'static str,
        /// Records requested.
        requested: usize,
        /// Records that fit.
        capacity: usize,
    },
}

impl fmt::Display for PagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagerError::OutOfBounds(id) => write!(f, "page {id} was never allocated"),
            PagerError::Freed(id) => write!(f, "page {id} has been freed"),
            PagerError::CodecOverflow {
                offset,
                requested,
                available,
            } => write!(
                f,
                "codec access of {requested} bytes at offset {offset} exceeds page size {available}"
            ),
            PagerError::Corrupt(what) => write!(f, "corrupt page image: {what}"),
            PagerError::Io(e) => write!(f, "device I/O error: {e}"),
            PagerError::PageOverflow {
                what,
                requested,
                capacity,
            } => write!(
                f,
                "{what}: {requested} records exceed page capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for PagerError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PagerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PagerError::OutOfBounds(7);
        assert!(e.to_string().contains('7'));
        let e = PagerError::CodecOverflow {
            offset: 10,
            requested: 8,
            available: 16,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('8') && s.contains("16"));
        let e = PagerError::PageOverflow {
            what: "pst node",
            requested: 99,
            capacity: 64,
        };
        assert!(e.to_string().contains("pst node"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PagerError::Freed(3), PagerError::Freed(3));
        assert_ne!(PagerError::Freed(3), PagerError::OutOfBounds(3));
    }
}
