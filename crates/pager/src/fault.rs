//! Deterministic fault injection: [`FaultDevice`], a [`Device`] wrapper
//! that manufactures storage failures from a seeded schedule.
//!
//! # Crash model
//!
//! The wrapper keeps **two** inner devices:
//!
//! * `live` — the volatile state every operation applies to (what a
//!   running process sees);
//! * `durable` — the last `sync`-consistent image (what survives a power
//!   cut).
//!
//! Every mutation (allocate / free / write / set_meta) applies to `live`
//! and is appended to a redo log. A successful `sync` replays the log
//! onto `durable`, syncs it, and clears the log — so `durable` is always
//! exactly the state as of the last successful `sync`. `sync` itself is
//! atomic in this model (the replay cannot be interrupted half-way);
//! what *can* be interrupted is the pager's flush *before* the sync,
//! which is precisely the window the torture suite exercises. This is
//! the **sync-consistency guarantee** documented in DESIGN.md §9.
//!
//! # Fault taxonomy
//!
//! Driven by a [`FaultPlan`] and a [`segdb_rng::SmallRng`] seeded from
//! `plan.seed`, the device can inject, per operation:
//!
//! * transient `read` / `write` / `sync` errors — the op fails with
//!   [`PagerError::Io`], no state changes;
//! * **torn writes** — only the first `K` bytes (seeded, `0 < K < page`)
//!   of the new image reach `live`, and the op still fails: the page now
//!   holds a front/back splice of new and old bytes, as after a
//!   partially completed sector write;
//! * a **power cut** at a scheduled operation index — the op fails and
//!   every subsequent operation fails too; the pre-cut `durable` image
//!   is the only thing "recovered" afterwards ([`FaultHandle::recover`]).
//!
//! All draws come from the plan's RNG and every counted operation
//! consumes the same number of draws, so a given `(seed, workload)` pair
//! replays the identical fault trace ([`FaultHandle::trace`]) — the
//! deflake guarantee the torture tests assert.
//!
//! The device starts **disarmed**: a harness builds its database
//! fault-free, then calls [`FaultHandle::arm`] to start the schedule
//! (resetting the op counter and RNG). Injection applies to `read`,
//! `write` and `sync`; `allocate`, `free` and `set_meta` are counted
//! (the power cut can land on them) but never fail transiently —
//! allocation is pure bookkeeping in both in-repo devices.

use crate::device::{Device, Disk};
use crate::error::{PagerError, Result};
use crate::PageId;
use segdb_rng::SmallRng;
use std::sync::{Arc, Mutex, MutexGuard};

/// The seeded fault schedule of one [`FaultDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the device's private RNG (armed via [`FaultHandle::arm`]).
    pub seed: u64,
    /// Probability of a transient error per `read`.
    pub read_error: f64,
    /// Probability of a transient error per `write`.
    pub write_error: f64,
    /// Probability of a transient error per `sync`.
    pub sync_error: f64,
    /// Probability of a torn (partial) write per `write`, drawn after
    /// `write_error`.
    pub torn_write: f64,
    /// Simulated power cut at this counted-operation index (0-based from
    /// arming); `None` never cuts.
    pub power_cut_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the disarmed baseline).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_error: 0.0,
            write_error: 0.0,
            sync_error: 0.0,
            torn_write: 0.0,
            power_cut_at: None,
        }
    }

    /// A plan whose only fault is a power cut at operation `op`.
    pub fn crash_at(seed: u64, op: u64) -> FaultPlan {
        FaultPlan {
            power_cut_at: Some(op),
            ..FaultPlan::none(seed)
        }
    }
}

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient read error.
    ReadError,
    /// Transient write error (nothing written).
    WriteError,
    /// Transient sync error (redo log kept).
    SyncError,
    /// Torn write: only the first `kept` bytes of the new image landed.
    TornWrite {
        /// Bytes of the new image that reached the live store.
        kept: u32,
    },
    /// Simulated power cut; the device is offline from here on.
    PowerCut,
}

/// One injected fault, for trace comparison across replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Counted-operation index (0-based from arming) the fault hit.
    pub op: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// Per-device injection counters (deterministic, unlike the process-wide
/// [`segdb_obs::faults`] totals which accumulate across devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Transient read errors injected.
    pub read_errors: u64,
    /// Transient write errors injected.
    pub write_errors: u64,
    /// Transient sync errors injected.
    pub sync_errors: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Power cuts fired (0 or 1).
    pub power_cuts: u64,
}

impl FaultStats {
    /// Every injected fault, summed.
    pub fn total(&self) -> u64 {
        self.read_errors + self.write_errors + self.sync_errors + self.torn_writes + self.power_cuts
    }
}

/// One logged mutation, replayed onto `durable` at sync.
enum RedoOp {
    /// `allocate()` returned this id; replay must agree.
    Allocate(PageId),
    Free(PageId),
    Write(PageId, Box<[u8]>),
    SetMeta(Box<[u8]>),
}

struct FaultCore {
    live: Box<dyn Device>,
    durable: Option<Box<dyn Device>>,
    redo: Vec<RedoOp>,
    plan: FaultPlan,
    rng: SmallRng,
    armed: bool,
    crashed: bool,
    ops: u64,
    trace: Vec<FaultEvent>,
    stats: FaultStats,
}

impl FaultCore {
    /// Count one fallible operation; fire the scheduled power cut when
    /// its index comes up, and refuse everything after a cut (or after
    /// the durable store was taken by recovery).
    fn begin_op(&mut self) -> Result<u64> {
        if self.crashed {
            return Err(PagerError::Io("simulated power cut: device offline".into()));
        }
        let op = self.ops;
        self.ops += 1;
        if self.armed && self.plan.power_cut_at.is_some_and(|cut| op >= cut) {
            self.crashed = true;
            self.trace.push(FaultEvent {
                op,
                kind: FaultKind::PowerCut,
            });
            self.stats.power_cuts += 1;
            segdb_obs::faults::totals().injected_power_cut();
            return Err(PagerError::Io("simulated power cut: device offline".into()));
        }
        Ok(op)
    }

    /// Draw one fault coin. Always consumes exactly one RNG draw when
    /// armed so the stream stays aligned across replays.
    fn draw(&mut self, p: f64) -> bool {
        self.armed && self.rng.gen_bool(p)
    }

    fn record(&mut self, op: u64, kind: FaultKind) {
        self.trace.push(FaultEvent { op, kind });
        let t = segdb_obs::faults::totals();
        match kind {
            FaultKind::ReadError => {
                self.stats.read_errors += 1;
                t.injected_read_error();
            }
            FaultKind::WriteError => {
                self.stats.write_errors += 1;
                t.injected_write_error();
            }
            FaultKind::SyncError => {
                self.stats.sync_errors += 1;
                t.injected_sync_error();
            }
            FaultKind::TornWrite { .. } => {
                self.stats.torn_writes += 1;
                t.injected_torn_write();
            }
            FaultKind::PowerCut => unreachable!("power cuts are recorded in begin_op"),
        }
    }

    fn replay_redo(&mut self) -> Result<()> {
        let durable = self
            .durable
            .as_mut()
            .ok_or_else(|| PagerError::Io("durable store already recovered".into()))?;
        for op in self.redo.drain(..) {
            match op {
                RedoOp::Allocate(expect) => {
                    let got = durable.allocate()?;
                    if got != expect {
                        return Err(PagerError::Corrupt(
                            "fault device: durable replay allocated a diverging page id",
                        ));
                    }
                }
                RedoOp::Free(id) => durable.free(id)?,
                RedoOp::Write(id, data) => durable.write(id, &data)?,
                RedoOp::SetMeta(meta) => durable.set_meta(&meta)?,
            }
        }
        durable.sync()
    }
}

/// A [`Device`] wrapper injecting seeded faults. See module docs.
///
/// Constructed together with its controlling [`FaultHandle`]; the device
/// is boxed into a pager while the handle stays with the test harness.
pub struct FaultDevice {
    core: Arc<Mutex<FaultCore>>,
    page_size: usize,
}

impl std::fmt::Debug for FaultDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDevice")
            .field("page_size", &self.page_size)
            .finish()
    }
}

/// The harness-side controller of a [`FaultDevice`]: arms the schedule,
/// reads the trace, and extracts the durable image after a crash.
#[derive(Clone)]
pub struct FaultHandle {
    core: Arc<Mutex<FaultCore>>,
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHandle").finish()
    }
}

fn lock(core: &Arc<Mutex<FaultCore>>) -> MutexGuard<'_, FaultCore> {
    core.lock().unwrap_or_else(|p| p.into_inner())
}

impl FaultDevice {
    /// A fault device over two fresh in-memory [`Disk`]s — the torture
    /// harness configuration. Starts **disarmed**.
    pub fn over_memory(page_size: usize, plan: FaultPlan) -> (FaultDevice, FaultHandle) {
        Self::wrap(
            Box::new(Disk::new(page_size)),
            Box::new(Disk::new(page_size)),
            plan,
        )
    }

    /// Wrap explicit `live` and `durable` stores (which must agree on
    /// page size and start in identical states). Starts **disarmed**.
    ///
    /// # Panics
    /// Panics if the two stores disagree on page size.
    pub fn wrap(
        live: Box<dyn Device>,
        durable: Box<dyn Device>,
        plan: FaultPlan,
    ) -> (FaultDevice, FaultHandle) {
        assert_eq!(
            live.page_size(),
            durable.page_size(),
            "live and durable stores must share a page size"
        );
        let page_size = live.page_size();
        let core = Arc::new(Mutex::new(FaultCore {
            live,
            durable: Some(durable),
            redo: Vec::new(),
            rng: SmallRng::seed_from_u64(plan.seed),
            plan,
            armed: false,
            crashed: false,
            ops: 0,
            trace: Vec::new(),
            stats: FaultStats::default(),
        }));
        (
            FaultDevice {
                core: Arc::clone(&core),
                page_size,
            },
            FaultHandle { core },
        )
    }
}

impl FaultHandle {
    /// Install `plan` and start injecting: reseeds the RNG from
    /// `plan.seed` and resets the operation counter (the power-cut index
    /// counts from here). The trace and stats keep accumulating.
    pub fn arm(&self, plan: FaultPlan) {
        let mut c = lock(&self.core);
        c.rng = SmallRng::seed_from_u64(plan.seed);
        c.plan = plan;
        c.ops = 0;
        c.armed = true;
    }

    /// Stop injecting (the device keeps working fault-free).
    pub fn disarm(&self) {
        lock(&self.core).armed = false;
    }

    /// Has the simulated power cut fired?
    pub fn crashed(&self) -> bool {
        lock(&self.core).crashed
    }

    /// Counted operations since the last [`FaultHandle::arm`].
    pub fn ops(&self) -> u64 {
        lock(&self.core).ops
    }

    /// Mutations applied to `live` but not yet replayed onto `durable`
    /// (i.e. lost if the power were cut right now).
    pub fn unsynced_ops(&self) -> usize {
        lock(&self.core).redo.len()
    }

    /// Per-device injection counters.
    pub fn stats(&self) -> FaultStats {
        lock(&self.core).stats
    }

    /// Every injected fault so far, in order.
    pub fn trace(&self) -> Vec<FaultEvent> {
        lock(&self.core).trace.clone()
    }

    /// Take the durable store — the last `sync`-consistent image — out
    /// of the device, simulating a post-crash restart that reopens
    /// whatever survived. The fault device goes permanently offline
    /// (every further operation fails), so a pager still holding it
    /// cannot diverge from the recovered copy. Errors if recovery
    /// already happened.
    pub fn recover(&self) -> Result<Box<dyn Device>> {
        let mut c = lock(&self.core);
        c.crashed = true;
        c.durable
            .take()
            .ok_or_else(|| PagerError::Io("durable store already recovered".into()))
    }
}

impl Device for FaultDevice {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn live_pages(&self) -> usize {
        lock(&self.core).live.live_pages()
    }

    fn capacity_pages(&self) -> usize {
        lock(&self.core).live.capacity_pages()
    }

    fn allocate(&mut self) -> Result<PageId> {
        let mut c = lock(&self.core);
        c.begin_op()?;
        let id = c.live.allocate()?;
        c.redo.push(RedoOp::Allocate(id));
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        let mut c = lock(&self.core);
        c.begin_op()?;
        c.live.free(id)?;
        c.redo.push(RedoOp::Free(id));
        Ok(())
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut c = lock(&self.core);
        let op = c.begin_op()?;
        let p_read = c.plan.read_error;
        if c.draw(p_read) {
            c.record(op, FaultKind::ReadError);
            return Err(PagerError::Io(format!(
                "injected transient read error (op {op}, page {id})"
            )));
        }
        c.live.read(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut c = lock(&self.core);
        let op = c.begin_op()?;
        let p_write = c.plan.write_error;
        if c.draw(p_write) {
            c.record(op, FaultKind::WriteError);
            return Err(PagerError::Io(format!(
                "injected transient write error (op {op}, page {id})"
            )));
        }
        let p_torn = c.plan.torn_write;
        if c.draw(p_torn) && buf.len() > 1 {
            // Splice: the first `kept` new bytes land, the tail keeps the
            // page's previous content — then the write "fails". The torn
            // image is logged so a later successful sync carries exactly
            // what the live store holds.
            let kept = c.rng.gen_range(1..buf.len());
            let mut torn = vec![0u8; buf.len()];
            c.live.read(id, &mut torn)?;
            torn[..kept].copy_from_slice(&buf[..kept]);
            c.live.write(id, &torn)?;
            c.redo.push(RedoOp::Write(id, torn.into_boxed_slice()));
            c.record(op, FaultKind::TornWrite { kept: kept as u32 });
            return Err(PagerError::Io(format!(
                "injected torn write: {kept} of {} bytes applied (op {op}, page {id})",
                buf.len()
            )));
        }
        c.live.write(id, buf)?;
        c.redo
            .push(RedoOp::Write(id, buf.to_vec().into_boxed_slice()));
        Ok(())
    }

    fn check(&self, id: PageId) -> Result<()> {
        lock(&self.core).live.check(id)
    }

    fn sync(&mut self) -> Result<()> {
        let mut c = lock(&self.core);
        let op = c.begin_op()?;
        let p_sync = c.plan.sync_error;
        if c.draw(p_sync) {
            c.record(op, FaultKind::SyncError);
            return Err(PagerError::Io(format!(
                "injected transient sync error (op {op})"
            )));
        }
        c.live.sync()?;
        c.replay_redo()
    }

    fn set_meta(&mut self, meta: &[u8]) -> Result<()> {
        let mut c = lock(&self.core);
        c.begin_op()?;
        c.live.set_meta(meta)?;
        c.redo
            .push(RedoOp::SetMeta(meta.to_vec().into_boxed_slice()));
        Ok(())
    }

    fn get_meta(&self) -> Result<Vec<u8>> {
        lock(&self.core).live.get_meta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_page(d: &mut FaultDevice, fill: u8) -> PageId {
        let id = d.allocate().unwrap();
        let buf = vec![fill; d.page_size()];
        d.write(id, &buf).unwrap();
        id
    }

    #[test]
    fn disarmed_device_is_transparent() {
        let (mut d, h) = FaultDevice::over_memory(16, FaultPlan::crash_at(1, 0));
        let id = write_page(&mut d, 7);
        d.sync().unwrap();
        let mut buf = [0u8; 16];
        d.read(id, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(h.stats().total(), 0, "nothing injected while disarmed");
        assert!(h.trace().is_empty());
    }

    #[test]
    fn power_cut_freezes_the_last_synced_image() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(3));
        let id = write_page(&mut d, 1);
        d.sync().unwrap();
        // Post-sync mutation that will be lost.
        d.write(id, &[2u8; 8]).unwrap();
        assert_eq!(h.unsynced_ops(), 1);
        h.arm(FaultPlan::crash_at(3, 0));
        let err = d.write(id, &[3u8; 8]).unwrap_err();
        assert!(matches!(err, PagerError::Io(_)));
        assert!(h.crashed());
        // Everything after the cut fails.
        let mut buf = [0u8; 8];
        assert!(d.read(id, &mut buf).is_err());
        assert!(d.sync().is_err());
        // Recovery sees the synced image, not the post-sync write.
        let recovered = h.recover().unwrap();
        recovered.read(id, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8], "durable froze at the last sync");
        assert_eq!(h.stats().power_cuts, 1);
        assert!(h.recover().is_err(), "second recovery refused");
    }

    #[test]
    fn torn_write_splices_new_front_and_old_tail() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(5));
        let id = write_page(&mut d, 0xAA);
        d.sync().unwrap();
        h.arm(FaultPlan {
            torn_write: 1.0,
            ..FaultPlan::none(5)
        });
        let err = d.write(id, &[0xBB; 8]).unwrap_err();
        assert!(matches!(err, PagerError::Io(_)));
        let tr = h.trace();
        assert_eq!(tr.len(), 1);
        let FaultKind::TornWrite { kept } = tr[0].kind else {
            panic!("expected a torn write, got {:?}", tr[0].kind);
        };
        assert!(kept >= 1 && (kept as usize) < 8);
        h.disarm();
        let mut buf = [0u8; 8];
        d.read(id, &mut buf).unwrap();
        for (i, b) in buf.iter().enumerate() {
            let want = if i < kept as usize { 0xBB } else { 0xAA };
            assert_eq!(*b, want, "byte {i}");
        }
        // A sync after the tear carries the torn image to durable —
        // the live and recovered stores never diverge.
        d.sync().unwrap();
        let recovered = h.recover().unwrap();
        let mut rbuf = [0u8; 8];
        recovered.read(id, &mut rbuf).unwrap();
        assert_eq!(rbuf, buf);
    }

    #[test]
    fn transient_errors_leave_state_intact_and_are_retryable() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(9));
        let id = write_page(&mut d, 4);
        d.sync().unwrap();
        h.arm(FaultPlan {
            write_error: 1.0,
            ..FaultPlan::none(9)
        });
        assert!(d.write(id, &[5u8; 8]).is_err());
        h.disarm();
        let mut buf = [0u8; 8];
        d.read(id, &mut buf).unwrap();
        assert_eq!(buf, [4u8; 8], "failed write changed nothing");
        d.write(id, &[5u8; 8]).unwrap();
        d.read(id, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 8], "retry succeeds after disarm");
        assert_eq!(h.stats().write_errors, 1);
    }

    #[test]
    fn failed_sync_keeps_the_redo_log_for_retry() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(11));
        let id = write_page(&mut d, 1);
        h.arm(FaultPlan {
            sync_error: 1.0,
            ..FaultPlan::none(11)
        });
        assert!(d.sync().is_err());
        assert!(h.unsynced_ops() > 0, "redo survives the failed sync");
        h.disarm();
        d.sync().unwrap();
        assert_eq!(h.unsynced_ops(), 0);
        let recovered = h.recover().unwrap();
        let mut buf = [0u8; 8];
        recovered.read(id, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
    }

    #[test]
    fn same_seed_same_workload_replays_the_identical_trace() {
        let run = || {
            let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(0));
            let ids: Vec<PageId> = (0..4).map(|i| write_page(&mut d, i)).collect();
            d.sync().unwrap();
            h.arm(FaultPlan {
                read_error: 0.3,
                write_error: 0.2,
                torn_write: 0.2,
                power_cut_at: Some(40),
                ..FaultPlan::none(77)
            });
            let mut buf = [0u8; 8];
            for round in 0..30u8 {
                let id = ids[round as usize % ids.len()];
                let _ = d.read(id, &mut buf);
                let _ = d.write(id, &[round; 8]);
            }
            (h.trace(), h.stats())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "fault traces must replay bit-identically");
        assert_eq!(s1, s2);
        assert!(s1.total() > 0, "the schedule actually injected faults");
    }

    #[test]
    fn durable_replay_recycles_page_ids_like_live() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(13));
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        d.write(a, &[1u8; 8]).unwrap();
        d.write(b, &[2u8; 8]).unwrap();
        d.free(a).unwrap();
        let c = d.allocate().unwrap();
        assert_eq!(c, a, "live recycles the freed id");
        d.write(c, &[3u8; 8]).unwrap();
        d.sync().unwrap();
        let recovered = h.recover().unwrap();
        let mut buf = [0u8; 8];
        recovered.read(c, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 8]);
        recovered.read(b, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
        assert_eq!(recovered.live_pages(), 2);
    }

    #[test]
    fn meta_reaches_durable_only_after_sync() {
        let (mut d, h) = FaultDevice::over_memory(8, FaultPlan::none(17));
        d.set_meta(b"superblock-v1").unwrap();
        d.sync().unwrap();
        d.set_meta(b"superblock-v2").unwrap();
        assert_eq!(d.get_meta().unwrap(), b"superblock-v2", "live sees v2");
        let recovered = h.recover().unwrap();
        assert_eq!(
            recovered.get_meta().unwrap(),
            b"superblock-v1",
            "durable still holds the synced superblock"
        );
    }
}
