//! I/O accounting.
//!
//! Every complexity claim in the paper is a statement about the number of
//! block transfers, so the counters here are the primary measurement
//! instrument of the whole reproduction. Counters use [`Cell`]s: the pager
//! is a single-threaded simulation and queries must be countable through a
//! shared reference.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, Sub};

/// Snapshot of I/O activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Physical page reads (cache hits are *not* reads).
    pub reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Pages newly allocated (an allocation is also counted as a write of
    /// the zeroed page image when it is first materialized by the caller,
    /// not here).
    pub allocations: u64,
    /// Pages returned to the free list.
    pub frees: u64,
    /// Reads satisfied by the buffer pool without touching the disk.
    pub cache_hits: u64,
}

impl IoStats {
    /// Total physical transfers — the paper's "I/O operations".
    #[inline]
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently attributable to the structure (allocs − frees).
    #[inline]
    pub fn live_pages(&self) -> i64 {
        self.allocations as i64 - self.frees as i64
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            allocations: self.allocations + rhs.allocations,
            frees: self.frees + rhs.frees,
            cache_hits: self.cache_hits + rhs.cache_hits,
        }
    }
}

impl Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            allocations: self.allocations - rhs.allocations,
            frees: self.frees - rhs.frees,
            cache_hits: self.cache_hits - rhs.cache_hits,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} allocs={} frees={} hits={}",
            self.reads, self.writes, self.allocations, self.frees, self.cache_hits
        )
    }
}

/// Interior-mutable counter bank owned by the pager.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    reads: Cell<u64>,
    writes: Cell<u64>,
    allocations: Cell<u64>,
    frees: Cell<u64>,
    cache_hits: Cell<u64>,
}

impl Counters {
    #[inline]
    pub fn record_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }
    #[inline]
    pub fn record_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }
    #[inline]
    pub fn record_alloc(&self) {
        self.allocations.set(self.allocations.get() + 1);
    }
    #[inline]
    pub fn record_free(&self) {
        self.frees.set(self.frees.get() + 1);
    }
    #[inline]
    pub fn record_hit(&self) {
        self.cache_hits.set(self.cache_hits.get() + 1);
    }

    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            allocations: self.allocations.get(),
            frees: self.frees.get(),
            cache_hits: self.cache_hits.get(),
        }
    }

    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.allocations.set(0);
        self.frees.set(0);
        self.cache_hits.set(0);
    }
}

/// Measures the I/O performed between construction and [`StatScope::finish`].
///
/// ```
/// use segdb_pager::{Pager, PagerConfig, StatScope};
/// let pager = Pager::new(PagerConfig::default());
/// let id = pager.allocate().unwrap();
/// let scope = StatScope::begin(&pager);
/// pager.with_page(id, |_| ()).unwrap();
/// let delta = scope.finish();
/// assert_eq!(delta.reads, 1);
/// ```
#[must_use = "a StatScope measures nothing unless finished"]
pub struct StatScope<'p> {
    pager: &'p crate::Pager,
    start: IoStats,
}

impl<'p> StatScope<'p> {
    /// Start measuring on `pager`.
    pub fn begin(pager: &'p crate::Pager) -> Self {
        StatScope {
            pager,
            start: pager.stats(),
        }
    }

    /// Stop measuring and return the I/O performed inside the scope.
    pub fn finish(self) -> IoStats {
        self.pager.stats() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = IoStats {
            reads: 5,
            writes: 3,
            allocations: 2,
            frees: 1,
            cache_hits: 7,
        };
        let b = IoStats {
            reads: 1,
            writes: 1,
            allocations: 1,
            frees: 0,
            cache_hits: 2,
        };
        assert_eq!((a + b) - b, a);
        assert_eq!((a + b).total_io(), 10);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        c.record_read();
        c.record_read();
        c.record_write();
        c.record_alloc();
        c.record_free();
        c.record_hit();
        let s = c.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.live_pages(), 0);
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }
}
