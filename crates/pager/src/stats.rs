//! I/O accounting.
//!
//! Every complexity claim in the paper is a statement about the number of
//! block transfers, so the counters here are the primary measurement
//! instrument of the whole reproduction. Two banks record every event:
//!
//! * the pager's own [`Counters`] — relaxed atomics, so totals stay exact
//!   when many threads query one database over a shared reference;
//! * a **per-thread** bank ([`thread_io`]) — plain `Cell`s in a
//!   thread-local, so a [`StatScope`] around one query measures exactly
//!   that thread's I/O even while other worker threads hammer the same
//!   pager. This is what keeps `QueryTrace.io` truthful under the
//!   concurrent serving path (`segdb-server`).
//!
//! On a single thread both banks agree, so all pre-existing
//! deterministic I/O-count experiments are unchanged.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of I/O activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Physical page reads (cache hits are *not* reads).
    pub reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Pages newly allocated (an allocation is also counted as a write of
    /// the zeroed page image when it is first materialized by the caller,
    /// not here).
    pub allocations: u64,
    /// Pages returned to the free list.
    pub frees: u64,
    /// Reads satisfied by the buffer pool without touching the disk.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served by the pinned-resident tier
    /// (root/internal levels exempt from eviction).
    pub pin_hits: u64,
}

impl IoStats {
    /// Total physical transfers — the paper's "I/O operations".
    #[inline]
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently attributable to the structure (allocs − frees).
    #[inline]
    pub fn live_pages(&self) -> i64 {
        self.allocations as i64 - self.frees as i64
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            allocations: self.allocations + rhs.allocations,
            frees: self.frees + rhs.frees,
            cache_hits: self.cache_hits + rhs.cache_hits,
            pin_hits: self.pin_hits + rhs.pin_hits,
        }
    }
}

impl Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            allocations: self.allocations - rhs.allocations,
            frees: self.frees - rhs.frees,
            cache_hits: self.cache_hits - rhs.cache_hits,
            pin_hits: self.pin_hits - rhs.pin_hits,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} allocs={} frees={} hits={} pinned={}",
            self.reads, self.writes, self.allocations, self.frees, self.cache_hits, self.pin_hits
        )
    }
}

#[derive(Default)]
struct ThreadBank {
    reads: Cell<u64>,
    writes: Cell<u64>,
    allocations: Cell<u64>,
    frees: Cell<u64>,
    cache_hits: Cell<u64>,
    pin_hits: Cell<u64>,
}

thread_local! {
    static THREAD_IO: ThreadBank = ThreadBank::default();
}

/// Cumulative I/O performed **by the current thread** since it started
/// (across every pager it touched). [`StatScope`] diffs this, so
/// per-query I/O attribution survives concurrent queries on a shared
/// database.
pub fn thread_io() -> IoStats {
    THREAD_IO.with(|t| IoStats {
        reads: t.reads.get(),
        writes: t.writes.get(),
        allocations: t.allocations.get(),
        frees: t.frees.get(),
        cache_hits: t.cache_hits.get(),
        pin_hits: t.pin_hits.get(),
    })
}

macro_rules! bump_thread {
    ($field:ident) => {
        THREAD_IO.with(|t| t.$field.set(t.$field.get() + 1))
    };
}

/// Interior-mutable counter bank owned by the pager. Relaxed atomics:
/// exact totals, no ordering guarantees needed (snapshots are advisory
/// aggregates, never synchronization points).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
    cache_hits: AtomicU64,
    pin_hits: AtomicU64,
}

impl Counters {
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        bump_thread!(reads);
    }
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        bump_thread!(writes);
    }
    #[inline]
    pub fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        bump_thread!(allocations);
    }
    #[inline]
    pub fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        bump_thread!(frees);
    }
    #[inline]
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        bump_thread!(cache_hits);
    }
    /// A pinned-tier hit is *also* a cache hit; callers record both so
    /// `reads + cache_hits` keeps counting every page access.
    #[inline]
    pub fn record_pin_hit(&self) {
        self.pin_hits.fetch_add(1, Ordering::Relaxed);
        bump_thread!(pin_hits);
    }

    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            pin_hits: self.pin_hits.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.pin_hits.store(0, Ordering::Relaxed);
    }
}

/// Measures the I/O performed between construction and [`StatScope::finish`]
/// **on the current thread**. Single-threaded this equals the pager-level
/// delta; under concurrent queries it isolates the calling thread's I/O
/// from every other worker's.
///
/// ```
/// use segdb_pager::{Pager, PagerConfig, StatScope};
/// let pager = Pager::new(PagerConfig::default());
/// let id = pager.allocate().unwrap();
/// let scope = StatScope::begin(&pager);
/// pager.with_page(id, |_| ()).unwrap();
/// let delta = scope.finish();
/// assert_eq!(delta.reads, 1);
/// ```
#[must_use = "a StatScope measures nothing unless finished"]
pub struct StatScope<'p> {
    _pager: &'p crate::Pager,
    start: IoStats,
}

impl<'p> StatScope<'p> {
    /// Start measuring on `pager`.
    pub fn begin(pager: &'p crate::Pager) -> Self {
        StatScope {
            _pager: pager,
            start: thread_io(),
        }
    }

    /// Stop measuring and return the I/O performed inside the scope.
    pub fn finish(self) -> IoStats {
        thread_io() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = IoStats {
            reads: 5,
            writes: 3,
            allocations: 2,
            frees: 1,
            cache_hits: 7,
            pin_hits: 4,
        };
        let b = IoStats {
            reads: 1,
            writes: 1,
            allocations: 1,
            frees: 0,
            cache_hits: 2,
            pin_hits: 1,
        };
        assert_eq!((a + b) - b, a);
        assert_eq!((a + b).total_io(), 10);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        c.record_read();
        c.record_read();
        c.record_write();
        c.record_alloc();
        c.record_free();
        c.record_hit();
        let s = c.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.live_pages(), 0);
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn thread_bank_is_per_thread() {
        let c = std::sync::Arc::new(Counters::default());
        let before = thread_io();
        let c2 = std::sync::Arc::clone(&c);
        std::thread::spawn(move || {
            for _ in 0..10 {
                c2.record_read();
            }
        })
        .join()
        .unwrap();
        // The other thread's reads land in the shared bank but not ours.
        assert_eq!(c.snapshot().reads, 10);
        assert_eq!(thread_io().reads, before.reads);
    }
}
