//! A persistent, single-file page store.
//!
//! Layout (`P` = page size):
//!
//! ```text
//! offset 0        header: "SEGDBPG1" ∥ page_size:u32 ∥ capacity:u64 ∥
//!                         free_head:u32 ∥ free_count:u64 ∥
//!                         meta_len:u32 ∥ meta bytes
//! offset (i+1)·P  page i
//! ```
//!
//! Freed pages are chained *in place*: a freed page's image starts with
//! the marker `"FREEPAGE"` followed by the next free id, so the free
//! pool needs no external bitmap and reopening costs one walk of the
//! chain. The `meta` area is the **superblock**: an opaque blob the
//! database layer uses to persist its root states
//! ([`crate::Pager::set_meta`]).
//!
//! The header is kept in memory and written on [`Device::sync`] (and on
//! drop); page writes go straight to the file. Callers needing
//! durability points call `sync`, which also `fsync`s.

use crate::device::Device;
use crate::error::{PagerError, Result};
use crate::{PageId, NULL_PAGE};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SEGDBPG1";
const FREE_MARK: &[u8; 8] = b"FREEPAGE";
const HEADER_FIXED: usize = 8 + 4 + 8 + 4 + 8 + 4;

fn io_err(e: io::Error) -> PagerError {
    PagerError::Io(e.to_string())
}

/// Persistent page store. See module docs.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    page_size: usize,
    capacity: u64,
    free_head: PageId,
    free_set: HashSet<PageId>,
    meta: Vec<u8>,
    header_dirty: bool,
}

impl FileDevice {
    /// Create a new store at `path` (truncating any existing file).
    ///
    /// `page_size` must be at least 128 bytes (so the header's fixed
    /// fields plus a small superblock fit in the header page).
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<Self> {
        if page_size < 128 {
            return Err(PagerError::PageOverflow {
                what: "file device header",
                requested: 128,
                capacity: page_size,
            });
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        let mut dev = FileDevice {
            file,
            page_size,
            capacity: 0,
            free_head: NULL_PAGE,
            free_set: HashSet::new(),
            meta: Vec::new(),
            header_dirty: true,
        };
        dev.write_header()?;
        Ok(dev)
    }

    /// Open an existing store, rebuilding the free pool from its chain.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        // Read the fixed header prefix first to learn the page size.
        let mut fixed = [0u8; HEADER_FIXED];
        file.read_exact_at(&mut fixed, 0).map_err(io_err)?;
        if &fixed[..8] != MAGIC {
            return Err(PagerError::Corrupt("bad file-device magic"));
        }
        let page_size = u32::from_le_bytes(fixed[8..12].try_into().unwrap()) as usize;
        let capacity = u64::from_le_bytes(fixed[12..20].try_into().unwrap());
        let free_head = u32::from_le_bytes(fixed[20..24].try_into().unwrap());
        let free_count = u64::from_le_bytes(fixed[24..32].try_into().unwrap());
        let meta_len = u32::from_le_bytes(fixed[32..36].try_into().unwrap()) as usize;
        if meta_len > page_size - HEADER_FIXED {
            return Err(PagerError::Corrupt("file-device meta length"));
        }
        let mut meta = vec![0u8; meta_len];
        file.read_exact_at(&mut meta, HEADER_FIXED as u64)
            .map_err(io_err)?;

        let mut dev = FileDevice {
            file,
            page_size,
            capacity,
            free_head,
            free_set: HashSet::new(),
            meta,
            header_dirty: false,
        };
        // Walk the free chain.
        let mut cur = free_head;
        let mut buf = vec![0u8; page_size];
        while cur != NULL_PAGE {
            if dev.free_set.len() as u64 > free_count {
                return Err(PagerError::Corrupt("free chain longer than recorded"));
            }
            dev.read_raw(cur, &mut buf)?;
            if &buf[..8] != FREE_MARK {
                return Err(PagerError::Corrupt("free chain hits a live page"));
            }
            dev.free_set.insert(cur);
            cur = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        }
        if dev.free_set.len() as u64 != free_count {
            return Err(PagerError::Corrupt("free count mismatch"));
        }
        Ok(dev)
    }

    fn offset(&self, id: PageId) -> u64 {
        (id as u64 + 1) * self.page_size as u64
    }

    fn read_raw(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.file
            .read_exact_at(buf, self.offset(id))
            .map_err(io_err)
    }

    fn write_raw(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.file.write_all_at(buf, self.offset(id)).map_err(io_err)
    }

    fn check(&self, id: PageId) -> Result<()> {
        if (id as u64) >= self.capacity {
            return Err(PagerError::OutOfBounds(id));
        }
        if self.free_set.contains(&id) {
            return Err(PagerError::Freed(id));
        }
        Ok(())
    }

    fn write_header(&mut self) -> Result<()> {
        let mut page = vec![0u8; self.page_size];
        page[..8].copy_from_slice(MAGIC);
        page[8..12].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        page[12..20].copy_from_slice(&self.capacity.to_le_bytes());
        page[20..24].copy_from_slice(&self.free_head.to_le_bytes());
        page[24..32].copy_from_slice(&(self.free_set.len() as u64).to_le_bytes());
        page[32..36].copy_from_slice(&(self.meta.len() as u32).to_le_bytes());
        page[36..36 + self.meta.len()].copy_from_slice(&self.meta);
        self.file.write_all_at(&page, 0).map_err(io_err)?;
        self.header_dirty = false;
        Ok(())
    }
}

impl Device for FileDevice {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn check(&self, id: PageId) -> Result<()> {
        FileDevice::check(self, id)
    }

    fn live_pages(&self) -> usize {
        self.capacity as usize - self.free_set.len()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity as usize
    }

    fn allocate(&mut self) -> Result<PageId> {
        let zero = vec![0u8; self.page_size];
        let id = if self.free_head != NULL_PAGE {
            let id = self.free_head;
            let mut buf = vec![0u8; self.page_size];
            self.read_raw(id, &mut buf)?;
            self.free_head = u32::from_le_bytes(buf[8..12].try_into().unwrap());
            self.free_set.remove(&id);
            id
        } else {
            let id = self.capacity as PageId;
            self.capacity += 1;
            id
        };
        self.write_raw(id, &zero)?;
        self.header_dirty = true;
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check(id)?;
        let mut buf = vec![0u8; self.page_size];
        buf[..8].copy_from_slice(FREE_MARK);
        buf[8..12].copy_from_slice(&self.free_head.to_le_bytes());
        self.write_raw(id, &buf)?;
        self.free_set.insert(id);
        self.free_head = id;
        self.header_dirty = true;
        Ok(())
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.check(id)?;
        self.read_raw(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        self.check(id)?;
        self.write_raw(id, buf)
    }

    fn sync(&mut self) -> Result<()> {
        if self.header_dirty {
            self.write_header()?;
        }
        self.file.sync_all().map_err(io_err)
    }

    fn set_meta(&mut self, meta: &[u8]) -> Result<()> {
        if meta.len() > self.page_size - HEADER_FIXED {
            return Err(PagerError::PageOverflow {
                what: "file device metadata",
                requested: meta.len(),
                capacity: self.page_size - HEADER_FIXED,
            });
        }
        self.meta = meta.to_vec();
        self.header_dirty = true;
        Ok(())
    }

    fn get_meta(&self) -> Result<Vec<u8>> {
        Ok(self.meta.clone())
    }
}

impl Drop for FileDevice {
    fn drop(&mut self) {
        if self.header_dirty {
            let _ = self.write_header();
            let _ = self.file.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("segdb-filedev-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        {
            let mut d = FileDevice::create(&path, 256).unwrap();
            let a = d.allocate().unwrap();
            let b = d.allocate().unwrap();
            let mut img = vec![0u8; 256];
            img[0] = 0xAA;
            d.write(a, &img).unwrap();
            img[0] = 0xBB;
            d.write(b, &img).unwrap();
            d.set_meta(b"superblock!").unwrap();
            d.sync().unwrap();
        }
        {
            let d = FileDevice::open(&path).unwrap();
            assert_eq!(d.page_size(), 256);
            assert_eq!(d.live_pages(), 2);
            assert_eq!(d.get_meta().unwrap(), b"superblock!");
            let mut buf = vec![0u8; 256];
            d.read(0, &mut buf).unwrap();
            assert_eq!(buf[0], 0xAA);
            d.read(1, &mut buf).unwrap();
            assert_eq!(buf[0], 0xBB);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_chain_survives_reopen() {
        let path = tmp("freechain");
        {
            let mut d = FileDevice::create(&path, 128).unwrap();
            let ids: Vec<PageId> = (0..5).map(|_| d.allocate().unwrap()).collect();
            d.free(ids[1]).unwrap();
            d.free(ids[3]).unwrap();
            d.sync().unwrap();
        }
        {
            let mut d = FileDevice::open(&path).unwrap();
            assert_eq!(d.live_pages(), 3);
            assert_eq!(d.capacity_pages(), 5);
            let mut buf = vec![0u8; 128];
            assert_eq!(d.read(1, &mut buf).unwrap_err(), PagerError::Freed(1));
            assert_eq!(d.read(3, &mut buf).unwrap_err(), PagerError::Freed(3));
            assert_eq!(
                d.read(99, &mut buf).unwrap_err(),
                PagerError::OutOfBounds(99)
            );
            // Recycling pops the most recently freed first.
            assert_eq!(d.allocate().unwrap(), 3);
            assert_eq!(d.allocate().unwrap(), 1);
            assert_eq!(d.allocate().unwrap(), 5);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, vec![7u8; 512]).unwrap();
        assert!(matches!(
            FileDevice::open(&path),
            Err(PagerError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_meta_rejected() {
        let path = tmp("bigmeta");
        let mut d = FileDevice::create(&path, 128).unwrap();
        assert!(d.set_meta(&vec![0u8; 1000]).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Mass-free every page, reopen, and verify the whole chain recycles
    /// LIFO before the capacity grows again.
    #[test]
    fn mass_free_recycles_the_whole_chain_after_reopen() {
        let path = tmp("massfree");
        const N: usize = 50;
        {
            let mut d = FileDevice::create(&path, 128).unwrap();
            let ids: Vec<PageId> = (0..N).map(|_| d.allocate().unwrap()).collect();
            for id in &ids {
                d.free(*id).unwrap();
            }
            d.sync().unwrap();
        }
        {
            let mut d = FileDevice::open(&path).unwrap();
            assert_eq!(d.live_pages(), 0);
            assert_eq!(d.capacity_pages(), N);
            // The chain pops most-recently-freed first: N-1, N-2, …, 0.
            for want in (0..N as PageId).rev() {
                assert_eq!(d.allocate().unwrap(), want);
            }
            // Chain exhausted: the next allocation grows the file.
            assert_eq!(d.allocate().unwrap(), N as PageId);
            assert_eq!(d.live_pages(), N + 1);
        }
        std::fs::remove_file(&path).ok();
    }

    /// A meta blob of exactly the maximum size must round-trip through
    /// sync + reopen; one byte more is refused.
    #[test]
    fn meta_at_maximum_size_roundtrips() {
        let path = tmp("maxmeta");
        let max = 256 - HEADER_FIXED;
        let blob: Vec<u8> = (0..max).map(|i| (i % 251) as u8).collect();
        {
            let mut d = FileDevice::create(&path, 256).unwrap();
            assert!(
                d.set_meta(&vec![0u8; max + 1]).is_err(),
                "one byte over the limit is refused"
            );
            d.set_meta(&blob).unwrap();
            d.sync().unwrap();
        }
        let d = FileDevice::open(&path).unwrap();
        assert_eq!(d.get_meta().unwrap(), blob);
        std::fs::remove_file(&path).ok();
    }

    /// An empty-but-synced store (no pages, no meta) reopens cleanly.
    #[test]
    fn reopen_of_empty_but_synced_store() {
        let path = tmp("emptysync");
        {
            let mut d = FileDevice::create(&path, 128).unwrap();
            d.sync().unwrap();
        }
        {
            let mut d = FileDevice::open(&path).unwrap();
            assert_eq!(d.live_pages(), 0);
            assert_eq!(d.capacity_pages(), 0);
            assert!(d.get_meta().unwrap().is_empty());
            // And the store is fully usable after the empty reopen.
            let id = d.allocate().unwrap();
            assert_eq!(id, 0);
            d.sync().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_persists_header() {
        let path = tmp("dropsync");
        {
            let mut d = FileDevice::create(&path, 128).unwrap();
            d.allocate().unwrap();
            d.set_meta(b"x").unwrap();
            // no explicit sync: Drop must flush the header
        }
        let d = FileDevice::open(&path).unwrap();
        assert_eq!(d.capacity_pages(), 1);
        assert_eq!(d.get_meta().unwrap(), b"x");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod pager_integration {
    use super::*;
    use crate::{Pager, PagerConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("segdb-fd-pager-{name}-{}", std::process::id()));
        p
    }

    /// The pager's cache over a file device: dirty pages only reach the
    /// file at eviction/flush, and content survives close/reopen.
    #[test]
    fn cached_file_pager_roundtrip() {
        let path = tmp("cached");
        let mut ids = Vec::new();
        {
            let dev = FileDevice::create(&path, 256).unwrap();
            let pager = Pager::with_device(Box::new(dev), 4);
            for i in 0..10u8 {
                let id = pager.allocate().unwrap();
                pager.overwrite_page(id, |b| b[0] = i + 1).unwrap();
                ids.push(id);
            }
            // More pages than cache slots: some writes already landed.
            pager.sync().unwrap(); // flush the rest + header
            let s = pager.stats();
            assert_eq!(s.allocations, 10);
            assert_eq!(s.writes, 10, "each dirty page written exactly once");
        }
        {
            let dev = FileDevice::open(&path).unwrap();
            let pager = Pager::with_device(Box::new(dev), 0);
            for (i, &id) in ids.iter().enumerate() {
                pager
                    .with_page(id, |b| assert_eq!(b[0], i as u8 + 1))
                    .unwrap();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Equivalence: the same operation sequence on a memory disk and a
    /// file device produces identical logical content and identical
    /// uncached I/O counts.
    #[test]
    fn file_and_memory_devices_are_equivalent() {
        let path = tmp("equiv");
        let mem = Pager::new(PagerConfig {
            page_size: 128,
            cache_pages: 0,
        });
        let file = Pager::with_device(Box::new(FileDevice::create(&path, 128).unwrap()), 0);
        let mut xs = 0x9E3779B97F4A7C15u64;
        let mut live: Vec<crate::PageId> = Vec::new();
        for _ in 0..300 {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            match xs % 4 {
                0 => {
                    let a = mem.allocate().unwrap();
                    let b = file.allocate().unwrap();
                    assert_eq!(a, b, "allocation sequences agree");
                    live.push(a);
                }
                1 if !live.is_empty() => {
                    let id = live[(xs >> 8) as usize % live.len()];
                    let v = (xs >> 16) as u8;
                    mem.overwrite_page(id, |x| x[0] = v).unwrap();
                    file.overwrite_page(id, |x| x[0] = v).unwrap();
                }
                2 if !live.is_empty() => {
                    let id = live.swap_remove((xs >> 8) as usize % live.len());
                    mem.free(id).unwrap();
                    file.free(id).unwrap();
                }
                _ if !live.is_empty() => {
                    let id = live[(xs >> 8) as usize % live.len()];
                    let a = mem.with_page(id, |x| x[0]).unwrap();
                    let b = file.with_page(id, |x| x[0]).unwrap();
                    assert_eq!(a, b);
                }
                _ => {}
            }
        }
        assert_eq!(mem.live_pages(), file.live_pages());
        assert_eq!(mem.stats(), file.stats());
        std::fs::remove_file(&path).ok();
    }
}
