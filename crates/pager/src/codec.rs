//! Bounds-checked little-endian page codecs.
//!
//! Every node type in the workspace serializes through these helpers, so a
//! node image is a deterministic byte layout and "fits in one page" is a
//! checked property, not an assumption.

use crate::error::{PagerError, Result};

/// Sequential reader over a page image.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PagerError::CodecOverflow {
                offset: self.pos,
                requested: n,
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }
}

/// Sequential writer over a page image.
#[derive(Debug)]
pub struct ByteWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> ByteWriter<'a> {
    /// Write from the start of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        ByteWriter { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Advance `n` bytes without writing (existing bytes are preserved —
    /// for in-place page edits that only touch some fields).
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.slot(n).map(|_| ())
    }

    fn slot(&mut self, n: usize) -> Result<&mut [u8]> {
        if self.remaining() < n {
            return Err(PagerError::CodecOverflow {
                offset: self.pos,
                requested: n,
                available: self.buf.len(),
            });
        }
        let s = &mut self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) -> Result<()> {
        self.slot(1)?[0] = v;
        Ok(())
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> Result<()> {
        self.slot(2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> Result<()> {
        self.slot(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> Result<()> {
        self.slot(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) -> Result<()> {
        self.u64(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut page = vec![0u8; 32];
        {
            let mut w = ByteWriter::new(&mut page);
            w.u8(0xAB).unwrap();
            w.u16(0xCDEF).unwrap();
            w.u32(0xDEADBEEF).unwrap();
            w.u64(0x0123_4567_89AB_CDEF).unwrap();
            w.i64(-42).unwrap();
            assert_eq!(w.position(), 1 + 2 + 4 + 8 + 8);
        }
        let mut r = ByteReader::new(&page);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.remaining(), 32 - 23);
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let mut page = vec![0u8; 3];
        let mut w = ByteWriter::new(&mut page);
        w.u16(1).unwrap();
        let err = w.u32(2).unwrap_err();
        assert!(matches!(
            err,
            PagerError::CodecOverflow { requested: 4, .. }
        ));
        let mut r = ByteReader::new(&page);
        r.skip(2).unwrap();
        assert!(r.u64().is_err());
        assert!(r.u8().is_ok(), "failed read must not consume");
    }

    #[test]
    fn skip_and_position() {
        let page = [1u8, 2, 3, 4];
        let mut r = ByteReader::new(&page);
        r.skip(3).unwrap();
        assert_eq!(r.position(), 3);
        assert_eq!(r.u8().unwrap(), 4);
        assert!(r.skip(1).is_err());
    }
}
