//! A strict-LRU buffer pool.
//!
//! With capacity 0 (the default) the pager bypasses the pool entirely and
//! every access is a physical I/O — exactly the cost model the paper's
//! bounds are stated in. Non-zero capacities are used by the buffer-pool
//! ablation experiment (E9/E10 in DESIGN.md) to show how much of each
//! structure's access pattern is re-use.
//!
//! The implementation is an intrusive doubly-linked list over an arena of
//! entries plus a `HashMap` index: O(1) hit, O(1) eviction, no per-access
//! allocation once warm.

use crate::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Write-back LRU cache of page images.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<PageId, usize>,
    arena: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

/// A page evicted from the cache; `dirty` pages must be written back.
#[derive(Debug)]
pub struct Evicted {
    /// Which page was evicted.
    pub page: PageId,
    /// Its (possibly modified) image.
    pub data: Box<[u8]>,
    /// Whether the image differs from the disk copy.
    pub dirty: bool,
}

impl LruCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.arena[idx].prev, self.arena[idx].next);
        if prev != NIL {
            self.arena[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.arena[idx].prev = NIL;
        self.arena[idx].next = self.head;
        if self.head != NIL {
            self.arena[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `page`, marking it most-recently-used. Returns its image.
    pub fn get(&mut self, page: PageId) -> Option<&[u8]> {
        let idx = *self.map.get(&page)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.arena[idx].data)
    }

    /// Look up `page` for modification; marks it dirty and MRU.
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut [u8]> {
        let idx = *self.map.get(&page)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        self.arena[idx].dirty = true;
        Some(&mut self.arena[idx].data)
    }

    /// Insert a page image (clean unless `dirty`), evicting the LRU entry
    /// if the pool is full. Returns the eviction victim, if any.
    ///
    /// # Panics
    /// Panics if the page is already resident (callers always `get` first)
    /// or if capacity is zero.
    pub fn insert(&mut self, page: PageId, data: Box<[u8]>, dirty: bool) -> Option<Evicted> {
        assert!(self.capacity > 0, "insert into zero-capacity cache");
        assert!(!self.map.contains_key(&page), "page already cached");
        let victim = if self.map.len() >= self.capacity {
            let idx = self.tail;
            let victim_page = self.arena[idx].page;
            self.unlink(idx);
            self.map.remove(&victim_page);
            let data = std::mem::take(&mut self.arena[idx].data);
            let dirty = self.arena[idx].dirty;
            self.free.push(idx);
            Some(Evicted {
                page: victim_page,
                data,
                dirty,
            })
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i] = Entry {
                    page,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.arena.push(Entry {
                    page,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                self.arena.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        victim
    }

    /// Remove a page (used when the page is freed). Returns its image if it
    /// was resident.
    pub fn remove(&mut self, page: PageId) -> Option<Evicted> {
        let idx = self.map.remove(&page)?;
        self.unlink(idx);
        let data = std::mem::take(&mut self.arena[idx].data);
        let dirty = self.arena[idx].dirty;
        self.free.push(idx);
        Some(Evicted { page, data, dirty })
    }

    /// Drain every resident page (for flushing), LRU first.
    pub fn drain(&mut self) -> Vec<Evicted> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let prev = self.arena[idx].prev;
            let page = self.arena[idx].page;
            let data = std::mem::take(&mut self.arena[idx].data);
            out.push(Evicted {
                page,
                data,
                dirty: self.arena[idx].dirty,
            });
            self.free.push(idx);
            idx = prev;
        }
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(b: u8) -> Box<[u8]> {
        vec![b; 4].into_boxed_slice()
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, img(1), false).is_none());
        assert!(c.insert(2, img(2), false).is_none());
        // touch 1 so 2 becomes LRU
        assert_eq!(c.get(1).unwrap()[0], 1);
        let ev = c.insert(3, img(3), false).unwrap();
        assert_eq!(ev.page, 2);
        assert!(!ev.dirty);
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_mut_marks_dirty_and_eviction_reports_it() {
        let mut c = LruCache::new(1);
        c.insert(5, img(5), false);
        c.get_mut(5).unwrap()[0] = 9;
        let ev = c.insert(6, img(6), false).unwrap();
        assert_eq!(ev.page, 5);
        assert!(ev.dirty);
        assert_eq!(ev.data[0], 9);
    }

    #[test]
    fn remove_and_drain() {
        let mut c = LruCache::new(3);
        c.insert(1, img(1), false);
        c.insert(2, img(2), true);
        c.insert(3, img(3), false);
        let r = c.remove(2).unwrap();
        assert!(r.dirty);
        assert!(c.remove(2).is_none());
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        // LRU-first drain order: 1 then 3
        assert_eq!(drained[0].page, 1);
        assert_eq!(drained[1].page, 3);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..20u32 {
            c.insert(i, img(i as u8), false);
        }
        assert_eq!(c.len(), 2);
        assert!(c.arena.len() <= 3, "arena must recycle slots");
        assert_eq!(c.get(19).unwrap()[0], 19);
        assert_eq!(c.get(18).unwrap()[0], 18);
    }
}
