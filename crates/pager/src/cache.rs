//! A strict-LRU buffer pool.
//!
//! With capacity 0 (the default) the pager bypasses the pool entirely and
//! every access is a physical I/O — exactly the cost model the paper's
//! bounds are stated in. Non-zero capacities are used by the buffer-pool
//! ablation experiment (E9/E10 in DESIGN.md) to show how much of each
//! structure's access pattern is re-use, and by the serving layer
//! (`segdb-server`), which wraps many of these in the sharded pool of
//! [`crate::shard::ShardedCache`].
//!
//! Page images are stored as `Arc<[u8]>`: a cache hit hands the caller a
//! reference-counted clone instead of a copy, so a concurrent reader can
//! release the shard lock *before* decoding the node image
//! ([`LruCache::get_cloned`]). Mutation replaces the whole image (the
//! pager always produces fully rebuilt page images), so no `&mut [u8]`
//! access into the cache is needed and shared images are never written
//! through.
//!
//! The implementation is an intrusive doubly-linked list over an arena of
//! entries plus a `HashMap` index: O(1) hit, O(1) eviction, no per-access
//! allocation once warm.

use crate::PageId;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    page: PageId,
    data: Arc<[u8]>,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Write-back LRU cache of page images.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<PageId, usize>,
    arena: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

/// A page evicted from the cache; `dirty` pages must be written back.
#[derive(Debug)]
pub struct Evicted {
    /// Which page was evicted.
    pub page: PageId,
    /// Its (possibly modified) image.
    pub data: Arc<[u8]>,
    /// Whether the image differs from the disk copy.
    pub dirty: bool,
}

fn empty_image() -> Arc<[u8]> {
    Arc::from(Vec::new().into_boxed_slice())
}

impl LruCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.arena[idx].prev, self.arena[idx].next);
        if prev != NIL {
            self.arena[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.arena[idx].prev = NIL;
        self.arena[idx].next = self.head;
        if self.head != NIL {
            self.arena[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Look up `page`, marking it most-recently-used. Returns its image.
    pub fn get(&mut self, page: PageId) -> Option<&Arc<[u8]>> {
        let idx = *self.map.get(&page)?;
        self.touch(idx);
        Some(&self.arena[idx].data)
    }

    /// Look up `page`, marking it MRU, and return a reference-counted
    /// clone of its image. The clone is O(1) — callers use this to copy
    /// *the handle*, release whatever lock guards the cache, and decode
    /// the bytes outside the critical section.
    pub fn get_cloned(&mut self, page: PageId) -> Option<Arc<[u8]>> {
        self.get(page).cloned()
    }

    /// Insert a page image (clean unless `dirty`), evicting the LRU entry
    /// if the pool is full. Returns the eviction victim, if any.
    ///
    /// # Panics
    /// Panics if the page is already resident (use [`LruCache::upsert`]
    /// when residency is unknown) or if capacity is zero.
    pub fn insert(&mut self, page: PageId, data: Arc<[u8]>, dirty: bool) -> Option<Evicted> {
        assert!(self.capacity > 0, "insert into zero-capacity cache");
        assert!(!self.map.contains_key(&page), "page already cached");
        let victim = if self.map.len() >= self.capacity {
            let idx = self.tail;
            let victim_page = self.arena[idx].page;
            self.unlink(idx);
            self.map.remove(&victim_page);
            let data = std::mem::replace(&mut self.arena[idx].data, empty_image());
            let dirty = self.arena[idx].dirty;
            self.free.push(idx);
            Some(Evicted {
                page: victim_page,
                data,
                dirty,
            })
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i] = Entry {
                    page,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.arena.push(Entry {
                    page,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                self.arena.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        victim
    }

    /// Insert or replace `page` with a new image, marking it MRU. The
    /// dirty bit is OR-ed in: replacing a dirty image with a clean one
    /// keeps the entry dirty (the disk copy is still stale). Returns the
    /// eviction victim if an insert displaced the LRU entry.
    pub fn upsert(&mut self, page: PageId, data: Arc<[u8]>, dirty: bool) -> Option<Evicted> {
        if let Some(&idx) = self.map.get(&page) {
            self.touch(idx);
            self.arena[idx].data = data;
            self.arena[idx].dirty |= dirty;
            return None;
        }
        self.insert(page, data, dirty)
    }

    /// Insert `page` only if absent (readers admitting a freshly fetched
    /// image must not clobber a concurrently admitted — possibly dirty —
    /// copy). When the page is already resident it is only touched MRU.
    pub fn insert_if_absent(
        &mut self,
        page: PageId,
        data: Arc<[u8]>,
        dirty: bool,
    ) -> Option<Evicted> {
        if let Some(&idx) = self.map.get(&page) {
            self.touch(idx);
            return None;
        }
        self.insert(page, data, dirty)
    }

    /// Write every dirty resident page back through `writeback` (LRU
    /// first) and mark it clean, keeping all pages resident. Unlike
    /// [`LruCache::drain`] the pool stays warm — this is how a freshly
    /// built database cleans its pool before entering concurrent
    /// serving. A `writeback` error aborts the sweep; already-cleaned
    /// entries stay clean (their images were written).
    pub fn clean_all<E>(
        &mut self,
        writeback: &mut impl FnMut(PageId, &Arc<[u8]>) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut idx = self.tail;
        while idx != NIL {
            if self.arena[idx].dirty {
                writeback(self.arena[idx].page, &self.arena[idx].data)?;
                self.arena[idx].dirty = false;
            }
            idx = self.arena[idx].prev;
        }
        Ok(())
    }

    /// Remove a page (used when the page is freed). Returns its image if it
    /// was resident.
    pub fn remove(&mut self, page: PageId) -> Option<Evicted> {
        let idx = self.map.remove(&page)?;
        self.unlink(idx);
        let data = std::mem::replace(&mut self.arena[idx].data, empty_image());
        let dirty = self.arena[idx].dirty;
        self.free.push(idx);
        Some(Evicted { page, data, dirty })
    }

    /// Drain every resident page (for flushing), LRU first.
    pub fn drain(&mut self) -> Vec<Evicted> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let prev = self.arena[idx].prev;
            let page = self.arena[idx].page;
            let data = std::mem::replace(&mut self.arena[idx].data, empty_image());
            out.push(Evicted {
                page,
                data,
                dirty: self.arena[idx].dirty,
            });
            self.free.push(idx);
            idx = prev;
        }
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(b: u8) -> Arc<[u8]> {
        Arc::from(vec![b; 4].into_boxed_slice())
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, img(1), false).is_none());
        assert!(c.insert(2, img(2), false).is_none());
        // touch 1 so 2 becomes LRU
        assert_eq!(c.get(1).unwrap()[0], 1);
        let ev = c.insert(3, img(3), false).unwrap();
        assert_eq!(ev.page, 2);
        assert!(!ev.dirty);
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn upsert_marks_dirty_and_eviction_reports_it() {
        let mut c = LruCache::new(1);
        c.insert(5, img(5), false);
        c.upsert(5, img(9), true);
        let ev = c.insert(6, img(6), false).unwrap();
        assert_eq!(ev.page, 5);
        assert!(ev.dirty);
        assert_eq!(ev.data[0], 9);
    }

    #[test]
    fn upsert_keeps_dirty_bit_sticky() {
        let mut c = LruCache::new(1);
        c.insert(5, img(5), true);
        c.upsert(5, img(7), false);
        let ev = c.insert(6, img(6), false).unwrap();
        assert!(ev.dirty, "dirty image replaced by clean one stays dirty");
        assert_eq!(ev.data[0], 7);
    }

    #[test]
    fn insert_if_absent_preserves_existing_image() {
        let mut c = LruCache::new(2);
        c.insert(1, img(1), true);
        assert!(c.insert_if_absent(1, img(9), false).is_none());
        assert_eq!(c.get(1).unwrap()[0], 1, "existing image kept");
        assert!(c.insert_if_absent(2, img(2), false).is_none());
        assert_eq!(c.get(2).unwrap()[0], 2, "absent page admitted");
    }

    #[test]
    fn get_cloned_shares_the_image() {
        let mut c = LruCache::new(1);
        c.insert(3, img(3), false);
        let a = c.get_cloned(3).unwrap();
        let b = c.get_cloned(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "clones share one allocation");
        assert_eq!(a[0], 3);
    }

    #[test]
    fn remove_and_drain() {
        let mut c = LruCache::new(3);
        c.insert(1, img(1), false);
        c.insert(2, img(2), true);
        c.insert(3, img(3), false);
        let r = c.remove(2).unwrap();
        assert!(r.dirty);
        assert!(c.remove(2).is_none());
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        // LRU-first drain order: 1 then 3
        assert_eq!(drained[0].page, 1);
        assert_eq!(drained[1].page, 3);
    }

    #[test]
    fn clean_all_writes_dirty_pages_and_keeps_them_resident() {
        let mut c = LruCache::new(3);
        c.insert(1, img(1), true);
        c.insert(2, img(2), false);
        c.insert(3, img(3), true);
        let mut written = Vec::new();
        c.clean_all::<()>(&mut |page, data| {
            written.push((page, data[0]));
            Ok(())
        })
        .unwrap();
        // LRU-first, dirty pages only.
        assert_eq!(written, vec![(1, 1), (3, 3)]);
        assert_eq!(c.len(), 3, "pages stay resident");
        // Everything is clean now: a second sweep writes nothing.
        c.clean_all::<()>(&mut |_, _| panic!("no dirty pages left"))
            .unwrap();
        let ev = c.remove(1).unwrap();
        assert!(!ev.dirty);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..20u32 {
            c.insert(i, img(i as u8), false);
        }
        assert_eq!(c.len(), 2);
        assert!(c.arena.len() <= 3, "arena must recycle slots");
        assert_eq!(c.get(19).unwrap()[0], 19);
        assert_eq!(c.get(18).unwrap()[0], 18);
    }
}
