//! The [`Pager`]: counted, optionally cached access to the simulated disk.
//!
//! Design notes:
//!
//! * All methods take `&self`, and the pager is `Send + Sync`: queries
//!   over an index must be expressible through a shared reference — and,
//!   since the serving layer (`segdb-server`), from many threads over one
//!   `Arc` — while still counting I/O and updating the LRU. The device
//!   lives behind an `RwLock` (concurrent page reads, exclusive writes),
//!   the buffer pool is a sharded [`ShardedCache`] of per-shard
//!   `Mutex<LruCache>`s, and the counters are relaxed atomics plus a
//!   per-thread bank (see [`crate::stats`]).
//! * Read closures receive the page image as `&[u8]` backed by an
//!   `Arc<[u8]>`: a cache hit clones the handle and releases the shard
//!   lock *before* the closure decodes the node, so no lock is held
//!   across index-node decoding and no memcpy happens on the hot path.
//!   The API stays fully re-entrant: tree traversals may read a child
//!   page from inside a parent-page closure.
//! * Three access verbs mirror the external-memory cost model:
//!   [`Pager::with_page`] (1 read), [`Pager::with_page_mut`]
//!   (read-modify-write: 1 read + 1 write), and [`Pager::overwrite_page`]
//!   (blind write of a freshly built node image: 1 write, no read).
//! * Concurrency contract: any number of concurrent **readers** are safe
//!   (`with_page`, `get_meta`, `stats`, …) — including when dirty pages
//!   are resident, because a dirty eviction victim is written back to
//!   the device *inside* the shard lock (lock order shard → device;
//!   device guards are never held across a cache call). The mutating
//!   verbs are also data-race-free, but interleaving them with readers
//!   gives no atomicity across pages — multi-page structural updates
//!   require external exclusive access (`&mut SegmentDatabase` at the
//!   facade). See DESIGN.md "Concurrent serving".

use crate::device::{Device, Disk};
use crate::error::Result;
use crate::shard::ShardedCache;
use crate::stats::{Counters, IoStats};
use crate::PageId;
use segdb_obs::trace::{emit, EventKind};
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Per-tier buffer-pool occupancy snapshot — the pinned-resident tier
/// versus the evictable LRU pool (see [`Pager::cache_tiers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTiers {
    /// Pages held resident by [`Pager::pin_pages`], exempt from
    /// eviction.
    pub pinned_pages: u64,
    /// Pages currently resident in the evictable LRU pool.
    pub evictable_pages: u64,
    /// Capacity of the evictable LRU pool, in pages.
    pub evictable_capacity: u64,
}

/// Construction parameters for a [`Pager`].
#[derive(Debug, Clone, Copy)]
pub struct PagerConfig {
    /// Bytes per page (block).
    pub page_size: usize,
    /// Buffer-pool capacity in pages. `0` disables caching, making every
    /// access a physical I/O — the paper's pure cost model.
    pub cache_pages: usize,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            page_size: 4096,
            cache_pages: 0,
        }
    }
}

/// Counted, optionally cached page-access layer. See module docs.
pub struct Pager {
    device: RwLock<Box<dyn Device>>,
    cache: ShardedCache,
    /// Pinned-resident tier: pages exempt from eviction (root/internal
    /// index levels). Checked before the LRU pool on every fetch;
    /// refreshed on store so it never serves a stale image. Mutated only
    /// by [`Pager::pin_pages`]/[`Pager::unpin_all`]/[`Pager::free`] —
    /// the read path takes the read lock only.
    pinned: RwLock<HashMap<PageId, Arc<[u8]>>>,
    counters: Counters,
    page_size: usize,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.page_size)
            .field("cache_shards", &self.cache.shard_count())
            .field("live_pages", &self.live_pages())
            .finish()
    }
}

impl Pager {
    /// Create a pager over a fresh in-memory disk.
    pub fn new(config: PagerConfig) -> Self {
        Self::with_device(Box::new(Disk::new(config.page_size)), config.cache_pages)
    }

    /// Create a pager over any [`Device`] — e.g. a persistent
    /// [`crate::file_device::FileDevice`] — with a single-shard (exact
    /// global-LRU) buffer pool.
    pub fn with_device(device: Box<dyn Device>, cache_pages: usize) -> Self {
        Self::with_device_sharded(device, cache_pages, 1)
    }

    /// Like [`Pager::with_device`], but splitting the buffer pool over
    /// `shards` independently locked LRU shards so concurrent readers
    /// contend per shard instead of on one pool lock. `shards = 1`
    /// reproduces the exact single-LRU eviction order of the cost-model
    /// experiments; the serving layer uses more.
    pub fn with_device_sharded(device: Box<dyn Device>, cache_pages: usize, shards: usize) -> Self {
        let page_size = device.page_size();
        Pager {
            device: RwLock::new(device),
            cache: ShardedCache::new(cache_pages, shards),
            pinned: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            page_size,
        }
    }

    fn device_read(&self) -> RwLockReadGuard<'_, Box<dyn Device>> {
        self.device.read().unwrap_or_else(|p| p.into_inner())
    }

    fn pinned_read(&self) -> RwLockReadGuard<'_, HashMap<PageId, Arc<[u8]>>> {
        self.pinned.read().unwrap_or_else(|p| p.into_inner())
    }

    fn pinned_write(&self) -> RwLockWriteGuard<'_, HashMap<PageId, Arc<[u8]>>> {
        self.pinned.write().unwrap_or_else(|p| p.into_inner())
    }

    fn device_write(&self) -> RwLockWriteGuard<'_, Box<dyn Device>> {
        self.device.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Store the database superblock blob on the device.
    pub fn set_meta(&self, meta: &[u8]) -> Result<()> {
        observe_io(self.device_write().set_meta(meta))
    }

    /// Fetch the database superblock blob.
    pub fn get_meta(&self) -> Result<Vec<u8>> {
        observe_io(self.device_read().get_meta())
    }

    /// Flush the buffer pool and durably sync the device.
    pub fn sync(&self) -> Result<()> {
        observe_io(self.flush_inner().and_then(|()| self.device_write().sync()))
    }

    /// Bytes per page.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of buffer-pool shards (1 = exact global LRU).
    pub fn cache_shards(&self) -> usize {
        self.cache.shard_count()
    }

    /// Snapshot of I/O counters.
    pub fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    /// Zero all I/O counters (space counters included).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Pages currently allocated on the disk (live, cache included).
    pub fn live_pages(&self) -> usize {
        self.device_read().live_pages()
    }

    /// High-water mark of the disk image in pages.
    pub fn capacity_pages(&self) -> usize {
        self.device_read().capacity_pages()
    }

    /// Allocate a zeroed page. Counts one allocation (not a write; the
    /// caller will `overwrite_page` it with real content).
    pub fn allocate(&self) -> Result<PageId> {
        let id = observe_io(self.device_write().allocate())?;
        self.counters.record_alloc();
        emit(EventKind::PageAlloc, u64::from(id), 0);
        Ok(id)
    }

    /// Pin pages into the resident tier: each is read once (counted as a
    /// normal access) and stays resident — and exempt from LRU eviction —
    /// until freed or [`Pager::unpin_all`]. Re-pinning an already pinned
    /// page refreshes its image. Returns how many pages are pinned after
    /// the call.
    pub fn pin_pages(&self, ids: &[PageId]) -> Result<usize> {
        for &id in ids {
            let img = observe_io(self.fetch(id))?;
            self.pinned_write().insert(id, img);
        }
        Ok(self.pinned_read().len())
    }

    /// Drop the whole pinned tier (images also resident in the LRU or on
    /// the device are unaffected — pinning never holds the only dirty
    /// copy).
    pub fn unpin_all(&self) {
        self.pinned_write().clear();
    }

    /// Pages currently held by the pinned-resident tier.
    pub fn pinned_pages(&self) -> usize {
        self.pinned_read().len()
    }

    /// Per-tier buffer-pool occupancy: the pinned tier vs the evictable
    /// LRU pool.
    pub fn cache_tiers(&self) -> CacheTiers {
        CacheTiers {
            pinned_pages: self.pinned_read().len() as u64,
            evictable_pages: self.cache.len() as u64,
            evictable_capacity: self.cache.capacity() as u64,
        }
    }

    /// Free a page, dropping any cached copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.pinned_write().remove(&id);
        self.cache.remove(id);
        observe_io(self.device_write().free(id))?;
        self.counters.record_free();
        emit(EventKind::PageFree, u64::from(id), 0);
        Ok(())
    }

    /// Fetch the current image of `id` through the cache. Counts a read
    /// on miss, a hit otherwise. No lock is held when this returns.
    fn fetch(&self, id: PageId) -> Result<Arc<[u8]>> {
        if let Some(img) = self.pinned_read().get(&id) {
            let img = Arc::clone(img);
            self.counters.record_hit();
            self.counters.record_pin_hit();
            emit(EventKind::CacheHit, u64::from(id), 0);
            return Ok(img);
        }
        if let Some(img) = self.cache.get_cloned(id) {
            self.counters.record_hit();
            emit(EventKind::CacheHit, u64::from(id), 0);
            return Ok(img);
        }
        let mut buf = vec![0u8; self.page_size];
        self.device_read().read(id, &mut buf)?;
        self.counters.record_read();
        emit(EventKind::PageRead, u64::from(id), 0);
        let img: Arc<[u8]> = buf.into();
        // insert_if_absent semantics: if another thread admitted (or a
        // writer dirtied) this page meanwhile, keep the resident image.
        // The dirty victim (if any) is written back while the shard lock
        // is still held — releasing first would let a concurrent reader
        // miss on the just-evicted page and read its stale device image.
        self.cache
            .admit_clean(id, Arc::clone(&img), |ev| self.writeback(ev))?;
        Ok(img)
    }

    /// Write one eviction victim back to the device if it was dirty.
    /// Called from inside the shard lock (lock order: shard → device).
    fn writeback(&self, ev: &crate::cache::Evicted) -> Result<()> {
        if ev.dirty {
            self.device_write().write(ev.page, &ev.data)?;
            self.counters.record_write();
            emit(EventKind::PageWrite, u64::from(ev.page), 0);
        }
        Ok(())
    }

    /// Store a modified image, through the cache when enabled. A pinned
    /// page's resident image is refreshed — after the store succeeds, so
    /// a failed write leaves the pinned tier on the old image — and the
    /// write itself still follows the normal cache/device path: the
    /// pinned tier never holds the only dirty copy.
    fn store(&self, id: PageId, img: Arc<[u8]>) -> Result<()> {
        if self.cache.capacity() > 0 {
            // Validate the id first so dangling writes still error even
            // when the cache absorbs the store.
            self.device_read().check(id)?;
            self.cache
                .admit_dirty(id, Arc::clone(&img), |ev| self.writeback(ev))?;
        } else {
            self.device_write().write(id, &img)?;
            self.counters.record_write();
            emit(EventKind::PageWrite, u64::from(id), 0);
        }
        let mut pinned = self.pinned_write();
        if let Some(slot) = pinned.get_mut(&id) {
            *slot = img;
        }
        Ok(())
    }

    /// Read page `id` and run `f` on its bytes. Counts 1 read (or a cache
    /// hit). Re-entrant: `f` may call back into the pager.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let img = observe_io(self.fetch(id))?;
        Ok(f(&img))
    }

    /// Read-modify-write page `id`. Counts 1 read + 1 write in uncached
    /// mode; with a cache, the write is deferred to eviction or flush.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let img = observe_io(self.fetch(id))?;
        let mut buf = img.to_vec();
        let r = f(&mut buf);
        observe_io(self.store(id, buf.into()))?;
        Ok(r)
    }

    /// Overwrite page `id` with a freshly built image: `f` receives a
    /// zeroed buffer and must fill it. Counts 1 write and **no read** —
    /// this is how builders emit nodes.
    pub fn overwrite_page<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut buf = vec![0u8; self.page_size];
        let r = f(&mut buf);
        // Validate the id even when the cache would absorb the store.
        self.device_read().check(id)?;
        observe_io(self.store(id, buf.into()))?;
        Ok(r)
    }

    /// Write every dirty cached page back to disk (counting the writes)
    /// while keeping all pages resident — the pool stays warm, now clean.
    /// A freshly built database calls this before being shared with
    /// concurrent readers so no dirty page is ever resident on the
    /// serving path (see DESIGN.md "Concurrent serving").
    pub fn clean_pool(&self) -> Result<()> {
        observe_io(self.clean_pool_inner())
    }

    fn clean_pool_inner(&self) -> Result<()> {
        self.cache.clean_all(|page, data| {
            self.device_write().write(page, data)?;
            self.counters.record_write();
            emit(EventKind::PageWrite, u64::from(page), 0);
            Ok(())
        })
    }

    /// Write every dirty cached page back to disk (counting the writes) and
    /// empty the pool.
    ///
    /// Clean-then-drain, not drain-then-write: a failed writeback midway
    /// through a drained pool would have already discarded the remaining
    /// dirty pages. Cleaning first means an I/O error leaves every page
    /// resident — the failed one still dirty — so the flush is retryable
    /// with nothing lost; only a fully clean pool is dropped.
    pub fn flush(&self) -> Result<()> {
        observe_io(self.flush_inner())
    }

    fn flush_inner(&self) -> Result<()> {
        self.clean_pool_inner()?;
        self.cache.drain();
        Ok(())
    }
}

/// Count an I/O failure in the process-global observed-fault totals
/// ([`segdb_obs::faults`]) on its way to the caller. Applied once per
/// public verb, so one failed operation counts once even when it spans
/// several internal device calls.
fn observe_io<T>(r: Result<T>) -> Result<T> {
    if let Err(crate::error::PagerError::Io(_)) = &r {
        segdb_obs::faults::totals().observed_io_error();
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PagerError;

    fn uncached() -> Pager {
        Pager::new(PagerConfig {
            page_size: 16,
            cache_pages: 0,
        })
    }

    #[test]
    fn pager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pager>();
    }

    #[test]
    fn uncached_counts_every_access() {
        let p = uncached();
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 1).unwrap();
        p.with_page(id, |b| assert_eq!(b[0], 1)).unwrap();
        p.with_page_mut(id, |b| b[1] = 2).unwrap();
        p.with_page(id, |b| assert_eq!((b[0], b[1]), (1, 2)))
            .unwrap();
        let s = p.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.writes, 2); // overwrite + modify
        assert_eq!(s.reads, 3); // read + modify-read + read
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn overwrite_sees_zeroed_buffer() {
        let p = uncached();
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b.fill(7)).unwrap();
        p.overwrite_page(id, |b| {
            assert!(b.iter().all(|&x| x == 0), "overwrite must start zeroed");
            b[0] = 9;
        })
        .unwrap();
        p.with_page(id, |b| {
            assert_eq!(b[0], 9);
            assert!(b[1..].iter().all(|&x| x == 0));
        })
        .unwrap();
    }

    #[test]
    fn reentrant_access_is_allowed() {
        let p = uncached();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(b, |buf| buf[0] = 42).unwrap();
        let v = p
            .with_page(a, |_outer| p.with_page(b, |inner| inner[0]).unwrap())
            .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn cache_hits_and_writeback() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 1,
        });
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 1).unwrap(); // dirty in cache, no write yet
        assert_eq!(p.stats().writes, 0);
        p.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(p.stats().cache_hits, 1);
        p.with_page(b, |_| ()).unwrap(); // miss: evicts dirty a => 1 write, 1 read
        let s = p.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        // a's content survived the round trip
        p.flush().unwrap();
        p.with_page(a, |buf| assert_eq!(buf[0], 1)).unwrap();
    }

    #[test]
    fn flush_writes_dirty_pages() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 4,
        });
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.overwrite_page(id, |b| b[0] = i as u8 + 1).unwrap();
        }
        assert_eq!(p.stats().writes, 0);
        p.flush().unwrap();
        assert_eq!(p.stats().writes, 3);
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, |b| assert_eq!(b[0], i as u8 + 1)).unwrap();
        }
    }

    #[test]
    fn free_removes_cached_copy_and_errors_after() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 2,
        });
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 5).unwrap();
        p.free(id).unwrap();
        assert_eq!(p.with_page(id, |_| ()).unwrap_err(), PagerError::Freed(id));
        assert_eq!(p.stats().frees, 1);
        // recycled page must not leak the old cached image
        let id2 = p.allocate().unwrap();
        assert_eq!(id2, id);
        p.with_page(id2, |b| assert!(b.iter().all(|&x| x == 0)))
            .unwrap();
    }

    #[test]
    fn modify_through_cache_defers_write() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 2,
        });
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 1).unwrap();
        p.with_page_mut(id, |b| b[0] += 1).unwrap();
        assert_eq!(p.stats().writes, 0, "writes deferred while cached");
        p.flush().unwrap();
        assert_eq!(p.stats().writes, 1, "coalesced into one write");
        p.with_page(id, |b| assert_eq!(b[0], 2)).unwrap();
    }

    #[test]
    fn store_to_unallocated_page_errors() {
        let p = uncached();
        assert!(p.with_page_mut(3, |_| ()).is_err());
        assert!(p.overwrite_page(3, |_| ()).is_err());
    }

    #[test]
    fn clean_pool_writes_dirty_pages_but_keeps_them_resident() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 4,
        });
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.overwrite_page(id, |b| b[0] = i as u8 + 1).unwrap();
        }
        assert_eq!(p.stats().writes, 0);
        p.clean_pool().unwrap();
        assert_eq!(p.stats().writes, 3, "each dirty page written once");
        p.clean_pool().unwrap();
        assert_eq!(p.stats().writes, 3, "second sweep finds nothing dirty");
        // The pool stayed warm: re-reading every page is a pure hit.
        let before = p.stats();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, |b| assert_eq!(b[0], i as u8 + 1)).unwrap();
        }
        let after = p.stats();
        assert_eq!(after.reads, before.reads, "no physical re-reads");
        assert_eq!(after.cache_hits, before.cache_hits + 3);
    }

    /// Regression test for the dirty-eviction stale-read race: dirty
    /// pages left resident (as after an in-memory build without
    /// `clean_pool`) are evicted by concurrent readers; if the victim
    /// were written back after the shard lock is released, a reader
    /// missing on the just-evicted page would see the stale (zeroed)
    /// device image. With writeback under the shard lock every reader
    /// must observe the written value.
    #[test]
    fn concurrent_readers_never_see_stale_dirty_evictions() {
        let p = std::sync::Arc::new(Pager::with_device_sharded(Box::new(Disk::new(16)), 8, 2));
        let ids: Vec<PageId> = (0..64)
            .map(|i| {
                let id = p.allocate().unwrap();
                p.overwrite_page(id, |b| b[0] = i as u8 + 1).unwrap();
                id
            })
            .collect();
        // Deliberately NO flush/clean: up to 8 dirty pages stay resident.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = std::sync::Arc::clone(&p);
                let ids = ids.clone();
                std::thread::spawn(move || {
                    for round in 0..500usize {
                        let i = (round * 17 + t * 7) % ids.len();
                        p.with_page(ids[i], |b| {
                            assert_eq!(b[0], i as u8 + 1, "stale page image observed")
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A failed dirty-victim writeback on the read path must not lose
    /// the dirty page: the error propagates, the victim stays resident
    /// (still dirty), and a later fault-free flush persists it.
    #[test]
    fn failed_writeback_keeps_the_dirty_page_recoverable() {
        use crate::fault::{FaultDevice, FaultPlan};
        let (dev, handle) = FaultDevice::over_memory(8, FaultPlan::none(1));
        let p = Pager::with_device(Box::new(dev), 1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 7).unwrap(); // dirty, cached
        handle.arm(FaultPlan {
            write_error: 1.0,
            ..FaultPlan::none(1)
        });
        // Reading b evicts dirty a; the writeback fails and propagates.
        let err = p.with_page(b, |_| ()).unwrap_err();
        assert!(matches!(err, PagerError::Io(_)), "got {err:?}");
        handle.disarm();
        // Nothing was lost: a is still resident and dirty, so a flush
        // writes it and the value survives.
        p.flush().unwrap();
        p.with_page(a, |buf| assert_eq!(buf[0], 7)).unwrap();
        assert_eq!(handle.stats().write_errors, 1);
    }

    /// A flush interrupted by an I/O error must keep every not-yet-written
    /// dirty page in the pool for retry instead of draining (and thereby
    /// discarding) them.
    #[test]
    fn interrupted_flush_loses_no_dirty_pages() {
        use crate::fault::{FaultDevice, FaultPlan};
        let (dev, handle) = FaultDevice::over_memory(8, FaultPlan::none(2));
        let p = Pager::with_device(Box::new(dev), 4);
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.overwrite_page(id, |buf| buf[0] = i as u8 + 1).unwrap();
        }
        handle.arm(FaultPlan {
            write_error: 1.0,
            ..FaultPlan::none(2)
        });
        assert!(p.flush().is_err(), "first dirty write fails");
        handle.disarm();
        p.flush().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, |buf| assert_eq!(buf[0], i as u8 + 1))
                .unwrap();
        }
    }

    /// End-to-end power-cut drill at the pager level: what was synced is
    /// exactly what a recovered pager sees.
    #[test]
    fn recovery_after_power_cut_sees_the_synced_state() {
        use crate::fault::{FaultDevice, FaultPlan};
        let (dev, handle) = FaultDevice::over_memory(8, FaultPlan::none(4));
        let p = Pager::with_device(Box::new(dev), 2);
        let a = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 1).unwrap();
        p.set_meta(b"sb1").unwrap();
        p.sync().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 2).unwrap(); // never synced
        handle.arm(FaultPlan::crash_at(4, 0));
        assert!(p.sync().is_err(), "the cut interrupts the sync");
        let recovered = Pager::with_device(handle.recover().unwrap(), 0);
        recovered.with_page(a, |buf| assert_eq!(buf[0], 1)).unwrap();
        assert_eq!(recovered.get_meta().unwrap(), b"sb1");
    }

    #[test]
    fn pinned_pages_hit_without_lru_and_survive_eviction_pressure() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 1,
        });
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 7).unwrap();
        p.overwrite_page(b, |buf| buf[0] = 8).unwrap();
        p.flush().unwrap();
        assert_eq!(p.pin_pages(&[a]).unwrap(), 1);
        let before = p.stats();
        // Thrash the 1-page LRU with b; a must keep hitting the pinned
        // tier — no physical re-read, every access a (pin) hit.
        for _ in 0..5 {
            p.with_page(b, |_| ()).unwrap();
            p.with_page(a, |buf| assert_eq!(buf[0], 7)).unwrap();
        }
        let d = p.stats() - before;
        assert_eq!(d.pin_hits, 5, "every read of a was a pinned hit");
        assert!(d.cache_hits >= 5, "pin hits also count as cache hits");
        let tiers = p.cache_tiers();
        assert_eq!(tiers.pinned_pages, 1);
        assert_eq!(tiers.evictable_capacity, 1);
    }

    #[test]
    fn stores_refresh_the_pinned_image_and_free_unpins() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 2,
        });
        let a = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 1).unwrap();
        p.pin_pages(&[a]).unwrap();
        p.with_page_mut(a, |buf| buf[0] = 2).unwrap();
        p.with_page(a, |buf| assert_eq!(buf[0], 2, "pinned image refreshed"))
            .unwrap();
        // The pinned tier never holds the only dirty copy: a flush still
        // persists the update through the normal cache path.
        p.flush().unwrap();
        p.unpin_all();
        p.with_page(a, |buf| assert_eq!(buf[0], 2)).unwrap();
        p.pin_pages(&[a]).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.pinned_pages(), 0, "free drops the pinned copy");
        let a2 = p.allocate().unwrap();
        assert_eq!(a2, a);
        p.with_page(a2, |b| assert!(b.iter().all(|&x| x == 0)))
            .unwrap();
    }

    #[test]
    fn sharded_pager_serves_concurrent_readers() {
        let p = std::sync::Arc::new(Pager::with_device_sharded(Box::new(Disk::new(32)), 16, 4));
        let ids: Vec<PageId> = (0..32)
            .map(|i| {
                let id = p.allocate().unwrap();
                p.overwrite_page(id, |b| b[0] = i as u8).unwrap();
                id
            })
            .collect();
        p.flush().unwrap();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = std::sync::Arc::clone(&p);
                let ids = ids.clone();
                std::thread::spawn(move || {
                    for round in 0..200usize {
                        let i = (round * 13 + t) % ids.len();
                        p.with_page(ids[i], |b| assert_eq!(b[0], i as u8)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = p.stats();
        assert_eq!(s.reads + s.cache_hits, 8 * 200, "every access counted");
    }
}
