//! The [`Pager`]: counted, optionally cached access to the simulated disk.
//!
//! Design notes:
//!
//! * All methods take `&self`. Queries over an index must be expressible
//!   through a shared reference while still counting I/O and updating the
//!   LRU, so the disk, cache and counters live behind `RefCell`s.
//! * Page closures receive a *copy* of the page in a pooled scratch buffer,
//!   taken after all internal borrows are released. This makes the API
//!   fully re-entrant: tree traversals may read a child page from inside a
//!   parent-page closure without tripping `RefCell` at runtime. One memcpy
//!   per logical I/O is a fair price in a simulator whose figure of merit
//!   is the I/O *count*.
//! * Three access verbs mirror the external-memory cost model:
//!   [`Pager::with_page`] (1 read), [`Pager::with_page_mut`]
//!   (read-modify-write: 1 read + 1 write), and [`Pager::overwrite_page`]
//!   (blind write of a freshly built node image: 1 write, no read).

use crate::cache::LruCache;
use crate::device::{Device, Disk};
use crate::error::Result;
use crate::stats::{Counters, IoStats};
use crate::PageId;
use segdb_obs::trace::{emit, EventKind};
use std::cell::RefCell;

/// Construction parameters for a [`Pager`].
#[derive(Debug, Clone, Copy)]
pub struct PagerConfig {
    /// Bytes per page (block).
    pub page_size: usize,
    /// Buffer-pool capacity in pages. `0` disables caching, making every
    /// access a physical I/O — the paper's pure cost model.
    pub cache_pages: usize,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            page_size: 4096,
            cache_pages: 0,
        }
    }
}

/// Counted, optionally cached page-access layer. See module docs.
pub struct Pager {
    device: RefCell<Box<dyn Device>>,
    cache: RefCell<LruCache>,
    counters: Counters,
    scratch: RefCell<Vec<Box<[u8]>>>,
    page_size: usize,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.page_size)
            .field("live_pages", &self.live_pages())
            .finish()
    }
}

impl Pager {
    /// Create a pager over a fresh in-memory disk.
    pub fn new(config: PagerConfig) -> Self {
        Self::with_device(Box::new(Disk::new(config.page_size)), config.cache_pages)
    }

    /// Create a pager over any [`Device`] — e.g. a persistent
    /// [`crate::file_device::FileDevice`].
    pub fn with_device(device: Box<dyn Device>, cache_pages: usize) -> Self {
        let page_size = device.page_size();
        Pager {
            device: RefCell::new(device),
            cache: RefCell::new(LruCache::new(cache_pages)),
            counters: Counters::default(),
            scratch: RefCell::new(Vec::new()),
            page_size,
        }
    }

    /// Store the database superblock blob on the device.
    pub fn set_meta(&self, meta: &[u8]) -> Result<()> {
        self.device.borrow_mut().set_meta(meta)
    }

    /// Fetch the database superblock blob.
    pub fn get_meta(&self) -> Result<Vec<u8>> {
        self.device.borrow().get_meta()
    }

    /// Flush the buffer pool and durably sync the device.
    pub fn sync(&self) -> Result<()> {
        self.flush()?;
        self.device.borrow_mut().sync()
    }

    /// Bytes per page.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Snapshot of I/O counters.
    pub fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    /// Zero all I/O counters (space counters included).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Pages currently allocated on the disk (live, cache included).
    pub fn live_pages(&self) -> usize {
        self.device.borrow().live_pages()
    }

    /// High-water mark of the disk image in pages.
    pub fn capacity_pages(&self) -> usize {
        self.device.borrow().capacity_pages()
    }

    fn take_scratch(&self) -> Box<[u8]> {
        self.scratch
            .borrow_mut()
            .pop()
            .unwrap_or_else(|| vec![0u8; self.page_size].into_boxed_slice())
    }

    fn return_scratch(&self, buf: Box<[u8]>) {
        let mut pool = self.scratch.borrow_mut();
        if pool.len() < 64 {
            pool.push(buf);
        }
    }

    /// Allocate a zeroed page. Counts one allocation (not a write; the
    /// caller will `overwrite_page` it with real content).
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.device.borrow_mut().allocate()?;
        self.counters.record_alloc();
        emit(EventKind::PageAlloc, u64::from(id), 0);
        Ok(id)
    }

    /// Free a page, dropping any cached copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.cache.borrow_mut().remove(id);
        self.device.borrow_mut().free(id)?;
        self.counters.record_free();
        emit(EventKind::PageFree, u64::from(id), 0);
        Ok(())
    }

    /// Fetch the current image of `id` into `buf`, going through the cache.
    /// Counts a read on miss, a hit otherwise.
    fn fetch(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        {
            let mut cache = self.cache.borrow_mut();
            if cache.capacity() > 0 {
                if let Some(img) = cache.get(id) {
                    buf.copy_from_slice(img);
                    self.counters.record_hit();
                    emit(EventKind::CacheHit, u64::from(id), 0);
                    return Ok(());
                }
            }
        }
        self.device.borrow().read(id, buf)?;
        self.counters.record_read();
        emit(EventKind::PageRead, u64::from(id), 0);
        self.admit(id, buf, false)?;
        Ok(())
    }

    /// Insert an image into the cache (if enabled), writing back the victim.
    fn admit(&self, id: PageId, img: &[u8], dirty: bool) -> Result<()> {
        let victim = {
            let mut cache = self.cache.borrow_mut();
            if cache.capacity() == 0 {
                return Ok(());
            }
            debug_assert!(cache.get(id).is_none());
            cache.insert(id, img.to_vec().into_boxed_slice(), dirty)
        };
        if let Some(ev) = victim {
            if ev.dirty {
                self.device.borrow_mut().write(ev.page, &ev.data)?;
                self.counters.record_write();
                emit(EventKind::PageWrite, u64::from(ev.page), 0);
            }
        }
        Ok(())
    }

    /// Store a modified image, through the cache when enabled.
    fn store(&self, id: PageId, img: &[u8]) -> Result<()> {
        {
            let mut cache = self.cache.borrow_mut();
            if cache.capacity() > 0 {
                if let Some(slot) = cache.get_mut(id) {
                    slot.copy_from_slice(img);
                    return Ok(()); // write deferred to eviction/flush
                }
            }
        }
        if self.cache.borrow().capacity() > 0 {
            // Not resident: admit dirty without a disk write yet.
            // Validate the id first so dangling writes still error.
            self.device.borrow().check(id)?;
            return self.admit(id, img, true);
        }
        self.device.borrow_mut().write(id, img)?;
        self.counters.record_write();
        emit(EventKind::PageWrite, u64::from(id), 0);
        Ok(())
    }

    /// Read page `id` and run `f` on its bytes. Counts 1 read (or a cache
    /// hit). Re-entrant: `f` may call back into the pager.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut buf = self.take_scratch();
        let res = self.fetch(id, &mut buf).map(|()| f(&buf));
        self.return_scratch(buf);
        res
    }

    /// Read-modify-write page `id`. Counts 1 read + 1 write in uncached
    /// mode; with a cache, the write is deferred to eviction or flush.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut buf = self.take_scratch();
        let res = (|| {
            self.fetch(id, &mut buf)?;
            let r = f(&mut buf);
            self.store(id, &buf)?;
            Ok(r)
        })();
        self.return_scratch(buf);
        res
    }

    /// Overwrite page `id` with a freshly built image: `f` receives a
    /// zeroed buffer and must fill it. Counts 1 write and **no read** —
    /// this is how builders emit nodes.
    pub fn overwrite_page<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut buf = self.take_scratch();
        buf.iter_mut().for_each(|b| *b = 0);
        let res = (|| {
            let r = f(&mut buf);
            // Validate the id even when the cache would absorb the store.
            self.device.borrow().check(id)?;
            {
                let mut cache = self.cache.borrow_mut();
                if cache.capacity() > 0 {
                    if let Some(slot) = cache.get_mut(id) {
                        slot.copy_from_slice(&buf);
                        return Ok(r);
                    }
                }
            }
            if self.cache.borrow().capacity() > 0 {
                self.admit(id, &buf, true)?;
            } else {
                self.device.borrow_mut().write(id, &buf)?;
                self.counters.record_write();
                emit(EventKind::PageWrite, u64::from(id), 0);
            }
            Ok(r)
        })();
        self.return_scratch(buf);
        res
    }

    /// Write every dirty cached page back to disk (counting the writes) and
    /// empty the pool.
    pub fn flush(&self) -> Result<()> {
        let evicted = self.cache.borrow_mut().drain();
        for ev in evicted {
            if ev.dirty {
                self.device.borrow_mut().write(ev.page, &ev.data)?;
                self.counters.record_write();
                emit(EventKind::PageWrite, u64::from(ev.page), 0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PagerError;

    fn uncached() -> Pager {
        Pager::new(PagerConfig {
            page_size: 16,
            cache_pages: 0,
        })
    }

    #[test]
    fn uncached_counts_every_access() {
        let p = uncached();
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 1).unwrap();
        p.with_page(id, |b| assert_eq!(b[0], 1)).unwrap();
        p.with_page_mut(id, |b| b[1] = 2).unwrap();
        p.with_page(id, |b| assert_eq!((b[0], b[1]), (1, 2)))
            .unwrap();
        let s = p.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.writes, 2); // overwrite + modify
        assert_eq!(s.reads, 3); // read + modify-read + read
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn overwrite_sees_zeroed_buffer() {
        let p = uncached();
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b.fill(7)).unwrap();
        p.overwrite_page(id, |b| {
            assert!(b.iter().all(|&x| x == 0), "overwrite must start zeroed");
            b[0] = 9;
        })
        .unwrap();
        p.with_page(id, |b| {
            assert_eq!(b[0], 9);
            assert!(b[1..].iter().all(|&x| x == 0));
        })
        .unwrap();
    }

    #[test]
    fn reentrant_access_is_allowed() {
        let p = uncached();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(b, |buf| buf[0] = 42).unwrap();
        let v = p
            .with_page(a, |_outer| p.with_page(b, |inner| inner[0]).unwrap())
            .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn cache_hits_and_writeback() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 1,
        });
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.overwrite_page(a, |buf| buf[0] = 1).unwrap(); // dirty in cache, no write yet
        assert_eq!(p.stats().writes, 0);
        p.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(p.stats().cache_hits, 1);
        p.with_page(b, |_| ()).unwrap(); // miss: evicts dirty a => 1 write, 1 read
        let s = p.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        // a's content survived the round trip
        p.flush().unwrap();
        p.with_page(a, |buf| assert_eq!(buf[0], 1)).unwrap();
    }

    #[test]
    fn flush_writes_dirty_pages() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 4,
        });
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.overwrite_page(id, |b| b[0] = i as u8 + 1).unwrap();
        }
        assert_eq!(p.stats().writes, 0);
        p.flush().unwrap();
        assert_eq!(p.stats().writes, 3);
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, |b| assert_eq!(b[0], i as u8 + 1)).unwrap();
        }
    }

    #[test]
    fn free_removes_cached_copy_and_errors_after() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 2,
        });
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 5).unwrap();
        p.free(id).unwrap();
        assert_eq!(p.with_page(id, |_| ()).unwrap_err(), PagerError::Freed(id));
        assert_eq!(p.stats().frees, 1);
        // recycled page must not leak the old cached image
        let id2 = p.allocate().unwrap();
        assert_eq!(id2, id);
        p.with_page(id2, |b| assert!(b.iter().all(|&x| x == 0)))
            .unwrap();
    }

    #[test]
    fn modify_through_cache_defers_write() {
        let p = Pager::new(PagerConfig {
            page_size: 8,
            cache_pages: 2,
        });
        let id = p.allocate().unwrap();
        p.overwrite_page(id, |b| b[0] = 1).unwrap();
        p.with_page_mut(id, |b| b[0] += 1).unwrap();
        assert_eq!(p.stats().writes, 0, "writes deferred while cached");
        p.flush().unwrap();
        assert_eq!(p.stats().writes, 1, "coalesced into one write");
        p.with_page(id, |b| assert_eq!(b[0], 2)).unwrap();
    }

    #[test]
    fn store_to_unallocated_page_errors() {
        let p = uncached();
        assert!(p.with_page_mut(3, |_| ()).is_err());
        assert!(p.overwrite_page(3, |_| ()).is_err());
    }
}
