//! Storage devices: the raw page store beneath the [`crate::Pager`].
//!
//! Two implementations share the [`Device`] trait:
//!
//! * [`Disk`] — in-memory, the default: deterministic, noise-free I/O
//!   counting (the paper's cost model);
//! * [`crate::file_device::FileDevice`] — a single-file persistent store
//!   with a header page, an on-page free-list chain and a user metadata
//!   area (the superblock databases persist their root states into).
//!
//! Devices are deliberately dumb — all policy (caching, counting) lives
//! in the pager.

use crate::error::{PagerError, Result};
use crate::PageId;

/// A raw page store.
///
/// `Send + Sync` is a supertrait: devices sit behind the pager's
/// `RwLock` and are read concurrently by server worker threads. Both
/// in-repo devices are plain data (or an `std::fs::File`) and qualify
/// automatically.
pub trait Device: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;
    /// Currently allocated pages.
    fn live_pages(&self) -> usize;
    /// High-water mark of the page space.
    fn capacity_pages(&self) -> usize;
    /// Allocate a zeroed page, recycling freed ids first.
    fn allocate(&mut self) -> Result<PageId>;
    /// Return a page to the free pool.
    fn free(&mut self, id: PageId) -> Result<()>;
    /// Read a live page into `buf` (exactly `page_size` bytes).
    fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Overwrite a live page from `buf`.
    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Validate that `id` is live without transferring data.
    fn check(&self, id: PageId) -> Result<()>;
    /// Durably persist all state (no-op for memory devices).
    fn sync(&mut self) -> Result<()>;
    /// Store an opaque metadata blob (the database superblock).
    fn set_meta(&mut self, meta: &[u8]) -> Result<()>;
    /// Fetch the metadata blob (empty if never set).
    fn get_meta(&self) -> Result<Vec<u8>>;
}

/// Allocation state of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Live,
    Free,
}

/// In-memory stand-in for secondary storage.
#[derive(Debug)]
pub struct Disk {
    page_size: usize,
    /// Page images, indexed by `PageId`. Freed pages keep their slot (ids
    /// are recycled through `free_list`) so dangling references are caught.
    pages: Vec<Box<[u8]>>,
    states: Vec<SlotState>,
    free_list: Vec<PageId>,
    meta: Vec<u8>,
}

impl Disk {
    /// Create an empty disk producing pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Disk {
            page_size,
            pages: Vec::new(),
            states: Vec::new(),
            free_list: Vec::new(),
            meta: Vec::new(),
        }
    }

    fn check(&self, id: PageId) -> Result<()> {
        match self.states.get(id as usize) {
            None => Err(PagerError::OutOfBounds(id)),
            Some(SlotState::Free) => Err(PagerError::Freed(id)),
            Some(SlotState::Live) => Ok(()),
        }
    }

    /// Immutable view of a live page image (tests).
    pub fn page(&self, id: PageId) -> Result<&[u8]> {
        self.check(id)?;
        Ok(&self.pages[id as usize])
    }

    /// Mutable view of a live page image (tests).
    pub fn page_mut(&mut self, id: PageId) -> Result<&mut [u8]> {
        self.check(id)?;
        Ok(&mut self.pages[id as usize])
    }
}

impl Device for Disk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn check(&self, id: PageId) -> Result<()> {
        Disk::check(self, id)
    }

    fn live_pages(&self) -> usize {
        self.pages.len() - self.free_list.len()
    }

    fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    fn allocate(&mut self) -> Result<PageId> {
        if let Some(id) = self.free_list.pop() {
            let slot = &mut self.pages[id as usize];
            slot.iter_mut().for_each(|b| *b = 0);
            self.states[id as usize] = SlotState::Live;
            return Ok(id);
        }
        let id = self.pages.len() as PageId;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        self.states.push(SlotState::Live);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check(id)?;
        self.states[id as usize] = SlotState::Free;
        self.free_list.push(id);
        Ok(())
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.check(id)?;
        buf.copy_from_slice(&self.pages[id as usize]);
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        self.check(id)?;
        self.pages[id as usize].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn set_meta(&mut self, meta: &[u8]) -> Result<()> {
        self.meta = meta.to_vec();
        Ok(())
    }

    fn get_meta(&self) -> Result<Vec<u8>> {
        Ok(self.meta.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_zeroes_and_recycles() {
        let mut d = Disk::new(8);
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_ne!(a, b);
        d.page_mut(a).unwrap()[3] = 9;
        d.free(a).unwrap();
        assert_eq!(d.live_pages(), 1);
        let c = d.allocate().unwrap();
        assert_eq!(c, a, "freed id is recycled");
        assert!(
            d.page(c).unwrap().iter().all(|&b| b == 0),
            "recycled page is zeroed"
        );
        assert_eq!(d.capacity_pages(), 2);
    }

    #[test]
    fn access_errors() {
        let mut d = Disk::new(4);
        assert_eq!(d.page(0).unwrap_err(), PagerError::OutOfBounds(0));
        let a = d.allocate().unwrap();
        d.free(a).unwrap();
        assert_eq!(d.page(a).unwrap_err(), PagerError::Freed(a));
        assert_eq!(d.free(a).unwrap_err(), PagerError::Freed(a));
        assert_eq!(d.page_mut(99).unwrap_err(), PagerError::OutOfBounds(99));
        let mut buf = [0u8; 4];
        assert!(d.read(a, &mut buf).is_err());
    }

    #[test]
    fn meta_roundtrip() {
        let mut d = Disk::new(16);
        assert!(d.get_meta().unwrap().is_empty());
        d.set_meta(b"hello").unwrap();
        assert_eq!(d.get_meta().unwrap(), b"hello");
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = Disk::new(0);
    }
}
