//! End-to-end serving: a multi-connection closed-loop load against a
//! live server must verify bit-identical to the scan oracle.

use segdb_core::SegmentDatabase;
use segdb_geom::gen::Family;
use segdb_server::load::{self, LoadConfig};
use segdb_server::{Server, ServerConfig};
use std::sync::Arc;

fn served_db(family: Family, n: usize, seed: u64) -> Arc<SegmentDatabase> {
    Arc::new(
        SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(64)
            .cache_shards(4)
            .observe()
            .build(family.generate(n, seed))
            .unwrap(),
    )
}

#[test]
fn multi_connection_load_verifies_against_oracle() {
    let (family, n, seed) = (Family::Mixed, 500, 3);
    let server = Server::start(
        served_db(family, n, seed),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        connections: 3,
        requests: 60,
        family,
        n,
        seed,
        verify: true,
        shutdown_after: false,
        ..LoadConfig::default()
    };
    let report = load::run_load(&cfg).unwrap();
    assert_eq!(report.sent, 60);
    assert_eq!(report.ok, 60, "{report:?}");
    assert_eq!(report.wrong, 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.latency.count(), 60);
    assert!(report.throughput_rps() > 0.0);
    let doc = report.to_json(&cfg);
    assert!(doc.get("latency_us").unwrap().get("p99").is_some());
    server.shutdown();
    server.wait();
}

#[test]
fn load_counts_overload_refusals() {
    let (family, n, seed) = (Family::Strips, 200, 11);
    let server = Server::start(
        served_db(family, n, seed),
        ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: 10,
        family,
        n,
        seed,
        verify: false,
        shutdown_after: false,
        // `overloaded` is retryable; a small budget keeps the test
        // quick while still proving refusals are re-attempted.
        max_retries: 2,
        ..LoadConfig::default()
    };
    let report = load::run_load(&cfg).unwrap();
    assert_eq!(report.sent, 10);
    assert_eq!(report.ok, 0);
    assert_eq!(report.overloaded, 10, "every request refused: {report:?}");
    assert_eq!(report.retries, 20, "2 retries per refused request");
    server.shutdown();
    server.wait();
}

#[test]
fn load_driver_shutdown_flag_stops_the_server() {
    let (family, n, seed) = (Family::Grid, 200, 5);
    let server = Server::start(served_db(family, n, seed), ServerConfig::default()).unwrap();
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        connections: 1,
        requests: 8,
        family,
        n,
        seed,
        verify: true,
        shutdown_after: true,
        ..LoadConfig::default()
    };
    let report = load::run_load(&cfg).unwrap();
    assert_eq!(report.wrong, 0);
    server.wait();
}
