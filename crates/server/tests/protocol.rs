//! Wire-protocol robustness: malformed input, oversized lines, abrupt
//! disconnects and overload must produce clean errors — never a panic,
//! never a hang.

use segdb_core::SegmentDatabase;
use segdb_geom::gen::mixed_map;
use segdb_obs::json::{self, Json};
use segdb_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_db() -> Arc<SegmentDatabase> {
    Arc::new(
        SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(64)
            .cache_shards(4)
            .observe()
            .build(mixed_map(200, 7))
            .unwrap(),
    )
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(test_db(), cfg).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> Json {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn error_code(v: &Json) -> &str {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v:?}");
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error carries a code")
}

#[test]
fn malformed_json_yields_bad_request() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send("this is not json");
    assert_eq!(error_code(&v), "bad_request");
    // The connection survives a bad request.
    let v = c.send(r#"{"id":1,"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
    server.wait();
}

#[test]
fn unknown_method_is_reported_with_id() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":9,"method":"frobnicate"}"#);
    assert_eq!(error_code(&v), "unknown_method");
    assert_eq!(v.get("id"), Some(&Json::U64(9)));
    server.shutdown();
    server.wait();
}

#[test]
fn missing_params_yield_bad_request() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":2,"method":"query_segment","params":{"x1":1}}"#);
    assert_eq!(error_code(&v), "bad_request");
    server.shutdown();
    server.wait();
}

#[test]
fn oversized_line_gets_error_then_connection_continues() {
    let server = start(ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    let huge = format!("{}\n", "x".repeat(4096));
    c.writer.write_all(huge.as_bytes()).unwrap();
    let v = c.read_response();
    assert_eq!(error_code(&v), "oversized");
    // The offender is drained to its newline; the *same* connection
    // keeps serving the next request.
    let v = c.send(r#"{"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
    server.wait();
}

#[test]
fn oversized_then_valid_request_in_one_write() {
    // The oversized line and a valid request arrive in one TCP burst:
    // the server must answer `oversized` for the first and serve the
    // second, proving the drain stops exactly at the newline.
    let server = start(ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    let burst = format!("{}\n{}\n", "j".repeat(1000), r#"{"id":77,"method":"ping"}"#);
    c.writer.write_all(burst.as_bytes()).unwrap();
    let v = c.read_response();
    assert_eq!(error_code(&v), "oversized");
    let v = c.read_response();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");
    assert_eq!(v.get("id"), Some(&Json::U64(77)));
    server.shutdown();
    server.wait();
}

#[test]
fn request_split_across_packets_mid_utf8_is_reassembled() {
    // One request line delivered byte-by-byte (flushing each write), so
    // TCP hands the server fragments that split multi-byte UTF-8 code
    // points. The reader works on bytes until the newline, so the
    // request must decode and answer normally.
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let line = "{\"id\":5,\"method\":\"ping\",\"params\":{\"note\":\"héllo→wörld✓\"}}\n";
    for b in line.as_bytes() {
        c.writer.write_all(std::slice::from_ref(b)).unwrap();
        c.writer.flush().unwrap();
    }
    let v = c.read_response();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");
    assert_eq!(v.get("id"), Some(&Json::U64(5)));
    server.shutdown();
    server.wait();
}

#[test]
fn line_of_exactly_max_line_bytes_is_served() {
    // Pad the params with a filler key so the rendered request line is
    // exactly `max_line_bytes` long — the boundary must be inclusive.
    let max = 256usize;
    let server = start(ServerConfig {
        max_line_bytes: max,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    let skeleton = r#"{"id":6,"method":"ping","params":{"pad":""#;
    let tail = r#""}}"#;
    let pad = "p".repeat(max - skeleton.len() - tail.len());
    let line = format!("{skeleton}{pad}{tail}");
    assert_eq!(line.len(), max);
    let v = c.send(&line);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");
    // One byte longer must trip the limit instead.
    let pad = "p".repeat(max + 1 - skeleton.len() - tail.len());
    let v = c.send(&format!("{skeleton}{pad}{tail}"));
    assert_eq!(error_code(&v), "oversized");
    server.shutdown();
    server.wait();
}

#[test]
fn truncated_json_line_yields_bad_request() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    // A newline lands mid-object: the reader sees a complete line that
    // is a truncated JSON document.
    let v = c.send(r#"{"id":8,"method":"query_line","params":{"x":"#);
    assert_eq!(error_code(&v), "bad_request");
    // Binary garbage on the same connection is equally survivable.
    let v = c.send("\u{1}\u{2}\u{3}{{{");
    assert_eq!(error_code(&v), "bad_request");
    let v = c.send(r#"{"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
    server.wait();
}

#[test]
fn mid_request_disconnect_leaves_server_alive() {
    let server = start(ServerConfig::default());
    {
        let mut c = Client::connect(&server);
        // Half a request, no newline — then vanish.
        c.writer
            .write_all(br#"{"id":3,"method":"query_li"#)
            .unwrap();
    }
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":4,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");
    server.shutdown();
    server.wait();
}

#[test]
fn misaligned_segment_query_reports_db_error() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":5,"method":"query_segment","params":{"x1":0,"y1":0,"x2":5,"y2":3}}"#);
    assert_eq!(error_code(&v), "db");
    server.shutdown();
    server.wait();
}

#[test]
fn zero_depth_queue_refuses_with_overloaded() {
    let server = start(ServerConfig {
        queue_depth: 0,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":6,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(error_code(&v), "overloaded");
    // Ping bypasses the queue, so the server still proves liveness.
    let v = c.send(r#"{"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
    server.wait();
}

#[test]
fn zero_timeout_answers_instead_of_hanging() {
    let server = start(ServerConfig {
        request_timeout: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":7,"method":"query_line","params":{"x":70}}"#);
    // Usually the deadline (zero) expires before a worker replies; if the
    // worker wins the race an ok answer is equally acceptable. Either
    // way the call returns promptly.
    if v.get("ok") == Some(&Json::Bool(false)) {
        assert_eq!(error_code(&v), "timeout");
    }
    server.shutdown();
    server.wait();
}

#[test]
fn stats_and_trace_answer() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":1,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let v = c.send(r#"{"id":2,"method":"trace","params":{"shape":"query_line","x":70}}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let result = v.get("result").unwrap();
    assert!(result.get("spans").is_some(), "{result:?}");
    let v = c.send(r#"{"id":3,"method":"stats"}"#);
    let result = v.get("result").unwrap();
    assert_eq!(result.get("segments"), Some(&Json::U64(200)));
    let served = result
        .get("server")
        .and_then(|s| s.get("requests"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(served >= 3.0, "{served}");
    assert!(
        result.get("metrics").unwrap().get("cost_model").is_some(),
        "observability snapshot is exposed"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(&server);
    let v = c.send(r#"{"id":1,"method":"shutdown"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    // wait() must return: the acceptor and the pool exit.
    server.wait();
}
