//! Connection hardening: admission-gate shedding, write-deadline drops,
//! idle/slow-loris reaping, and the bounded graceful drain. Every
//! scenario must resolve within its deadline — no hung joins, no pinned
//! workers.

use segdb_core::SegmentDatabase;
use segdb_geom::gen::mixed_map;
use segdb_obs::json::{self, Json};
use segdb_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn test_db() -> Arc<SegmentDatabase> {
    Arc::new(
        SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(64)
            .cache_shards(4)
            .observe()
            .build(mixed_map(200, 7))
            .unwrap(),
    )
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    assert!(reader.read_line(&mut response).unwrap() > 0);
    json::parse(response.trim_end()).expect("valid JSON response")
}

fn error_code(v: &Json) -> &str {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v:?}");
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error carries a code")
}

fn server_stat(v: &Json, key: &str) -> u64 {
    v.get("result")
        .and_then(|r| r.get("server"))
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("stats carry server.{key}")) as u64
}

#[test]
fn admission_gate_sheds_with_overloaded() {
    let server = Server::start(
        test_db(),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // First connection occupies the only slot.
    let mut first = connect(&server);
    let v = roundtrip(&mut first, r#"{"id":1,"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    // The second is shed at the gate: one `overloaded` line, then EOF.
    let shed = connect(&server);
    let mut reader = BufReader::new(shed);
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let v = json::parse(line.trim_end()).unwrap();
    assert_eq!(error_code(&v), "overloaded");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "gate closes it");
    // The occupant still works, and stats record the shed.
    let v = roundtrip(&mut first, r#"{"id":2,"method":"stats"}"#);
    assert_eq!(server_stat(&v, "shed"), 1);
    assert_eq!(server_stat(&v, "max_connections"), 1);
    // Dropping the occupant frees the slot for a newcomer.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut again = connect(&server);
        let v = roundtrip(&mut again, r#"{"id":3,"method":"ping"}"#);
        if v.get("ok") == Some(&Json::Bool(true)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after occupant exit"
        );
        thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    server.wait();
}

#[test]
fn slow_loris_connection_is_reaped() {
    let server = Server::start(
        test_db(),
        ServerConfig {
            idle_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut loris = connect(&server);
    // Trickle a request prefix and never finish the line.
    loris.write_all(b"{\"method\":").unwrap();
    loris.flush().unwrap();
    // The server must reap the connection: our next read sees EOF.
    let mut reader = BufReader::new(loris.try_clone().unwrap());
    let mut line = String::new();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "reaped connection reads EOF, got {line:?}"
    );
    // A well-behaved client still gets served, and the reap is counted.
    let mut ok = connect(&server);
    let v = roundtrip(&mut ok, r#"{"id":1,"method":"stats"}"#);
    assert_eq!(server_stat(&v, "reaped"), 1);
    server.shutdown();
    server.wait();
}

#[test]
fn stalled_reader_costs_the_connection_not_a_worker() {
    // A peer that pipelines many queries with fat replies and never
    // reads fills the kernel buffers; the write deadline must fire and
    // drop the connection instead of pinning the reader thread forever.
    let server = Server::start(
        test_db(),
        ServerConfig {
            write_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let stall = connect(&server);
    let mut w = stall.try_clone().unwrap();
    // Small SO_RCVBUF on our side makes the server's send queue fill
    // fast; `trace` replies (spans included) are the fattest available.
    let request =
        b"{\"id\":1,\"method\":\"trace\",\"params\":{\"shape\":\"query_line\",\"x\":70}}\n";
    let t0 = Instant::now();
    let mut write_failed = false;
    for _ in 0..5000 {
        if w.write_all(request).is_err() {
            // The server dropped us; that is the success condition.
            write_failed = true;
            break;
        }
        if t0.elapsed() > Duration::from_secs(20) {
            break;
        }
    }
    // Never reading, we either saw our own writes fail (connection
    // dropped) or the server is still within its write deadline window;
    // in both cases a fresh client must get served promptly — the pool
    // was not consumed by the stalled peer.
    let mut ok = connect(&server);
    let t1 = Instant::now();
    let v = roundtrip(&mut ok, r#"{"id":2,"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert!(
        t1.elapsed() < Duration::from_secs(5),
        "healthy client starved by a stalled peer"
    );
    drop(w);
    drop(stall);
    // Give the server a moment to notice, then check the counter.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut drops = 0;
    while Instant::now() < deadline {
        let v = roundtrip(&mut ok, r#"{"id":3,"method":"stats"}"#);
        drops = server_stat(&v, "write_drops");
        if drops > 0 {
            break;
        }
        thread::sleep(Duration::from_millis(100));
    }
    assert!(
        drops > 0 || !write_failed,
        "connection was dropped but no write_drop was counted"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn graceful_drain_completes_in_flight_and_refuses_new_connects() {
    let server = Server::start(
        test_db(),
        ServerConfig {
            drain_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // An in-flight request racing the shutdown: it must resolve — an
    // answer or `shutting_down` — never a hang.
    let racer = thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        roundtrip(
            &mut c,
            r#"{"id":1,"method":"query_line","params":{"x":70}}"#,
        )
    });
    thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let t0 = Instant::now();
    server.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "wait() must be bounded by the drain deadline"
    );
    let v = racer.join().expect("in-flight request must not hang");
    if v.get("ok") != Some(&Json::Bool(true)) {
        assert_eq!(error_code(&v), "shutting_down", "{v:?}");
    }
    // After the drain, new connects are refused or go unanswered —
    // never served.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut w = stream.try_clone().unwrap();
            let _ = w.write_all(b"{\"method\":\"ping\"}\n");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            // EOF or a timeout both prove nothing is serving.
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {}
                Ok(_) => panic!("a stopped server answered: {line:?}"),
            }
        }
    }
}

#[test]
fn shutdown_under_many_live_connections_never_hangs() {
    let server = Server::start(
        test_db(),
        ServerConfig {
            drain_timeout: Duration::from_secs(3),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // A handful of idle keep-alive connections (no traffic at all).
    let idlers: Vec<TcpStream> = (0..8).map(|_| connect(&server)).collect();
    let t0 = Instant::now();
    server.shutdown();
    server.wait();
    // Readers poll the stop flag every 250 ms; the drain must finish
    // well inside its bound without waiting on the idlers' timeouts.
    assert!(
        t0.elapsed() < Duration::from_secs(6),
        "drain exceeded its bound with idle connections open"
    );
    drop(idlers);
}
