//! End-to-end request-lifecycle observability: per-mode stage
//! histograms in the `stats` reply, the `slowlog` wire method, and the
//! correlation of slowlog entries with client request ids.

use segdb_core::{QueryMode, SegmentDatabase};
use segdb_geom::gen::Family;
use segdb_obs::Json;
use segdb_server::load::{self, LoadConfig};
use segdb_server::{Client, ClientConfig, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn served_db(family: Family, n: usize, seed: u64) -> Arc<SegmentDatabase> {
    Arc::new(
        SegmentDatabase::builder()
            .page_size(512)
            .cache_pages(64)
            .cache_shards(4)
            .observe()
            .build(family.generate(n, seed))
            .unwrap(),
    )
}

fn client_for(server: &Server) -> Client {
    Client::new(ClientConfig {
        addr: server.addr().to_string(),
        ..ClientConfig::default()
    })
}

#[test]
fn stats_reply_carries_per_mode_latency_and_pages_quantiles() {
    let server = Server::start(served_db(Family::Mixed, 300, 7), ServerConfig::default()).unwrap();
    let mut client = client_for(&server);
    for _ in 0..5 {
        client
            .query_mode("query_line", &[("x", 40)], QueryMode::Collect)
            .unwrap();
        client
            .query_mode("query_line", &[("x", 41)], QueryMode::Count)
            .unwrap();
    }
    let stats = client.remote_stats().unwrap();
    let latency = stats.get("latency").expect("stats carries a latency block");
    for mode in ["collect", "count"] {
        let m = latency
            .get(mode)
            .unwrap_or_else(|| panic!("mode {mode} present"));
        for stage in ["queue_us", "exec_us", "write_us", "total_us"] {
            let s = m
                .get(stage)
                .unwrap_or_else(|| panic!("{mode}.{stage} present"));
            assert_eq!(s.get("count"), Some(&Json::U64(5)), "{mode}.{stage}");
            for q in ["p50", "p95", "p99", "mean", "max"] {
                assert!(s.get(q).is_some(), "{mode}.{stage}.{q}");
            }
        }
    }
    let pages = stats.get("pages").expect("stats carries a pages block");
    let collect = pages.get("collect").unwrap();
    assert_eq!(collect.get("count"), Some(&Json::U64(5)));
    // Every collect query touches at least one page.
    assert!(matches!(collect.get("max"), Some(&Json::U64(m)) if m >= 1));
    // The trace-ring drop counter is surfaced (zero here: no tracing ran).
    let trace = stats.get("trace").expect("stats carries a trace block");
    assert!(trace.get("dropped_events").is_some());
    server.shutdown();
    server.wait();
}

#[test]
fn slowlog_entries_match_client_request_ids() {
    let (family, n, seed) = (Family::Mixed, 400, 9);
    let server = Server::start(
        served_db(family, n, seed),
        ServerConfig {
            slowlog_entries: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let requests = 40u64;
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: requests as usize,
        family,
        n,
        seed,
        verify: true,
        shutdown_after: false,
        ..LoadConfig::default()
    };
    let report = load::run_load(&cfg).unwrap();
    assert_eq!(report.wrong, 0, "{report:?}");
    let slowlog = client_for(&server).remote_slowlog().unwrap();
    assert_eq!(slowlog.get("max_entries"), Some(&Json::U64(16)));
    let entries = slowlog.get("entries").and_then(Json::as_arr).unwrap();
    assert!(
        !entries.is_empty(),
        "40 recorded requests fill a 16-slot log"
    );
    assert!(entries.len() <= 16);
    // The load driver stamps request i with id i; every slowlog entry
    // must carry one of those ids and its stage timings must add up.
    let mut prev_total = u64::MAX;
    for e in entries {
        let Some(&Json::U64(id)) = e.get("id") else {
            panic!("slowlog entry without a numeric id: {e:?}");
        };
        assert!(id < requests, "id {id} out of the load's id range");
        let at = |k: &str| match e.get(k) {
            Some(&Json::U64(v)) => v,
            other => panic!("{k}: {other:?}"),
        };
        let (queue, exec, write, total) = (
            at("queue_us"),
            at("exec_us"),
            at("write_us"),
            at("total_us"),
        );
        assert!(
            queue + exec + write <= total,
            "stages within the total: {e:?}"
        );
        assert!(total <= prev_total, "entries sorted worst-first");
        prev_total = total;
    }
    // The load report's server block saw the same run: request delta
    // covers at least the 40 queries plus the two stats probes.
    let server_block = report.server.as_ref().expect("stats probes succeeded");
    let served = server_block
        .get("server")
        .and_then(|s| s.get("requests"))
        .cloned();
    assert!(
        matches!(served, Some(Json::U64(r)) if r >= requests),
        "{served:?}"
    );
    assert!(server_block
        .get("latency")
        .and_then(|l| l.get("collect"))
        .is_some());
    server.shutdown();
    server.wait();
}

#[test]
fn slowlog_threshold_filters_fast_requests() {
    let server = Server::start(
        served_db(Family::Grid, 200, 3),
        ServerConfig {
            // Nothing on localhost takes an hour; the log must stay empty.
            slowlog_threshold: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = client_for(&server);
    for x in 0..8 {
        client
            .query_mode("query_line", &[("x", x)], QueryMode::Collect)
            .unwrap();
    }
    let slowlog = client.remote_slowlog().unwrap();
    assert_eq!(
        slowlog
            .get("entries")
            .and_then(Json::as_arr)
            .map(|a| a.len()),
        Some(0),
        "sub-threshold requests never enter the log"
    );
    assert_eq!(slowlog.get("seen"), Some(&Json::U64(0)));
    // The histograms still saw every request — the threshold only
    // gates the slowlog, not the stats.
    let stats = client.remote_stats().unwrap();
    let count = stats
        .get("latency")
        .and_then(|l| l.get("collect"))
        .and_then(|m| m.get("total_us"))
        .and_then(|t| t.get("count"))
        .cloned();
    assert_eq!(count, Some(Json::U64(8)));
    server.shutdown();
    server.wait();
}

#[test]
fn zero_capacity_disables_the_slowlog() {
    let server = Server::start(
        served_db(Family::Strips, 150, 5),
        ServerConfig {
            slowlog_entries: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = client_for(&server);
    for x in 0..4 {
        client
            .query_mode("query_line", &[("x", x)], QueryMode::Count)
            .unwrap();
    }
    let slowlog = client.remote_slowlog().unwrap();
    assert_eq!(slowlog.get("max_entries"), Some(&Json::U64(0)));
    assert_eq!(
        slowlog
            .get("entries")
            .and_then(Json::as_arr)
            .map(|a| a.len()),
        Some(0)
    );
    server.shutdown();
    server.wait();
}
