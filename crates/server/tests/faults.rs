//! Graceful degradation under injected storage faults: a worker that
//! hits an I/O error must answer a structured `io_error` reply and keep
//! serving — never die, never take the pool down.

use segdb_core::{IndexKind, SegmentDatabase};
use segdb_geom::gen::mixed_map;
use segdb_obs::json::{self, Json};
use segdb_pager::{FaultDevice, FaultPlan};
use segdb_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn error_code(v: &Json) -> &str {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v:?}");
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error carries a code")
}

#[test]
fn worker_answers_io_error_and_survives_storage_faults() {
    // cache_pages(0): every query goes to the device, so an armed
    // read-error plan is guaranteed to hit.
    let (device, handle) = FaultDevice::over_memory(512, FaultPlan::none(42));
    let db = SegmentDatabase::builder()
        .cache_pages(0)
        .index(IndexKind::TwoLevelInterval)
        .on_device(Box::new(device))
        .build(mixed_map(150, 11))
        .unwrap();
    let server = Server::start(Arc::new(db), ServerConfig::default()).unwrap();
    let mut c = Client::connect(&server);

    // Healthy baseline.
    let v = c.send(r#"{"id":1,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");

    // Every read now fails: the worker must degrade, not die.
    handle.arm(FaultPlan {
        read_error: 1.0,
        ..FaultPlan::none(42)
    });
    let v = c.send(r#"{"id":2,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(error_code(&v), "io_error");
    assert_eq!(v.get("id"), Some(&Json::U64(2)));
    // Same degradation on the traced path.
    let v = c.send(r#"{"id":3,"method":"trace","params":{"shape":"query_line","x":70}}"#);
    assert_eq!(error_code(&v), "io_error");

    // The pool is still alive: ping (inline) and stats (worker) answer,
    // and stats surfaces the fault counters.
    let v = c.send(r#"{"method":"ping"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let v = c.send(r#"{"id":4,"method":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let faults = v.get("result").and_then(|r| r.get("faults")).unwrap();
    let observed = faults
        .get("observed_io_errors")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        observed >= 1.0,
        "stats reports observed I/O faults: {faults:?}"
    );
    let injected = faults
        .get("injected_read_errors")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(injected >= 1.0, "stats reports injected faults: {faults:?}");

    // Faults cleared: the same worker pool serves correct answers again.
    handle.disarm();
    let v = c.send(r#"{"id":5,"method":"query_line","params":{"x":70}}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v:?}");

    server.shutdown();
    server.wait();
}
