#![warn(missing_docs)]

//! # segdb-server — concurrent query serving for segment databases
//!
//! The paper's structures are static read-mostly indexes, which makes
//! them natural to *serve*: many clients querying one database at once.
//! This crate supplies the serving layer, built entirely on `std`
//! (`std::net` + `std::thread`; offline builds stay dependency-free):
//!
//! * [`proto`] — a newline-delimited JSON wire protocol (methods
//!   `query_line` / `query_ray_up` / `query_ray_down` / `query_segment`
//!   / `trace` / `stats` / `ping` / `shutdown`), reusing `segdb-obs`'s
//!   in-repo JSON value type;
//! * [`server`] — a bounded worker pool executing requests over one
//!   `Arc<SegmentDatabase>` (the `Send + Sync` read path the sharded
//!   page cache of `segdb-pager` provides), refusing work with an
//!   explicit `overloaded` error instead of queueing without bound;
//! * [`load`] — a closed-loop load driver (the `segdb-load` binary)
//!   that replays the benchmark workload generators over `K`
//!   connections, verifies every answer against the scan oracle, and
//!   reports throughput and p50/p95/p99 latency.
//!
//! Protocol and operational details are documented in the repo README
//! ("Serving") and DESIGN.md ("Concurrent serving").

pub mod load;
pub mod proto;
pub mod server;

pub use server::{Server, ServerConfig};
