#![warn(missing_docs)]

//! # segdb-server — concurrent query serving for segment databases
//!
//! The paper's structures are static read-mostly indexes, which makes
//! them natural to *serve*: many clients querying one database at once.
//! This crate supplies the serving layer, built entirely on `std`
//! (`std::net` + `std::thread`; offline builds stay dependency-free):
//!
//! * [`proto`] — a newline-delimited JSON wire protocol (methods
//!   `query_line` / `query_ray_up` / `query_ray_down` / `query_segment`
//!   / `trace` / `stats` / `ping` / `shutdown`, plus `insert` /
//!   `delete` / `flush` on writable servers), reusing `segdb-obs`'s
//!   in-repo JSON value type;
//! * [`server`] — a bounded worker pool executing requests over one
//!   `Arc<SegmentDatabase>` (the `Send + Sync` read path the sharded
//!   page cache of `segdb-pager` provides) or, via
//!   [`Server::start_writable`], a `segdb-core` `WriteEngine` that adds
//!   the WAL-durable write path and a background tombstone compactor;
//!   either way refusing work with an explicit `overloaded` error
//!   instead of queueing without bound;
//! * [`load`] — a closed-loop load driver (the `segdb-load` binary)
//!   that replays the benchmark workload generators over `K`
//!   connections, verifies every answer against the scan oracle, and
//!   reports throughput and p50/p95/p99 latency;
//! * [`chaos`] — the wire-level sibling of `pager::FaultDevice`: a
//!   seeded, replayable network fault layer ([`chaos::ChaosStream`] /
//!   [`chaos::ChaosListener`]) injecting latency, truncated sends,
//!   mid-frame disconnects, resets and slow-loris trickle reads under
//!   an armed [`chaos::NetFaultPlan`];
//! * [`client`] — a resilient reconnect-and-retry client with
//!   per-attempt deadlines and bounded seeded-jitter backoff, safe for
//!   the whole surface: queries mutate nothing and writes are
//!   deduplicated server-side on the stamped request id;
//! * [`lifecycle`] — request-lifecycle observability: per-mode stage
//!   histograms (queue wait / index walk / reply write / total, pages
//!   touched) surfaced in the `stats` reply, plus the bounded
//!   slow-query log behind the `slowlog` wire method (DESIGN.md §12);
//! * [`bench`] — the PR-over-PR regression gate (the `bench-diff`
//!   binary): compare two `BENCH_serve.json` documents and fail on a
//!   past-threshold p99 or throughput regression;
//! * [`router`] — the scatter-gather front of an x-range-sharded
//!   cluster: a static [`router::ShardMap`] routes each query to only
//!   the shards it can touch over the resilient clients, merges replies
//!   per query mode (summing counts, short-circuiting exists, fusing
//!   limits, de-duplicating boundary-replicated long segments), fans
//!   writes to every replica of every touched shard with the client's
//!   request id intact, and aggregates `stats` / `slowlog` / `health`
//!   per shard with `unreachable` markers for dark shards;
//! * [`breaker`] — the per-replica circuit breaker behind the router's
//!   health-driven failover: consecutive infrastructure failures trip
//!   it open, a cooldown admits one half-open probe, and any success
//!   (routed call or health ping) closes it again.
//!
//! Protocol and operational details are documented in the repo README
//! ("Serving", "Resilient clients") and DESIGN.md ("Concurrent
//! serving", §10 "Network failure model").

pub mod bench;
pub mod breaker;
pub mod chaos;
pub mod client;
pub mod lifecycle;
pub mod load;
pub mod proto;
pub mod router;
pub mod server;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use chaos::{ChaosListener, ChaosStream, NetFaultHandle, NetFaultPlan};
pub use client::{CallError, Client, ClientConfig, QueryReply, WriteReply};
pub use lifecycle::{Lifecycle, RequestRecord, SlowLog};
pub use router::{Router, RouterConfig, ShardMap};
pub use server::{Server, ServerConfig};
