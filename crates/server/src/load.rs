//! Closed-loop load driver for the serving layer.
//!
//! `K` connection threads each replay their share of a deterministic
//! query workload (same generators and seeds as the benchmarks), wait
//! for every reply before sending the next request (closed loop), check
//! answers against the in-process [`scan_oracle`], and record wall-clock
//! latency in a power-of-two-microsecond [`Histogram`]. Per-connection
//! histograms are folded with [`Histogram::merge`] into one fleet-wide
//! distribution; `BENCH_serve.json` (written by the `segdb-load` binary)
//! reports throughput and p50/p95/p99 bounds from it.
//!
//! Verification assumes the server serves the set
//! `family.generate(n, seed)` built with the default (vertical)
//! direction — exactly what `segdb-cli gen … | segdb-cli build …`
//! followed by `segdb-cli serve …` produces with the same parameters.
//!
//! With `--write-pct P`, `P` % of the slots become writes against a
//! writable server — inserts of fresh segments above the set's bounding
//! box and deletes of distinct stored segments, so the schedule
//! **commutes**: any interleaving across connections reaches the same
//! final set. In-flight verification is off in mixed runs; instead a
//! post-run sweep checks collect queries against the **shadow model**
//! (`base − acked deletes + acked inserts`) and the report carries
//! per-op-kind latency histograms (query / insert / delete).
//!
//! Requests travel through the resilient [`Client`]: a transient
//! failure (wire disruption, `overloaded`, `timeout`) is retried within
//! the budget, and a request that still fails is *recorded and skipped*
//! — the connection's remaining script keeps replaying, so merged
//! histograms stay comparable across runs instead of losing a whole
//! connection's share to one bad connect. With `--chaos SEED` each
//! connection's traffic passes through its own armed [`NetFaultPlan`]
//! (seeded `SEED + connection`), and the report carries the
//! order-independent XOR of the per-connection trace digests — two runs
//! with identical parameters must print the identical digest.

use crate::chaos::{NetFaultHandle, NetFaultPlan, NetFaultStats};
use crate::client::{Client, ClientConfig};
use crate::proto::code;
use crate::server::{Server, ServerConfig};
use segdb_core::QueryMode;
use segdb_geom::gen::{vertical_queries, Family};
use segdb_geom::query::scan_oracle;
use segdb_geom::{Segment, VerticalQuery};
use segdb_obs::{Histogram, Json};
use segdb_rng::SmallRng;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

/// Query height as a fraction of the set's y-span, per mille — the
/// benchmark default, keeping expected output sizes moderate.
const QUERY_FRAC_PER_MILLE: u32 = 120;

/// Seed perturbation separating the query stream from the segment set.
const QUERY_SEED_SALT: u64 = 0x9E37_79B9;

/// Seed perturbation for the write/query coin flips of a mixed run.
const WRITE_SEED_SALT: u64 = 0x517C_C1B7_2722_0A95;

/// Seed perturbation for the post-run verification sweep.
const SWEEP_SEED_SALT: u64 = 0x2545_F491_4F6C_DD1D;

/// Verification queries swept after a mixed read/write run.
const SWEEP_QUERIES: usize = 32;

/// Id space for segments a mixed run inserts — far above anything the
/// workload generators assign, so shadow-set bookkeeping is by id.
const INSERT_ID_BASE: u64 = 1 << 40;

/// Which query mode the load replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSpec {
    /// Every request uses this one mode.
    Fixed(QueryMode),
    /// Cycle collect → count → exists → limit(8), request by request.
    Mix,
}

impl Default for ModeSpec {
    fn default() -> Self {
        ModeSpec::Fixed(QueryMode::Collect)
    }
}

/// Parse `collect`, `count`, `exists`, `limit:K` or `mix`.
pub fn parse_mode(s: &str) -> Option<ModeSpec> {
    match s {
        "mix" => Some(ModeSpec::Mix),
        "collect" => Some(ModeSpec::Fixed(QueryMode::Collect)),
        "count" => Some(ModeSpec::Fixed(QueryMode::Count)),
        "exists" => Some(ModeSpec::Fixed(QueryMode::Exists)),
        _ => {
            let k = s.strip_prefix("limit:")?.parse().ok()?;
            Some(ModeSpec::Fixed(QueryMode::Limit(k)))
        }
    }
}

impl ModeSpec {
    /// The mode request `i` runs under.
    fn mode_for(self, i: usize) -> QueryMode {
        match self {
            ModeSpec::Fixed(m) => m,
            ModeSpec::Mix => match i % 4 {
                0 => QueryMode::Collect,
                1 => QueryMode::Count,
                2 => QueryMode::Exists,
                _ => QueryMode::Limit(8),
            },
        }
    }

    /// Short name for the report.
    pub fn name(self) -> String {
        match self {
            ModeSpec::Mix => "mix".to_string(),
            ModeSpec::Fixed(QueryMode::Limit(k)) => format!("limit:{k}"),
            ModeSpec::Fixed(m) => m.name().to_string(),
        }
    }
}

/// What to replay and against which server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Workload family the served database was built from.
    pub family: Family,
    /// Segment count the served database was built with.
    pub n: usize,
    /// Seed the served database was built with.
    pub seed: u64,
    /// Check every answer against the local scan oracle.
    pub verify: bool,
    /// Send a `shutdown` request once the run completes.
    pub shutdown_after: bool,
    /// Arm a wire-fault schedule on every connection (connection `c`
    /// uses the plan reseeded to `plan.seed + c`).
    pub chaos_plan: Option<NetFaultPlan>,
    /// Retry budget per request beyond the first attempt.
    pub max_retries: u32,
    /// Deadline per attempt (connect + send + receive).
    pub attempt_timeout: Duration,
    /// Query mode the requests run under (fixed or mixed).
    pub mode: ModeSpec,
    /// Percentage (0–100) of requests that are writes; the server must
    /// be writable when this is non-zero. Writes split evenly between
    /// inserts of fresh segments and deletes of distinct stored ones,
    /// so any interleaving across connections commutes to the same
    /// final set — which the post-run shadow-model sweep verifies.
    pub write_pct: u32,
    /// The address is a scatter-gather router: lift its per-shard
    /// upstream tallies and latency histograms (the `stats` reply's
    /// `router` block) into the report's `cluster` block.
    pub cluster: bool,
    /// Ignore `addr` and drive the batched-vs-unbatched serving
    /// comparison instead: spawn two in-process servers over the same
    /// generated set — one plain, one with the batch collector and the
    /// pinned internal-level tier armed — replay the identical verified
    /// workload against both, and report the batched run with a `batch`
    /// block carrying both throughputs.
    pub batch: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            connections: 4,
            requests: 400,
            family: Family::Mixed,
            n: 2000,
            seed: 42,
            verify: true,
            shutdown_after: false,
            chaos_plan: None,
            max_retries: 16,
            attempt_timeout: Duration::from_secs(2),
            mode: ModeSpec::default(),
            write_pct: 0,
            cluster: false,
            batch: false,
        }
    }
}

/// Resolve a family by its short benchmark name (`mixed`, `grid`, …).
pub fn parse_family(name: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == name)
}

/// What one prepared request does, and the payload run bookkeeping
/// needs to reconstruct the shadow model afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A read — one of the four generalized-segment query shapes.
    Query,
    /// Insert this (workload-fresh) segment.
    Insert(Segment),
    /// Delete this (distinct, stored) segment.
    Delete(Segment),
}

/// One prepared request: the wire line, the oracle's answer and the
/// mode the reply is checked under.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    /// Request line (no trailing newline).
    pub line: String,
    /// Sorted segment ids the full answer contains (mode-aware
    /// verification derives the expected count / existence / limit
    /// prefix from it). Empty for writes and for mixed read/write runs,
    /// whose reads are verified by the post-run sweep instead.
    pub expected: Vec<u64>,
    /// Mode the request runs under (queries only).
    pub mode: QueryMode,
    /// Read or write, with the write payload.
    pub kind: ReqKind,
}

/// Mode-aware answer check: collect wants the ids exactly; count wants
/// the full cardinality; exists wants the bit; limit wants
/// `min(k, t)` ids, every one a member of the full answer.
pub fn verify_reply(mode: QueryMode, ids: &[u64], count: u64, expected: &[u64]) -> bool {
    match mode {
        QueryMode::Collect => ids == expected && count == expected.len() as u64,
        QueryMode::Count => count == expected.len() as u64,
        QueryMode::Exists => (count > 0) != expected.is_empty(),
        QueryMode::Limit(k) => {
            ids.len() as u64 == (k as u64).min(expected.len() as u64)
                && count == ids.len() as u64
                && ids.iter().all(|id| expected.binary_search(id).is_ok())
        }
    }
}

/// Latency histogram in microseconds: power-of-two bounds from 1 µs to
/// ~16.8 s, plus overflow — the same bucket scheme the server's
/// lifecycle histograms use, so the two distributions compare directly.
pub fn latency_histogram() -> Histogram {
    Histogram::latency_us()
}

/// Render one write request line; `id` is both the wire correlation id
/// and the server-side idempotence key.
fn write_request_line(id: u64, method: &str, seg: &Segment) -> String {
    Json::obj([
        ("id", Json::U64(id)),
        ("method", Json::Str(method.to_string())),
        (
            "params",
            Json::obj([
                ("seg", Json::U64(seg.id)),
                ("x1", Json::I64(seg.a.x)),
                ("y1", Json::I64(seg.a.y)),
                ("x2", Json::I64(seg.b.x)),
                ("y2", Json::I64(seg.b.y)),
            ]),
        ),
    ])
    .render()
}

/// Deterministically expand the config into the request stream, cycling
/// through all four generalized-segment shapes, with oracle answers.
///
/// With `write_pct > 0`, a seeded coin turns that share of the slots
/// into writes, split between inserts and deletes. The writes are built
/// to **commute**: every insert is a fresh horizontal segment strictly
/// above the base set's bounding box (distinct `y` per insert — nothing
/// to cross), and every delete targets a distinct stored segment, so
/// whatever order `K` connections land them in, the final set is the
/// same shadow model the post-run sweep checks. In-flight query
/// verification is off in mixed runs (answers legitimately depend on
/// the interleaving); `expected` stays empty.
pub fn build_requests(cfg: &LoadConfig) -> Vec<PreparedRequest> {
    let set = cfg.family.generate(cfg.n, cfg.seed);
    let queries = vertical_queries(
        &set,
        cfg.requests,
        QUERY_FRAC_PER_MILLE,
        cfg.seed ^ QUERY_SEED_SALT,
    );
    let write_pct = u64::from(cfg.write_pct.min(100));
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ WRITE_SEED_SALT);
    let (mut x_lo, mut x_hi, mut y_top) = (i64::MAX, i64::MIN, i64::MIN);
    for s in &set {
        x_lo = x_lo.min(s.a.x);
        x_hi = x_hi.max(s.b.x);
        y_top = y_top.max(s.a.y).max(s.b.y);
    }
    if x_lo >= x_hi {
        x_hi = x_lo + 1;
    }
    let mut fresh = 0u64;
    let mut next_delete = 0usize;
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if write_pct > 0 && rng.gen_range(0..100) < write_pct {
                let delete = rng.gen_range(0..2) == 0 && next_delete < set.len();
                let (method, seg) = if delete {
                    let seg = set[next_delete];
                    next_delete += 1;
                    ("delete", seg)
                } else {
                    fresh += 1;
                    let y = y_top + fresh as i64;
                    let seg = Segment::new(INSERT_ID_BASE + fresh, (x_lo, y), (x_hi, y))
                        .expect("fresh insert segment above the bounding box is valid");
                    ("insert", seg)
                };
                return PreparedRequest {
                    line: write_request_line(i as u64, method, &seg),
                    expected: Vec::new(),
                    mode: QueryMode::Collect,
                    kind: if delete {
                        ReqKind::Delete(seg)
                    } else {
                        ReqKind::Insert(seg)
                    },
                };
            }
            let VerticalQuery::Segment { x, lo, hi } = *q else {
                unreachable!("vertical_queries yields bounded segments")
            };
            let (method, params, oracle) = match i % 4 {
                0 => ("query_line", vec![("x", x)], VerticalQuery::Line { x }),
                1 => (
                    "query_ray_up",
                    vec![("x", x), ("y", lo)],
                    VerticalQuery::RayUp { x, y0: lo },
                ),
                2 => (
                    "query_ray_down",
                    vec![("x", x), ("y", hi)],
                    VerticalQuery::RayDown { x, y0: hi },
                ),
                _ => (
                    "query_segment",
                    vec![("x1", x), ("y1", lo), ("x2", x), ("y2", hi)],
                    VerticalQuery::Segment { x, lo, hi },
                ),
            };
            let mode = cfg.mode.mode_for(i);
            let mut fields: Vec<(String, Json)> = params
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::I64(v)))
                .collect();
            if mode != QueryMode::Collect {
                fields.push(("mode".to_string(), Json::Str(mode.name().to_string())));
                if let QueryMode::Limit(k) = mode {
                    fields.push(("limit".to_string(), Json::U64(k as u64)));
                }
            }
            let line = Json::obj([
                ("id", Json::U64(i as u64)),
                ("method", Json::Str(method.to_string())),
                ("params", Json::Obj(fields)),
            ])
            .render();
            let mut expected: Vec<u64> = if write_pct > 0 {
                Vec::new()
            } else {
                scan_oracle(&set, &oracle).iter().map(|s| s.id).collect()
            };
            expected.sort_unstable();
            PreparedRequest {
                line,
                expected,
                mode,
                kind: ReqKind::Query,
            }
        })
        .collect()
}

/// Aggregated outcome of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent (and answered — the loop is closed).
    pub sent: u64,
    /// Well-formed `ok` responses.
    pub ok: u64,
    /// `ok` responses whose ids disagreed with the oracle.
    pub wrong: u64,
    /// Error responses of any kind.
    pub errors: u64,
    /// Errors with code `degraded` — a routed cluster admitting that
    /// every replica of some shard was unreachable. A replicated
    /// cluster surviving a replica kill must keep this at zero.
    pub degraded: u64,
    /// Errors with code `overloaded`.
    pub overloaded: u64,
    /// Errors with code `timeout`.
    pub timeouts: u64,
    /// Requests whose retry budget drowned in wire-level failures
    /// (never earning a server verdict).
    pub io_failed: u64,
    /// Client retries across all requests.
    pub retries: u64,
    /// Client reconnects after dead connections.
    pub reconnects: u64,
    /// Wire disruptions the clients observed (and survived).
    pub observed_faults: u64,
    /// Injected-fault counters summed over all connection schedules.
    pub injected: NetFaultStats,
    /// XOR of the per-connection fault-trace digests (zero without
    /// chaos); replay-stable for identical parameters.
    pub trace_digest: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-request round-trip latency in microseconds, all connections
    /// merged.
    pub latency: Histogram,
    /// Round-trip latency of the queries alone (mixed runs).
    pub query_latency: Histogram,
    /// Round-trip latency of the inserts alone (mixed runs).
    pub insert_latency: Histogram,
    /// Round-trip latency of the deletes alone (mixed runs).
    pub delete_latency: Histogram,
    /// Writes the server acknowledged as applied.
    pub write_acked: u64,
    /// Write acks answered from the server's idempotence window — the
    /// original reply was lost to a wire fault and this is its replay.
    pub write_duplicates: u64,
    /// Writes that failed terminally or exhausted their retry budget.
    pub write_failed: u64,
    /// Applied inserts, for the post-run shadow model.
    pub acked_inserts: Vec<Segment>,
    /// Applied deletes, for the post-run shadow model.
    pub acked_deletes: Vec<Segment>,
    /// Post-run sweep queries checked against the shadow model.
    pub sweep_checked: u64,
    /// Sweep queries whose answer disagreed with the shadow model.
    pub sweep_wrong: u64,
    /// The server's own view of the run: counter deltas of the `stats`
    /// reply's `io`/`server` blocks (after − before), plus its
    /// cumulative `latency`/`pages` quantile blocks. `None` when either
    /// probe failed (e.g. the server was unreachable at snapshot time).
    pub server: Option<Json>,
    /// On `--cluster` runs: the router's `router` stats block — one
    /// entry per shard with upstream call tallies and the round-trip
    /// latency histogram. `None` off-cluster or when the probe failed.
    pub cluster: Option<Json>,
}

impl LoadReport {
    fn empty() -> LoadReport {
        LoadReport {
            sent: 0,
            ok: 0,
            wrong: 0,
            errors: 0,
            degraded: 0,
            overloaded: 0,
            timeouts: 0,
            io_failed: 0,
            retries: 0,
            reconnects: 0,
            observed_faults: 0,
            injected: NetFaultStats::default(),
            trace_digest: 0,
            elapsed: Duration::ZERO,
            latency: latency_histogram(),
            query_latency: latency_histogram(),
            insert_latency: latency_histogram(),
            delete_latency: latency_histogram(),
            write_acked: 0,
            write_duplicates: 0,
            write_failed: 0,
            acked_inserts: Vec::new(),
            acked_deletes: Vec::new(),
            sweep_checked: 0,
            sweep_wrong: 0,
            server: None,
            cluster: None,
        }
    }

    fn fold(&mut self, t: &LoadReport) {
        self.sent += t.sent;
        self.ok += t.ok;
        self.wrong += t.wrong;
        self.errors += t.errors;
        self.degraded += t.degraded;
        self.overloaded += t.overloaded;
        self.timeouts += t.timeouts;
        self.io_failed += t.io_failed;
        self.retries += t.retries;
        self.reconnects += t.reconnects;
        self.observed_faults += t.observed_faults;
        self.injected.connect_resets += t.injected.connect_resets;
        self.injected.accept_resets += t.injected.accept_resets;
        self.injected.send_errors += t.injected.send_errors;
        self.injected.truncated_sends += t.injected.truncated_sends;
        self.injected.recv_errors += t.injected.recv_errors;
        self.injected.disconnects += t.injected.disconnects;
        self.injected.latencies += t.injected.latencies;
        self.injected.trickles += t.injected.trickles;
        self.trace_digest ^= t.trace_digest;
        self.latency.merge(&t.latency);
        self.query_latency.merge(&t.query_latency);
        self.insert_latency.merge(&t.insert_latency);
        self.delete_latency.merge(&t.delete_latency);
        self.write_acked += t.write_acked;
        self.write_duplicates += t.write_duplicates;
        self.write_failed += t.write_failed;
        self.acked_inserts.extend_from_slice(&t.acked_inserts);
        self.acked_deletes.extend_from_slice(&t.acked_deletes);
        self.sweep_checked += t.sweep_checked;
        self.sweep_wrong += t.sweep_wrong;
    }

    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.sent as f64 / secs
        }
    }

    /// The benchmark-report JSON written to `BENCH_serve.json`.
    pub fn to_json(&self, cfg: &LoadConfig) -> Json {
        let quantiles = |h: &Histogram| {
            Json::obj([
                ("p50", Json::U64(h.quantile_bound(0.50))),
                ("p95", Json::U64(h.quantile_bound(0.95))),
                ("p99", Json::U64(h.quantile_bound(0.99))),
                ("mean", Json::F64(h.mean())),
                ("max", Json::U64(h.max())),
            ])
        };
        // The write blocks appear only on mixed runs, so the bench gate
        // can require them on both sides of a write-vs-write diff and
        // skip them on read-only diffs.
        let mut writes = Vec::new();
        if cfg.write_pct > 0 {
            let mut merged = latency_histogram();
            merged.merge(&self.insert_latency);
            merged.merge(&self.delete_latency);
            writes.push((
                "writes".to_string(),
                Json::obj([
                    ("write_pct", Json::U64(u64::from(cfg.write_pct))),
                    ("acked", Json::U64(self.write_acked)),
                    ("duplicates", Json::U64(self.write_duplicates)),
                    ("failed", Json::U64(self.write_failed)),
                    ("acked_inserts", Json::U64(self.acked_inserts.len() as u64)),
                    ("acked_deletes", Json::U64(self.acked_deletes.len() as u64)),
                    ("sweep_checked", Json::U64(self.sweep_checked)),
                    ("sweep_wrong", Json::U64(self.sweep_wrong)),
                ]),
            ));
            writes.push(("write_latency_us".to_string(), quantiles(&merged)));
            writes.push((
                "query_latency_us".to_string(),
                quantiles(&self.query_latency),
            ));
            writes.push((
                "insert_latency_us".to_string(),
                quantiles(&self.insert_latency),
            ));
            writes.push((
                "delete_latency_us".to_string(),
                quantiles(&self.delete_latency),
            ));
        }
        if cfg.cluster {
            writes.push((
                "cluster".to_string(),
                self.cluster.clone().unwrap_or(Json::Null),
            ));
        }
        let mut doc = Json::obj([
            ("experiment", Json::Str("serve".to_string())),
            ("family", Json::Str(cfg.family.name().to_string())),
            ("segments", Json::U64(cfg.n as u64)),
            ("seed", Json::U64(cfg.seed)),
            ("connections", Json::U64(cfg.connections as u64)),
            ("mode", Json::Str(cfg.mode.name())),
            ("write_pct", Json::U64(u64::from(cfg.write_pct))),
            ("verify", Json::Bool(cfg.verify)),
            ("requests", Json::U64(self.sent)),
            ("ok", Json::U64(self.ok)),
            ("wrong", Json::U64(self.wrong)),
            ("errors", Json::U64(self.errors)),
            ("degraded", Json::U64(self.degraded)),
            ("overloaded", Json::U64(self.overloaded)),
            ("timeouts", Json::U64(self.timeouts)),
            ("io_failed", Json::U64(self.io_failed)),
            ("retries", Json::U64(self.retries)),
            ("reconnects", Json::U64(self.reconnects)),
            (
                "net",
                Json::obj([
                    ("chaos", Json::Bool(cfg.chaos_plan.is_some())),
                    (
                        "trace_digest",
                        Json::Str(format!("{:016x}", self.trace_digest)),
                    ),
                    ("injected_disruptive", Json::U64(self.injected.disruptive())),
                    ("injected_total", Json::U64(self.injected.total())),
                    ("observed_faults", Json::U64(self.observed_faults)),
                    (
                        "injected_matches_observed",
                        Json::Bool(self.injected.disruptive() == self.observed_faults),
                    ),
                ]),
            ),
            ("elapsed_s", Json::F64(self.elapsed.as_secs_f64())),
            ("throughput_rps", Json::F64(self.throughput_rps())),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::U64(self.latency.quantile_bound(0.50))),
                    ("p95", Json::U64(self.latency.quantile_bound(0.95))),
                    ("p99", Json::U64(self.latency.quantile_bound(0.99))),
                    ("mean", Json::F64(self.latency.mean())),
                    ("max", Json::U64(self.latency.max())),
                    ("histogram", self.latency.to_json()),
                ]),
            ),
            ("server", self.server.clone().unwrap_or(Json::Null)),
        ]);
        if let Json::Obj(fields) = &mut doc {
            // Splice the write blocks in before the trailing `server`
            // snapshot so related top-level metrics stay adjacent.
            let at = fields.len() - 1;
            fields.splice(at..at, writes);
        }
        doc
    }
}

/// Numeric delta of two stats snapshots: every key carrying a `U64` in
/// both trees yields `after − before` (saturating); nested objects
/// recurse; anything else is dropped. Monotone server counters make
/// the saturation purely defensive.
pub fn stats_delta(before: &Json, after: &Json) -> Json {
    let Json::Obj(fields) = after else {
        return Json::Obj(Vec::new());
    };
    Json::Obj(
        fields
            .iter()
            .filter_map(|(k, a)| {
                let b = before.get(k)?;
                match (b, a) {
                    (Json::U64(b), Json::U64(a)) => {
                        Some((k.clone(), Json::U64(a.saturating_sub(*b))))
                    }
                    (Json::Obj(_), Json::Obj(_)) => Some((k.clone(), stats_delta(b, a))),
                    _ => None,
                }
            })
            .collect(),
    )
}

/// The report's `server` block from two `stats` snapshots bracketing
/// the run: `io` and `server` counters as deltas (what the run itself
/// cost), `latency` and `pages` verbatim from the *after* snapshot
/// (quantile summaries cannot be subtracted; they are cumulative since
/// server start).
fn server_block(before: &Json, after: &Json) -> Json {
    let sub = |k: &str| -> (Json, Json) {
        (
            before.get(k).cloned().unwrap_or(Json::Null),
            after.get(k).cloned().unwrap_or(Json::Null),
        )
    };
    let (io_b, io_a) = sub("io");
    let (srv_b, srv_a) = sub("server");
    Json::obj([
        ("io", stats_delta(&io_b, &io_a)),
        ("server", stats_delta(&srv_b, &srv_a)),
        (
            "latency",
            after.get("latency").cloned().unwrap_or(Json::Null),
        ),
        ("pages", after.get("pages").cloned().unwrap_or(Json::Null)),
    ])
}

/// Replay `work` through one resilient client. A request that fails
/// even after retries is recorded and *skipped* — one bad connect or a
/// burst of refusals must not void the connection's remaining script,
/// or merged histograms would silently lose that connection's share.
fn run_connection(
    cfg: ClientConfig,
    chaos: Option<NetFaultHandle>,
    work: &[PreparedRequest],
    verify: bool,
) -> LoadReport {
    let mut tally = LoadReport::empty();
    let mut client = match &chaos {
        Some(handle) => Client::with_chaos(cfg, handle.clone()),
        None => Client::new(cfg),
    };
    for request in work {
        let t0 = Instant::now();
        let outcome = client.call_line(&request.line);
        let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        tally.latency.observe(us);
        match request.kind {
            ReqKind::Query => tally.query_latency.observe(us),
            ReqKind::Insert(_) => tally.insert_latency.observe(us),
            ReqKind::Delete(_) => tally.delete_latency.observe(us),
        }
        tally.sent += 1;
        match outcome {
            Ok(result) => {
                tally.ok += 1;
                match request.kind {
                    ReqKind::Query if verify => {
                        let got: Option<Vec<u64>> =
                            result.get("ids").and_then(Json::as_arr).map(|a| {
                                a.iter()
                                    .filter_map(|x| match *x {
                                        Json::U64(u) => Some(u),
                                        _ => None,
                                    })
                                    .collect()
                            });
                        let count = result.get("count").and_then(|c| match *c {
                            Json::U64(u) => Some(u),
                            _ => None,
                        });
                        let correct = match (got, count) {
                            (Some(ids), Some(count)) => {
                                verify_reply(request.mode, &ids, count, &request.expected)
                            }
                            _ => false,
                        };
                        if !correct {
                            tally.wrong += 1;
                        }
                    }
                    ReqKind::Query => {}
                    ReqKind::Insert(seg) | ReqKind::Delete(seg) => {
                        let applied = result.get("applied") == Some(&Json::Bool(true));
                        if result.get("duplicate") == Some(&Json::Bool(true)) {
                            tally.write_duplicates += 1;
                        }
                        if applied {
                            tally.write_acked += 1;
                            match request.kind {
                                ReqKind::Insert(_) => tally.acked_inserts.push(seg),
                                _ => tally.acked_deletes.push(seg),
                            }
                        }
                    }
                }
            }
            Err(e) => {
                tally.errors += 1;
                if !matches!(request.kind, ReqKind::Query) {
                    tally.write_failed += 1;
                }
                match e.code() {
                    code::DEGRADED => tally.degraded += 1,
                    code::OVERLOADED => tally.overloaded += 1,
                    code::TIMEOUT => tally.timeouts += 1,
                    "io" => tally.io_failed += 1,
                    _ => {}
                }
            }
        }
    }
    let stats = client.stats();
    tally.retries = stats.retries;
    tally.reconnects = stats.reconnects;
    tally.observed_faults = stats.observed_faults;
    if let Some(handle) = &chaos {
        tally.injected = handle.stats();
        tally.trace_digest = handle.digest();
    }
    tally
}

/// Post-run verification for mixed read/write runs, against the
/// **shadow model**: because the schedule's writes commute, the served
/// set must now equal `base − acked deletes + acked inserts` no matter
/// how the connections' writes interleaved. Flushes (so every acked
/// write is also durable), then sweeps [`SWEEP_QUERIES`] collect-mode
/// queries and compares each answer with the scan oracle over the
/// shadow set.
fn sweep_shadow(cfg: &LoadConfig, report: &mut LoadReport) {
    let mut shadow = cfg.family.generate(cfg.n, cfg.seed);
    let dead: std::collections::HashSet<u64> = report.acked_deletes.iter().map(|s| s.id).collect();
    shadow.retain(|s| !dead.contains(&s.id));
    shadow.extend_from_slice(&report.acked_inserts);
    let sweeps = vertical_queries(
        &shadow,
        SWEEP_QUERIES,
        QUERY_FRAC_PER_MILLE,
        cfg.seed ^ SWEEP_SEED_SALT,
    );
    let mut client = Client::new(ClientConfig {
        addr: cfg.addr.clone(),
        attempt_timeout: cfg.attempt_timeout,
        max_retries: cfg.max_retries,
        ..ClientConfig::default()
    });
    let _ = client.flush();
    for (i, q) in sweeps.iter().enumerate() {
        let VerticalQuery::Segment { x, lo, hi } = *q else {
            unreachable!("vertical_queries yields bounded segments")
        };
        let (method, params, oracle): (_, Vec<(&str, i64)>, _) = match i % 4 {
            0 => ("query_line", vec![("x", x)], VerticalQuery::Line { x }),
            1 => (
                "query_ray_up",
                vec![("x", x), ("y", lo)],
                VerticalQuery::RayUp { x, y0: lo },
            ),
            2 => (
                "query_ray_down",
                vec![("x", x), ("y", hi)],
                VerticalQuery::RayDown { x, y0: hi },
            ),
            _ => (
                "query_segment",
                vec![("x1", x), ("y1", lo), ("x2", x), ("y2", hi)],
                VerticalQuery::Segment { x, lo, hi },
            ),
        };
        let mut expect: Vec<u64> = scan_oracle(&shadow, &oracle).iter().map(|s| s.id).collect();
        expect.sort_unstable();
        report.sweep_checked += 1;
        match client.query_ids(method, &params) {
            Ok(ids) if ids == expect => {}
            _ => report.sweep_wrong += 1,
        }
    }
}

/// Connect once and ask the server to shut down gracefully.
pub fn send_shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"method\":\"shutdown\"}\n")?;
    let mut response = String::new();
    let _ = BufReader::new(stream).read_line(&mut response);
    Ok(())
}

/// Best-effort `stats` snapshot through a short-budget plain client
/// (no chaos — the probe must see the server, not the fault schedule).
fn probe_stats(cfg: &LoadConfig) -> Option<Json> {
    let mut client = Client::new(ClientConfig {
        addr: cfg.addr.clone(),
        attempt_timeout: cfg.attempt_timeout,
        max_retries: 2,
        ..ClientConfig::default()
    });
    client.remote_stats().ok()
}

/// Run the closed-loop load: `connections` threads replay the prepared
/// request stream round-robin and the tallies are merged. Two `stats`
/// probes bracket the run to fill [`LoadReport::server`].
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let work = build_requests(cfg);
    let connections = cfg.connections.max(1);
    let stats_before = probe_stats(cfg);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let mine: Vec<PreparedRequest> =
                work.iter().skip(c).step_by(connections).cloned().collect();
            let client_cfg = ClientConfig {
                addr: cfg.addr.clone(),
                attempt_timeout: cfg.attempt_timeout,
                max_retries: cfg.max_retries,
                // Distinct jitter per connection so synchronized
                // retries don't stampede (still seed-deterministic).
                jitter_seed: cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..ClientConfig::default()
            };
            // Each connection owns its schedule: chaos draws depend only
            // on this thread's own request sequence, so the trace (and
            // the XOR-merged digest) replays bit-identically.
            let chaos = cfg.chaos_plan.map(|plan| {
                let handle = NetFaultHandle::new(plan);
                handle.arm(NetFaultPlan {
                    seed: plan.seed.wrapping_add(c as u64),
                    ..plan
                });
                handle
            });
            // In-flight answers are nondeterministic while writes
            // interleave; mixed runs verify via the post-run sweep.
            let verify = cfg.verify && cfg.write_pct == 0;
            thread::spawn(move || run_connection(client_cfg, chaos, &mine, verify))
        })
        .collect();
    let mut report = LoadReport::empty();
    for h in handles {
        let tally = h
            .join()
            .map_err(|_| io::Error::other("load connection thread panicked"))?;
        report.fold(&tally);
    }
    report.elapsed = t0.elapsed();
    if cfg.write_pct > 0 && cfg.verify {
        sweep_shadow(cfg, &mut report);
    }
    let stats_after = probe_stats(cfg);
    report.server = match (&stats_before, &stats_after) {
        (Some(before), Some(after)) => Some(server_block(before, after)),
        _ => None,
    };
    if cfg.cluster {
        // The router's per-shard upstream tallies are cumulative over
        // its lifetime; the after-snapshot is the run's view.
        report.cluster = stats_after.as_ref().and_then(|s| s.get("router").cloned());
    }
    if cfg.shutdown_after {
        send_shutdown(&cfg.addr)?;
    }
    Ok(report)
}

/// Admission window the `--batch` comparison arms on its batched
/// server. Kept short: under closed-loop pressure batches form from
/// already-queued requests the moment a worker frees up, so the window
/// only pays off on the last stragglers and a long one just adds
/// latency.
pub const BATCH_COMPARE_WINDOW: Duration = Duration::from_micros(50);

/// Internal-level pin budget (pages) for the batched server.
pub const BATCH_COMPARE_PIN: usize = 512;

/// Outcome of a `--batch` run: the same verified workload replayed
/// against an unbatched and a batched in-process server.
#[derive(Debug)]
pub struct BatchCompare {
    /// The plain server's run.
    pub unbatched: LoadReport,
    /// The batch-collector server's run (window armed, internal levels
    /// pinned).
    pub batched: LoadReport,
    /// Batch size cap the batched server ran with.
    pub batch_max: usize,
}

impl BatchCompare {
    /// The `BENCH_serve.json` document of a `--batch` run: the batched
    /// run's full report plus a `batch` block comparing throughputs.
    pub fn to_json(&self, cfg: &LoadConfig) -> Json {
        let mut doc = self.batched.to_json(cfg);
        if let Json::Obj(fields) = &mut doc {
            let unbatched = self.unbatched.throughput_rps();
            let batched = self.batched.throughput_rps();
            fields.push((
                "batch".to_string(),
                Json::obj([
                    (
                        "window_us",
                        Json::U64(BATCH_COMPARE_WINDOW.as_micros() as u64),
                    ),
                    ("batch_max", Json::U64(self.batch_max as u64)),
                    ("pin_budget", Json::U64(BATCH_COMPARE_PIN as u64)),
                    ("unbatched_rps", Json::F64(unbatched)),
                    ("batched_rps", Json::F64(batched)),
                    (
                        "throughput_ratio",
                        Json::F64(if unbatched > 0.0 {
                            batched / unbatched
                        } else {
                            0.0
                        }),
                    ),
                    ("unbatched_wrong", Json::U64(self.unbatched.wrong)),
                ]),
            ));
        }
        doc
    }
}

/// Replay the configured workload against a freshly started in-process
/// server, then shut it down.
fn run_against_server(cfg: &LoadConfig, server_cfg: ServerConfig) -> io::Result<LoadReport> {
    // Identical database config on both sides; small pages and a small
    // evictable cache keep the internal levels taller than the LRU, so
    // page work — the quantity batching amortizes — stays the dominant
    // per-query cost instead of disappearing into a resident pool.
    let mut db = segdb_core::SegmentDatabase::builder()
        .page_size(512)
        .cache_pages(16)
        .build(cfg.family.generate(cfg.n, cfg.seed))
        .map_err(|e| io::Error::other(format!("cannot build comparison database: {e}")))?;
    db.set_observability(true);
    let server = Server::start(std::sync::Arc::new(db), server_cfg)
        .map_err(|e| io::Error::other(format!("cannot start comparison server: {e}")))?;
    let run_cfg = LoadConfig {
        addr: server.addr().to_string(),
        shutdown_after: false,
        cluster: false,
        write_pct: 0,
        chaos_plan: None,
        ..cfg.clone()
    };
    // Warmup pass: a quarter of the workload, unrecorded, so cold-start
    // costs (connection setup, allocator, branch history) land outside
    // the measured window on both sides alike.
    let warmup = LoadConfig {
        requests: (run_cfg.requests / 4).max(run_cfg.connections),
        verify: false,
        ..run_cfg.clone()
    };
    run_load(&warmup)?;
    // Best of two measured passes: a single pass on a loaded box is at
    // the mercy of one bad scheduling window; the faster of two is a
    // far tighter estimate of what the server can actually sustain, and
    // both sides of the comparison get the same treatment.
    let first = run_load(&run_cfg)?;
    let second = run_load(&run_cfg)?;
    let report = if second.throughput_rps() > first.throughput_rps() {
        second
    } else {
        first
    };
    server.shutdown();
    server.wait();
    Ok(report)
}

/// Drive the batched-vs-unbatched serving comparison: the same verified
/// workload replayed against two in-process servers over the identical
/// generated set. The batched server arms the admission window with
/// `batch_max = connections` — a closed loop can never have more than
/// one query per connection in flight, so a full complement releases the
/// window early instead of stalling on batchmates that cannot exist.
pub fn run_batch_compare(cfg: &LoadConfig) -> io::Result<BatchCompare> {
    let unbatched = run_against_server(cfg, ServerConfig::default())?;
    // A closed loop has at most one query per connection in flight, so
    // `connections` is the largest batch that can ever form — capping
    // there lets a full complement release the window early instead of
    // stalling on batchmates that cannot exist.
    let batch_max = cfg.connections.clamp(2, 64);
    let batched = run_against_server(
        cfg,
        ServerConfig {
            batch_window: BATCH_COMPARE_WINDOW,
            batch_max,
            pin_budget: BATCH_COMPARE_PIN,
            ..ServerConfig::default()
        },
    )?;
    Ok(BatchCompare {
        unbatched,
        batched,
        batch_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_cycles_shapes() {
        let cfg = LoadConfig {
            requests: 8,
            n: 200,
            ..LoadConfig::default()
        };
        let a = build_requests(&cfg);
        let b = build_requests(&cfg);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.expected, y.expected);
        }
        for (i, method) in [
            "query_line",
            "query_ray_up",
            "query_ray_down",
            "query_segment",
        ]
        .iter()
        .enumerate()
        {
            assert!(a[i].line.contains(method), "{}: {}", method, a[i].line);
            let v = segdb_obs::json::parse(&a[i].line).expect("request line is valid JSON");
            assert_eq!(v.get("id"), Some(&Json::U64(i as u64)));
        }
    }

    #[test]
    fn mode_specs_parse_and_cycle() {
        assert_eq!(parse_mode("mix"), Some(ModeSpec::Mix));
        assert_eq!(
            parse_mode("limit:5"),
            Some(ModeSpec::Fixed(QueryMode::Limit(5)))
        );
        assert_eq!(parse_mode("count"), Some(ModeSpec::Fixed(QueryMode::Count)));
        assert_eq!(parse_mode("limit:"), None);
        assert_eq!(parse_mode("nope"), None);
        assert_eq!(ModeSpec::Mix.mode_for(0), QueryMode::Collect);
        assert_eq!(ModeSpec::Mix.mode_for(1), QueryMode::Count);
        assert_eq!(ModeSpec::Mix.mode_for(2), QueryMode::Exists);
        assert_eq!(ModeSpec::Mix.mode_for(3), QueryMode::Limit(8));
        let cfg = LoadConfig {
            requests: 8,
            n: 100,
            mode: ModeSpec::Mix,
            ..LoadConfig::default()
        };
        let reqs = build_requests(&cfg);
        assert!(
            reqs[1].line.contains(r#""mode":"count""#),
            "{}",
            reqs[1].line
        );
        assert!(reqs[3].line.contains(r#""limit":8"#), "{}", reqs[3].line);
        assert!(!reqs[0].line.contains("mode"), "collect stays implicit");
    }

    #[test]
    fn mode_aware_verification() {
        let expected = vec![2, 5, 9];
        assert!(verify_reply(QueryMode::Collect, &[2, 5, 9], 3, &expected));
        assert!(!verify_reply(QueryMode::Collect, &[2, 5], 2, &expected));
        assert!(verify_reply(QueryMode::Count, &[], 3, &expected));
        assert!(!verify_reply(QueryMode::Count, &[], 2, &expected));
        assert!(verify_reply(QueryMode::Exists, &[], 1, &expected));
        assert!(!verify_reply(QueryMode::Exists, &[], 0, &expected));
        assert!(verify_reply(QueryMode::Exists, &[], 0, &[]));
        assert!(verify_reply(QueryMode::Limit(2), &[5, 9], 2, &expected));
        assert!(verify_reply(QueryMode::Limit(8), &[2, 5, 9], 3, &expected));
        assert!(!verify_reply(QueryMode::Limit(2), &[5], 1, &expected));
        assert!(!verify_reply(QueryMode::Limit(2), &[5, 7], 2, &expected));
    }

    #[test]
    fn stats_delta_subtracts_numeric_leaves_recursively() {
        let before = Json::obj([
            ("reads", Json::U64(10)),
            ("nested", Json::obj([("hits", Json::U64(3))])),
            ("label", Json::Str("x".into())),
        ]);
        let after = Json::obj([
            ("reads", Json::U64(25)),
            ("nested", Json::obj([("hits", Json::U64(7))])),
            ("label", Json::Str("x".into())),
            ("new_counter", Json::U64(5)),
        ]);
        let d = stats_delta(&before, &after);
        assert_eq!(d.get("reads"), Some(&Json::U64(15)));
        assert_eq!(
            d.get("nested").and_then(|n| n.get("hits")),
            Some(&Json::U64(4))
        );
        assert_eq!(d.get("label"), None, "non-numeric leaves are dropped");
        assert_eq!(d.get("new_counter"), None, "keys absent before are dropped");
        // A counter that (impossibly) went backwards saturates at zero.
        let d = stats_delta(&after, &before);
        assert_eq!(d.get("reads"), Some(&Json::U64(0)));
    }

    #[test]
    fn server_block_deltas_counters_and_copies_quantiles() {
        let snap = |reads: u64, requests: u64| {
            Json::obj([
                ("io", Json::obj([("reads", Json::U64(reads))])),
                ("server", Json::obj([("requests", Json::U64(requests))])),
                (
                    "latency",
                    Json::obj([("collect", Json::obj([("p99", Json::U64(64))]))]),
                ),
                (
                    "pages",
                    Json::obj([("collect", Json::obj([("p50", Json::U64(4))]))]),
                ),
            ])
        };
        let block = server_block(&snap(100, 40), &snap(160, 90));
        assert_eq!(
            block.get("io").and_then(|x| x.get("reads")),
            Some(&Json::U64(60))
        );
        assert_eq!(
            block.get("server").and_then(|x| x.get("requests")),
            Some(&Json::U64(50))
        );
        assert_eq!(
            block
                .get("latency")
                .and_then(|l| l.get("collect"))
                .and_then(|c| c.get("p99")),
            Some(&Json::U64(64)),
            "quantile blocks come through verbatim"
        );
    }

    #[test]
    fn expected_ids_are_sorted() {
        let cfg = LoadConfig {
            requests: 16,
            n: 300,
            ..LoadConfig::default()
        };
        for r in build_requests(&cfg) {
            assert!(r.expected.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
