//! `bench-diff` — the PR-over-PR bench regression gate.
//!
//! ```text
//! bench-diff BASELINE.json CURRENT.json [--threshold-pct X]
//! ```
//!
//! Compares two `BENCH_serve.json` documents (see `segdb-load`) and
//! judges p99 latency and throughput against the threshold (default
//! 10 %). Prints the verdict document on stdout. Exit codes: 0 clean,
//! 1 regression detected, 2 usage/parse errors.

use segdb_obs::{json, Json};
use segdb_server::bench::{self, DEFAULT_THRESHOLD_PCT};
use std::process::ExitCode;

const USAGE: &str = "usage: bench-diff BASELINE.json CURRENT.json [--threshold-pct X]";

fn fail(code: &str, message: &str) -> ExitCode {
    eprintln!(
        "{}",
        Json::obj([
            ("error", Json::Str(code.to_string())),
            ("message", Json::Str(message.to_string())),
        ])
        .render()
    );
    ExitCode::from(2)
}

fn load_doc(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(text.trim()).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--threshold-pct" => {
                let Some(value) = args.next() else {
                    return fail("usage", &format!("--threshold-pct needs a value; {USAGE}"));
                };
                match value.parse::<f64>() {
                    Ok(x) if x >= 0.0 && x.is_finite() => threshold = x,
                    _ => return fail("usage", &format!("bad threshold `{value}`")),
                }
            }
            other if other.starts_with("--") => {
                return fail("usage", &format!("unknown flag `{other}`; {USAGE}"))
            }
            _ => positional.push(arg),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return fail("usage", USAGE);
    };
    let baseline = match load_doc(baseline_path) {
        Ok(d) => d,
        Err(e) => return fail("io", &e),
    };
    let current = match load_doc(current_path) {
        Ok(d) => d,
        Err(e) => return fail("io", &e),
    };
    let diff = match bench::compare(&baseline, &current, threshold) {
        Ok(d) => d,
        Err(e) => return fail("bad_document", &e),
    };
    println!("{}", diff.to_json().render());
    if diff.regressed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
