//! `segdb-load` — closed-loop load driver for a running `segdb serve`.
//!
//! ```text
//! segdb-load --addr 127.0.0.1:7878 --connections 4 --requests 400 \
//!            --family mixed --n 2000 --seed 42 [--no-verify] [--shutdown] \
//!            [--chaos SEED] [--max-retries K] [--attempt-timeout-ms MS] \
//!            [--out PATH]
//! ```
//!
//! `--write-pct P` turns `P` % of the request slots into writes (the
//! server must be serving with `--wal`): commuting inserts/deletes whose
//! final state is checked post-run against the shadow model, with
//! per-op-kind latency histograms in the report (exit 1 on a sweep
//! mismatch, same as a wrong verified answer).
//!
//! `--batch` ignores `--addr` and drives the batched-vs-unbatched
//! serving comparison instead: two in-process servers over the same
//! generated set — one plain, one with the batch collector
//! (admission window + internal-level pinning) armed — replay the
//! identical verified workload, and the report (the batched run's)
//! gains a `batch` block with both throughputs and their ratio.
//!
//! `--cluster` declares the address to be a scatter-gather router
//! (`segdb-cli route`); the report then carries a `cluster` block with
//! one entry per shard — upstream call tallies and the round-trip
//! latency histogram the router keeps per shard.
//!
//! `--chaos SEED` arms the standard wire-fault torture mix on every
//! connection (seeded `SEED + connection`); the report's `net` block
//! then carries the replay-stable `trace_digest` and the
//! injected-vs-observed balance. `--max-retries` and
//! `--attempt-timeout-ms` tune the resilient client.
//!
//! Prints the run report as JSON on stdout and writes the same document
//! to `BENCH_serve.json` (in `$SEGDB_BENCH_DIR` or the working
//! directory, unless `--out` overrides it). Exits 1 when any verified
//! answer was wrong, 2 on usage or I/O errors.

use segdb_obs::Json;
use segdb_server::chaos::NetFaultPlan;
use segdb_server::load::{self, LoadConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: segdb-load [--addr HOST:PORT] [--connections K] [--requests N] \
[--family fan|grid|strips|temporal|nested|mixed] [--n N] [--seed S] [--no-verify] \
[--mode collect|count|exists|limit:K|mix] [--write-pct P] [--cluster] [--batch] [--shutdown] \
[--chaos SEED] [--max-retries K] [--attempt-timeout-ms MS] [--out PATH]";

fn fail(code: &str, message: &str) -> ExitCode {
    eprintln!(
        "{}",
        Json::obj([
            ("error", Json::Str(code.to_string())),
            ("message", Json::Str(message.to_string())),
        ])
        .render()
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = LoadConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--no-verify" {
            cfg.verify = false;
            continue;
        }
        if flag == "--shutdown" {
            cfg.shutdown_after = true;
            continue;
        }
        if flag == "--cluster" {
            cfg.cluster = true;
            continue;
        }
        if flag == "--batch" {
            cfg.batch = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = args.next() else {
            return fail("usage", &format!("{flag} needs a value; {USAGE}"));
        };
        let parsed = match flag.as_str() {
            "--addr" => {
                cfg.addr = value;
                Ok(())
            }
            "--connections" => value.parse().map(|v: usize| cfg.connections = v.max(1)),
            "--requests" => value.parse().map(|v| cfg.requests = v),
            "--n" => value.parse().map(|v| cfg.n = v),
            "--seed" => value.parse().map(|v| cfg.seed = v),
            "--write-pct" => value.parse().map(|v: u32| cfg.write_pct = v.min(100)),
            "--chaos" => value
                .parse()
                .map(|s| cfg.chaos_plan = Some(NetFaultPlan::chaotic(s))),
            "--max-retries" => value.parse().map(|v| cfg.max_retries = v),
            "--attempt-timeout-ms" => value
                .parse()
                .map(|ms: u64| cfg.attempt_timeout = Duration::from_millis(ms.max(1))),
            "--family" => match load::parse_family(&value) {
                Some(f) => {
                    cfg.family = f;
                    Ok(())
                }
                None => return fail("usage", &format!("unknown family `{value}`")),
            },
            "--mode" => match load::parse_mode(&value) {
                Some(m) => {
                    cfg.mode = m;
                    Ok(())
                }
                None => return fail("usage", &format!("unknown mode `{value}`")),
            },
            "--out" => {
                out = Some(PathBuf::from(value));
                Ok(())
            }
            other => return fail("usage", &format!("unknown flag `{other}`; {USAGE}")),
        };
        if parsed.is_err() {
            return fail("usage", &format!("bad value for {flag}"));
        }
    }

    let (doc, wrong) = if cfg.batch {
        // The batched-vs-unbatched serving comparison ignores `--addr`
        // and spawns its own server pair over the generated set.
        match load::run_batch_compare(&cfg) {
            Ok(cmp) => (
                cmp.to_json(&cfg).render(),
                cmp.batched.wrong + cmp.batched.sweep_wrong + cmp.unbatched.wrong,
            ),
            Err(e) => return fail("io", &format!("batch comparison failed: {e}")),
        }
    } else {
        match load::run_load(&cfg) {
            Ok(r) => (r.to_json(&cfg).render(), r.wrong + r.sweep_wrong),
            Err(e) => return fail("io", &format!("load run failed: {e}")),
        }
    };
    println!("{doc}");
    let path = out.unwrap_or_else(|| {
        std::env::var_os("SEGDB_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_serve.json")
    });
    if let Err(e) = std::fs::write(&path, doc + "\n") {
        return fail("io", &format!("cannot write {}: {e}", path.display()));
    }
    if wrong > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
