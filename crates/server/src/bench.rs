//! The PR-over-PR bench regression gate: compare two `BENCH_serve.json`
//! documents and fail when the current run regressed past a threshold.
//!
//! The gate judges two metrics — **p99 latency** (lower is better) and
//! **throughput** (higher is better) — against a configurable
//! percentage threshold, plus **write p99** when both documents come
//! from `--write-pct` runs; p50/p95/mean ride along informationally but
//! never trip the gate (the power-of-two histogram buckets make mid
//! quantiles jump in whole-bucket steps, so gating on them would flag
//! every bucket move as a 100 % change). A baseline of zero never
//! regresses: there is nothing meaningful to be a percentage *of*.
//!
//! Workload-context fields (`family`, `segments`, `seed`,
//! `connections`, `mode`, `requests`) are cross-checked and any
//! mismatch is *reported*, not failed — comparing across workloads is
//! sometimes exactly what one wants, but it should never happen
//! silently.
//!
//! The `bench-diff` binary (wrapped by `scripts/bench_diff`) is the CLI
//! face: `bench-diff BASELINE CURRENT [--threshold-pct X]`, exit 0 when
//! clean, 1 on regression, 2 on usage or parse errors.

use segdb_obs::Json;

/// Default gate threshold: a metric may move this many percent in the
/// bad direction before the gate fails.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (latencies).
    LowerIsBetter,
    /// Larger values are better (throughput).
    HigherIsBetter,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
        }
    }
}

/// One metric's baseline-vs-current verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Dotted path into the bench document, e.g. `latency_us.p99`.
    pub name: &'static str,
    /// Which way the metric is allowed to move.
    pub direction: Direction,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Movement in the *bad* direction as a percentage of the baseline
    /// (positive = worse, negative = improved); zero when the baseline
    /// is zero.
    pub worse_pct: f64,
    /// Whether this metric participates in the gate verdict.
    pub gated: bool,
    /// `gated` and `worse_pct` exceeds the threshold.
    pub regressed: bool,
}

/// The whole comparison: per-metric verdicts plus context mismatches.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Gate threshold the verdicts were judged against, in percent.
    pub threshold_pct: f64,
    /// Per-metric verdicts (gated first).
    pub metrics: Vec<MetricDiff>,
    /// Workload-context fields that differ between the two documents
    /// (`"family: mixed -> grid"` style), making the comparison
    /// apples-to-oranges.
    pub context_mismatches: Vec<String>,
}

impl BenchDiff {
    /// True when any gated metric regressed past the threshold.
    pub fn regressed(&self) -> bool {
        self.metrics.iter().any(|m| m.regressed)
    }

    /// The machine-readable verdict document `bench-diff` prints.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threshold_pct", Json::F64(self.threshold_pct)),
            ("regressed", Json::Bool(self.regressed())),
            (
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("name", Json::Str(m.name.to_string())),
                                ("direction", Json::Str(m.direction.name().to_string())),
                                ("baseline", Json::F64(m.baseline)),
                                ("current", Json::F64(m.current)),
                                ("worse_pct", Json::F64(m.worse_pct)),
                                ("gated", Json::Bool(m.gated)),
                                ("regressed", Json::Bool(m.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "context_mismatches",
                Json::Arr(
                    self.context_mismatches
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Numeric leaf at a one- or two-step dotted path.
fn metric_at(doc: &Json, path: &str) -> Option<f64> {
    let mut node = doc;
    for step in path.split('.') {
        node = node.get(step)?;
    }
    match *node {
        Json::U64(u) => Some(u as f64),
        Json::I64(i) => Some(i as f64),
        Json::F64(f) => Some(f),
        _ => None,
    }
}

/// Render a context field for the mismatch report.
fn context_repr(doc: &Json, key: &str) -> String {
    match doc.get(key) {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::U64(u)) => u.to_string(),
        Some(Json::I64(i)) => i.to_string(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(other) => other.render(),
        None => "<missing>".to_string(),
    }
}

/// The metric table the gate runs over: `(path, direction, gated)`.
const METRICS: [(&str, Direction, bool); 6] = [
    ("latency_us.p99", Direction::LowerIsBetter, true),
    ("throughput_rps", Direction::HigherIsBetter, true),
    ("latency_us.p95", Direction::LowerIsBetter, false),
    ("latency_us.p50", Direction::LowerIsBetter, false),
    ("latency_us.mean", Direction::LowerIsBetter, false),
    ("latency_us.max", Direction::LowerIsBetter, false),
];

/// Write-path metrics, present only in `--write-pct` runs: gated when
/// both documents carry them, skipped when neither does, and an error
/// when a *gated* one appears in exactly one document — a write run
/// must never be compared against a read-only baseline silently.
const WRITE_METRICS: [(&str, Direction, bool); 4] = [
    ("write_latency_us.p99", Direction::LowerIsBetter, true),
    ("write_latency_us.p95", Direction::LowerIsBetter, false),
    ("insert_latency_us.p99", Direction::LowerIsBetter, false),
    ("delete_latency_us.p99", Direction::LowerIsBetter, false),
];

/// Workload-context fields cross-checked between the two documents.
const CONTEXT: [&str; 7] = [
    "family",
    "segments",
    "seed",
    "connections",
    "mode",
    "write_pct",
    "requests",
];

/// Compare two bench documents. `Err` means a *gated* metric is missing
/// from either document — the gate refuses to pass vacuously.
pub fn compare(baseline: &Json, current: &Json, threshold_pct: f64) -> Result<BenchDiff, String> {
    let mut metrics = Vec::with_capacity(METRICS.len());
    for (name, direction, gated) in METRICS {
        let (b, c) = (metric_at(baseline, name), metric_at(current, name));
        let (Some(b), Some(c)) = (b, c) else {
            if gated {
                return Err(format!("gated metric `{name}` missing from a document"));
            }
            continue;
        };
        let worse_pct = if b <= 0.0 {
            0.0
        } else {
            match direction {
                Direction::LowerIsBetter => (c - b) / b * 100.0,
                Direction::HigherIsBetter => (b - c) / b * 100.0,
            }
        };
        metrics.push(MetricDiff {
            name,
            direction,
            baseline: b,
            current: c,
            worse_pct,
            gated,
            regressed: gated && worse_pct > threshold_pct,
        });
    }
    for (name, direction, gated) in WRITE_METRICS {
        let (b, c) = (metric_at(baseline, name), metric_at(current, name));
        let (b, c) = match (b, c) {
            (Some(b), Some(c)) => (b, c),
            (None, None) => continue,
            _ if gated => {
                return Err(format!(
                    "write metric `{name}` present in only one document \
                     (write run diffed against a read-only baseline?)"
                ))
            }
            _ => continue,
        };
        let worse_pct = if b <= 0.0 { 0.0 } else { (c - b) / b * 100.0 };
        metrics.push(MetricDiff {
            name,
            direction,
            baseline: b,
            current: c,
            worse_pct,
            gated,
            regressed: gated && worse_pct > threshold_pct,
        });
    }
    let context_mismatches = CONTEXT
        .iter()
        .filter_map(|key| {
            let (b, c) = (context_repr(baseline, key), context_repr(current, key));
            (b != c).then(|| format!("{key}: {b} -> {c}"))
        })
        .collect();
    Ok(BenchDiff {
        threshold_pct,
        metrics,
        context_mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(p99: u64, rps: f64) -> Json {
        Json::obj([
            ("experiment", Json::Str("serve".to_string())),
            ("family", Json::Str("mixed".to_string())),
            ("segments", Json::U64(2000)),
            ("seed", Json::U64(42)),
            ("connections", Json::U64(4)),
            ("mode", Json::Str("mix".to_string())),
            ("requests", Json::U64(400)),
            ("throughput_rps", Json::F64(rps)),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::U64(p99 / 4)),
                    ("p95", Json::U64(p99 / 2)),
                    ("p99", Json::U64(p99)),
                    ("mean", Json::F64(p99 as f64 / 5.0)),
                    ("max", Json::U64(p99 * 2)),
                ]),
            ),
        ])
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = bench_doc(512, 9000.0);
        let diff = compare(&doc, &doc, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!diff.regressed());
        assert!(diff.metrics.iter().all(|m| m.worse_pct == 0.0));
        assert!(diff.context_mismatches.is_empty());
        segdb_obs::json::parse(&diff.to_json().render()).expect("verdict renders as valid JSON");
    }

    #[test]
    fn p99_regression_past_threshold_fails_the_gate() {
        let base = bench_doc(512, 9000.0);
        let worse = bench_doc(1024, 9000.0); // +100 % p99
        let diff = compare(&base, &worse, 10.0).unwrap();
        assert!(diff.regressed());
        let p99 = diff
            .metrics
            .iter()
            .find(|m| m.name == "latency_us.p99")
            .unwrap();
        assert!(p99.regressed);
        assert!((p99.worse_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_drop_past_threshold_fails_the_gate() {
        let base = bench_doc(512, 9000.0);
        let worse = bench_doc(512, 7000.0); // −22 % throughput
        let diff = compare(&base, &worse, 10.0).unwrap();
        assert!(diff.regressed());
        let rps = diff
            .metrics
            .iter()
            .find(|m| m.name == "throughput_rps")
            .unwrap();
        assert!(rps.regressed);
        assert!(rps.worse_pct > 20.0);
    }

    #[test]
    fn movement_inside_the_threshold_passes() {
        let base = bench_doc(1000, 9000.0);
        let slightly = bench_doc(1050, 8500.0); // +5 % p99, −5.6 % rps
        let diff = compare(&base, &slightly, 10.0).unwrap();
        assert!(!diff.regressed());
        // Improvements report negative `worse_pct` and never regress.
        let better = bench_doc(500, 12000.0);
        let diff = compare(&base, &better, 10.0).unwrap();
        assert!(!diff.regressed());
        assert!(diff.metrics.iter().all(|m| m.worse_pct <= 0.0));
    }

    #[test]
    fn ungated_quantiles_never_trip_the_gate() {
        let base = bench_doc(1000, 9000.0);
        let mut current = bench_doc(1000, 9000.0);
        // Blow up p50 only: find latency_us.p50 and rewrite it.
        if let Json::Obj(fields) = &mut current {
            for (k, v) in fields.iter_mut() {
                if k == "latency_us" {
                    if let Json::Obj(inner) = v {
                        for (ik, iv) in inner.iter_mut() {
                            if ik == "p50" {
                                *iv = Json::U64(100_000);
                            }
                        }
                    }
                }
            }
        }
        let diff = compare(&base, &current, 10.0).unwrap();
        assert!(!diff.regressed(), "p50 is informational, not gated");
        let p50 = diff
            .metrics
            .iter()
            .find(|m| m.name == "latency_us.p50")
            .unwrap();
        assert!(p50.worse_pct > 10.0 && !p50.regressed);
    }

    #[test]
    fn missing_gated_metric_is_an_error() {
        let base = bench_doc(512, 9000.0);
        let empty = Json::obj([("experiment", Json::Str("serve".to_string()))]);
        let err = compare(&base, &empty, 10.0).unwrap_err();
        assert!(err.contains("latency_us.p99"), "{err}");
    }

    #[test]
    fn zero_baseline_never_regresses() {
        let zero = bench_doc(0, 0.0);
        let busy = bench_doc(512, 9000.0);
        let diff = compare(&zero, &busy, 10.0).unwrap();
        assert!(!diff.regressed());
    }

    fn with_writes(mut doc: Json, p99: u64) -> Json {
        if let Json::Obj(fields) = &mut doc {
            fields.push((
                "write_latency_us".to_string(),
                Json::obj([("p95", Json::U64(p99 / 2)), ("p99", Json::U64(p99))]),
            ));
        }
        doc
    }

    #[test]
    fn write_p99_gates_only_write_runs() {
        // Read-only docs: the write metrics are absent from both sides
        // and simply skipped.
        let base = bench_doc(512, 9000.0);
        let diff = compare(&base, &base, 10.0).unwrap();
        assert!(diff
            .metrics
            .iter()
            .all(|m| m.name != "write_latency_us.p99"));
        // Write runs on both sides: gated like any other metric.
        let wbase = with_writes(bench_doc(512, 9000.0), 800);
        let wworse = with_writes(bench_doc(512, 9000.0), 2000);
        let diff = compare(&wbase, &wworse, 10.0).unwrap();
        assert!(diff.regressed());
        let wp99 = diff
            .metrics
            .iter()
            .find(|m| m.name == "write_latency_us.p99")
            .unwrap();
        assert!(wp99.gated && wp99.regressed);
        assert!((wp99.worse_pct - 150.0).abs() < 1e-9);
        let diff = compare(&wbase, &with_writes(bench_doc(512, 9000.0), 820), 10.0).unwrap();
        assert!(!diff.regressed(), "+2.5 % write p99 is inside the gate");
        // A write run diffed against a read-only baseline is an error,
        // not a vacuous pass.
        let err = compare(&base, &wworse, 10.0).unwrap_err();
        assert!(err.contains("write_latency_us.p99"), "{err}");
    }

    #[test]
    fn workload_context_mismatches_are_reported_not_failed() {
        let base = bench_doc(512, 9000.0);
        let mut other = bench_doc(512, 9000.0);
        if let Json::Obj(fields) = &mut other {
            for (k, v) in fields.iter_mut() {
                if k == "family" {
                    *v = Json::Str("grid".to_string());
                }
            }
        }
        let diff = compare(&base, &other, 10.0).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.context_mismatches, vec!["family: mixed -> grid"]);
    }
}
