//! Request-lifecycle observability: per-stage timing histograms and the
//! slow-query log (DESIGN.md §12).
//!
//! Every query the server executes is timed through three stages —
//! **queue wait** (admission to worker pickup), **index walk** (the
//! traversal itself) and **reply write** (serializing the response onto
//! the socket) — plus the pages it touched. The samples land in
//! per-mode log-bucketed [`Histogram`]s (same bucket scheme as the load
//! driver's client-side latencies, so server- and client-observed
//! distributions compare directly) and the K worst requests are kept in
//! a bounded [`SlowLog`], each entry tagged with the client's request
//! `id` so a slow server-side record can be correlated with the
//! client's own log line for the same request.
//!
//! Recording is a short mutex hold around plain-data updates, far off
//! the I/O-bound walk itself — the same locking posture as
//! `segdb_obs::metrics::Registry`.

use segdb_obs::{Histogram, Json};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// One finished request, ready to record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Client-chosen correlation id (echoed on the wire too).
    pub id: Option<u64>,
    /// Wire method, e.g. `query_line` or `trace`.
    pub op: &'static str,
    /// Query-mode key the histograms bucket under (`collect`, `count`,
    /// `exists`, `limit`, or `trace` for traced queries).
    pub mode: &'static str,
    /// Admission → worker pickup, microseconds.
    pub queue_us: u64,
    /// Index walk (execution) duration, microseconds.
    pub exec_us: u64,
    /// Reply serialization + socket write, microseconds.
    pub write_us: u64,
    /// Admission → reply written, microseconds.
    pub total_us: u64,
    /// Pages the walk touched (physical reads + buffer-pool hits).
    pub pages: u64,
    /// Hits the answer witnessed.
    pub hits: u64,
    /// Shared-walk batch this request was executed in (0 = ran alone);
    /// correlate slow batchmates through this id.
    pub batch_id: u64,
    /// Number of requests in that batch (0 = ran alone).
    pub batch_size: u32,
}

/// Per-mode stage histograms.
#[derive(Debug)]
struct ModeStats {
    queue_us: Histogram,
    exec_us: Histogram,
    write_us: Histogram,
    total_us: Histogram,
    pages: Histogram,
}

impl ModeStats {
    fn new() -> ModeStats {
        ModeStats {
            queue_us: Histogram::latency_us(),
            exec_us: Histogram::latency_us(),
            write_us: Histogram::latency_us(),
            total_us: Histogram::latency_us(),
            pages: Histogram::default(),
        }
    }

    fn observe(&mut self, r: &RequestRecord) {
        self.queue_us.observe(r.queue_us);
        self.exec_us.observe(r.exec_us);
        self.write_us.observe(r.write_us);
        self.total_us.observe(r.total_us);
        self.pages.observe(r.pages);
    }

    fn latency_json(&self) -> Json {
        Json::obj([
            ("queue_us", self.queue_us.summary_json()),
            ("exec_us", self.exec_us.summary_json()),
            ("write_us", self.write_us.summary_json()),
            ("total_us", self.total_us.summary_json()),
        ])
    }
}

/// A bounded log of the K worst (slowest-total) requests seen so far.
///
/// Entries below the threshold are never admitted; above it the log
/// keeps the K largest `total_us` values, evicting the mildest entry
/// when full. `seq` is a monotone admission number so two equal
/// durations still order deterministically (newer evicts older only
/// when strictly slower).
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    threshold_us: u64,
    seq: u64,
    /// Sorted worst-first (descending `total_us`, ascending `seq` for
    /// ties).
    entries: Vec<(RequestRecord, u64)>,
}

impl SlowLog {
    /// A log keeping the `cap` worst requests at or above
    /// `threshold_us` total latency (`threshold_us == 0` admits every
    /// request; `cap == 0` disables the log).
    pub fn new(cap: usize, threshold_us: u64) -> SlowLog {
        SlowLog {
            cap,
            threshold_us,
            seq: 0,
            entries: Vec::new(),
        }
    }

    /// Offer one finished request; returns whether it was admitted.
    pub fn offer(&mut self, record: RequestRecord) -> bool {
        if self.cap == 0 || record.total_us < self.threshold_us {
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        if self.entries.len() >= self.cap {
            // Full: admit only strictly-slower requests.
            let mildest = self.entries.last().map(|(r, _)| r.total_us).unwrap_or(0);
            if record.total_us <= mildest {
                return false;
            }
            self.entries.pop();
        }
        let at = self.entries.partition_point(|(r, s)| {
            (r.total_us, u64::MAX - s) >= (record.total_us, u64::MAX - seq)
        });
        self.entries.insert(at, (record, seq));
        true
    }

    /// Entries, worst first.
    pub fn entries(&self) -> impl Iterator<Item = &RequestRecord> {
        self.entries.iter().map(|(r, _)| r)
    }

    /// JSON reply for the `slowlog` wire op.
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|(r, seq)| {
                Json::obj([
                    ("id", r.id.map_or(Json::Null, Json::U64)),
                    ("op", Json::Str(r.op.to_string())),
                    ("mode", Json::Str(r.mode.to_string())),
                    ("queue_us", Json::U64(r.queue_us)),
                    ("exec_us", Json::U64(r.exec_us)),
                    ("write_us", Json::U64(r.write_us)),
                    ("total_us", Json::U64(r.total_us)),
                    ("pages", Json::U64(r.pages)),
                    ("hits", Json::U64(r.hits)),
                    ("batch_id", Json::U64(r.batch_id)),
                    ("batch_size", Json::U64(r.batch_size as u64)),
                    ("seq", Json::U64(*seq)),
                ])
            })
            .collect();
        Json::obj([
            ("max_entries", Json::U64(self.cap as u64)),
            ("threshold_us", Json::U64(self.threshold_us)),
            ("seen", Json::U64(self.seq)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

/// The serving layer's lifecycle sink: per-mode stage histograms plus
/// the slow-query log, recorded together from one [`RequestRecord`].
#[derive(Debug)]
pub struct Lifecycle {
    modes: Mutex<BTreeMap<&'static str, ModeStats>>,
    slowlog: Mutex<SlowLog>,
}

/// Recover from poisoning — lifecycle data is plain and monotone, and a
/// panicked thread must not take observability down with it.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Lifecycle {
    /// Fresh sink with a [`SlowLog`] of `slowlog_cap` entries at
    /// `slowlog_threshold_us`.
    pub fn new(slowlog_cap: usize, slowlog_threshold_us: u64) -> Lifecycle {
        Lifecycle {
            modes: Mutex::new(BTreeMap::new()),
            slowlog: Mutex::new(SlowLog::new(slowlog_cap, slowlog_threshold_us)),
        }
    }

    /// Record one finished request into the histograms and the slowlog.
    pub fn record(&self, record: RequestRecord) {
        relock(&self.modes)
            .entry(record.mode)
            .or_insert_with(ModeStats::new)
            .observe(&record);
        relock(&self.slowlog).offer(record);
    }

    /// The `latency` block of the `stats` reply: per mode, quantile
    /// summaries of every stage plus the total.
    pub fn latency_json(&self) -> Json {
        Json::Obj(
            relock(&self.modes)
                .iter()
                .map(|(mode, m)| (mode.to_string(), m.latency_json()))
                .collect(),
        )
    }

    /// The `pages` block of the `stats` reply: per mode, a quantile
    /// summary of pages touched per request.
    pub fn pages_json(&self) -> Json {
        Json::Obj(
            relock(&self.modes)
                .iter()
                .map(|(mode, m)| (mode.to_string(), m.pages.summary_json()))
                .collect(),
        )
    }

    /// The `slowlog` wire reply.
    pub fn slowlog_json(&self) -> Json {
        relock(&self.slowlog).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, total_us: u64) -> RequestRecord {
        RequestRecord {
            id: Some(id),
            op: "query_line",
            mode: "collect",
            queue_us: 1,
            exec_us: total_us / 2,
            write_us: 1,
            total_us,
            pages: 3,
            hits: 2,
            batch_id: 0,
            batch_size: 0,
        }
    }

    #[test]
    fn slowlog_keeps_the_k_worst_sorted() {
        let mut log = SlowLog::new(3, 0);
        for (id, t) in [(1, 50), (2, 10), (3, 80), (4, 30), (5, 60)] {
            log.offer(rec(id, t));
        }
        let totals: Vec<u64> = log.entries().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![80, 60, 50], "worst three, descending");
        let ids: Vec<Option<u64>> = log.entries().map(|r| r.id).collect();
        assert_eq!(ids, vec![Some(3), Some(5), Some(1)]);
    }

    #[test]
    fn slowlog_threshold_filters_mild_requests() {
        let mut log = SlowLog::new(8, 100);
        assert!(!log.offer(rec(1, 99)));
        assert!(log.offer(rec(2, 100)), "at-threshold is admitted");
        assert!(log.offer(rec(3, 500)));
        assert_eq!(log.entries().count(), 2);
    }

    #[test]
    fn slowlog_equal_durations_keep_the_earlier_entry() {
        let mut log = SlowLog::new(1, 0);
        assert!(log.offer(rec(1, 40)));
        assert!(!log.offer(rec(2, 40)), "a tie does not evict");
        assert!(log.offer(rec(3, 41)), "strictly slower does");
        assert_eq!(log.entries().next().unwrap().id, Some(3));
    }

    #[test]
    fn slowlog_zero_capacity_is_disabled() {
        let mut log = SlowLog::new(0, 0);
        assert!(!log.offer(rec(1, 1000)));
        assert_eq!(
            log.to_json()
                .get("entries")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn slowlog_json_carries_stage_timings_and_ids() {
        let mut log = SlowLog::new(4, 0);
        log.offer(rec(7, 123));
        let j = log.to_json();
        assert_eq!(j.get("max_entries"), Some(&Json::U64(4)));
        assert_eq!(j.get("seen"), Some(&Json::U64(1)));
        let e = &j.get("entries").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("id"), Some(&Json::U64(7)));
        assert_eq!(e.get("total_us"), Some(&Json::U64(123)));
        assert_eq!(e.get("queue_us"), Some(&Json::U64(1)));
        assert_eq!(e.get("mode"), Some(&Json::Str("collect".into())));
        segdb_obs::json::parse(&j.render()).expect("slowlog reply is valid JSON");
    }

    #[test]
    fn lifecycle_buckets_by_mode_and_feeds_both_sinks() {
        let lc = Lifecycle::new(4, 0);
        lc.record(rec(1, 30));
        lc.record(RequestRecord {
            mode: "count",
            ..rec(2, 70)
        });
        let lat = lc.latency_json();
        for mode in ["collect", "count"] {
            let total = lat.get(mode).unwrap().get("total_us").unwrap();
            assert_eq!(total.get("count"), Some(&Json::U64(1)), "{mode}");
            assert!(total.get("p50").is_some() && total.get("p99").is_some());
            for stage in ["queue_us", "exec_us", "write_us"] {
                assert!(
                    lat.get(mode).unwrap().get(stage).is_some(),
                    "{mode}.{stage}"
                );
            }
        }
        let pages = lc.pages_json();
        assert_eq!(
            pages.get("collect").unwrap().get("count"),
            Some(&Json::U64(1))
        );
        assert_eq!(
            lc.slowlog_json()
                .get("entries")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
    }
}
